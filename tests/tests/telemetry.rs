//! Flight-recorder integration tests, driven through the `elephants` facade.
//!
//! Two contracts are guarded here:
//!
//! 1. **Recording is a pure observation.** A run with the full recorder
//!    attached (flows + queue + events) produces byte-identical
//!    `RunMetrics` JSON — and the same processed-event count — as the same
//!    run with no recorder. Sample ticks ride the event loop but are
//!    excluded from the `processed` counter and never draw from the RNG.
//!
//! 2. **The artifact shows the paper's dynamics.** A BBRv1-vs-CUBIC run
//!    long enough for steady state must show BBRv1 cycling through ProbeBW
//!    (the 8-phase gain cycle is the paper's signature BBR behaviour), and
//!    the record must survive a JSON round trip through the versioned
//!    parser.

use elephants::cca::CcaKind;
use elephants::experiments::{Recording, RunOptions, Runner, ScenarioConfig};
use elephants::json::ToJson;
use elephants::telemetry::FlightRecord;
use elephants::AqmKind;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("elephants-telemetry-{tag}-{}", std::process::id()))
}

#[test]
fn recording_does_not_perturb_run_metrics() {
    let cfg = ScenarioConfig::new(
        CcaKind::BbrV2,
        CcaKind::Cubic,
        AqmKind::Red,
        2.0,
        100_000_000,
        &RunOptions::quick(),
    );
    let dir = temp_dir("identity");

    let plain = Runner::new(&cfg).seed(11).run().unwrap().into_first();
    let recorded = Runner::new(&cfg)
        .seed(11)
        .recorder(Recording::parse("flows,queue,events").unwrap().out_dir(&dir).svg(false))
        .run()
        .unwrap()
        .into_first();

    assert_eq!(
        plain.metrics().to_json_string(),
        recorded.metrics().to_json_string(),
        "RunMetrics JSON must be byte-identical with and without the recorder"
    );
    assert_eq!(
        plain.events, recorded.events,
        "sample ticks must not count toward processed events"
    );
    assert!(plain.record_path.is_none());
    assert!(recorded.record_path.is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bbr1_vs_cubic_record_shows_probe_bw_cycles() {
    // 10 simulated seconds at 100 Mbps / 62 ms RTT: one ProbeBW cycle is
    // 8 × RTprop ≈ 0.5 s, so steady state leaves room for well over three
    // cycles even after startup/drain.
    let cfg = ScenarioConfig::new(
        CcaKind::BbrV1,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        100_000_000,
        &RunOptions::quick(),
    );
    let dir = temp_dir("probebw");
    let outcome = Runner::new(&cfg)
        .seed(1)
        .recorder(Recording::parse("flows,queue").unwrap().out_dir(&dir))
        .run()
        .unwrap();

    let path = outcome.record_path().expect("record written");
    let record = FlightRecord::parse(&std::fs::read_to_string(path).unwrap()).unwrap();

    // Flow 0 is sender 0's first flow, running BBRv1.
    let cycles = record.probe_bw_cycles(0);
    assert!(
        cycles >= 3,
        "BBRv1 must complete at least 3 ProbeBW cycles in 10 s, saw {cycles}"
    );
    // The CUBIC flow never reports a ProbeBW phase.
    let flows = record.flow_ids();
    assert!(flows.len() >= 2, "both senders sampled: {flows:?}");
    let cubic_flow = *flows.last().unwrap();
    assert_eq!(record.probe_bw_cycles(cubic_flow), 0, "CUBIC has no ProbeBW");
    assert!(
        record
            .flow_samples
            .iter()
            .filter(|p| p.flow == cubic_flow)
            .any(|p| p.phase == "cubic"),
        "CUBIC flow reports its avoidance phase"
    );

    // The dynamics figure rides along with the record.
    let svgs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "svg"))
        .collect();
    assert!(!svgs.is_empty(), "cwnd dynamics SVG emitted next to the record");
    std::fs::remove_dir_all(&dir).ok();
}

/// Committed records from older schema versions stay readable forever.
///
/// The fixtures are real (truncated) recorder output down-converted to
/// the historical schemas: v2 lacks the v3 cumulative `delivered_bytes`
/// / `retx` flow counters, v1 additionally lacks the per-link `link`
/// field on queue samples. The parser must accept both and backfill
/// zeros rather than error — these files are pinned so a future schema
/// bump cannot silently orphan archived records.
#[test]
fn archived_v1_and_v2_records_still_parse() {
    let fixture = |name: &str| {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures/records")
            .join(name);
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
    };

    let v2 = FlightRecord::parse(&fixture("v2.flight.json")).expect("v2 fixture parses");
    assert_eq!(v2.schema_version, 2, "original version preserved for provenance");
    assert!(!v2.flow_samples.is_empty());
    assert!(v2.flow_samples.iter().all(|p| p.delivered_bytes == 0 && p.retx == 0));
    assert!(v2.queue_samples.iter().any(|q| q.link == 0), "v2 queue samples carry link ids");

    let v1 = FlightRecord::parse(&fixture("v1.flight.json")).expect("v1 fixture parses");
    assert_eq!(v1.schema_version, 1);
    assert!(v1.flow_samples.iter().all(|p| p.delivered_bytes == 0 && p.retx == 0));
    assert!(
        !v1.queue_samples.is_empty() && v1.queue_samples.iter().all(|q| q.link == 0),
        "v1 queue samples backfill link 0"
    );

    // The backfilled records feed the analysis layer without panicking:
    // zero counters simply mean zero goodput everywhere.
    let d = elephants::analysis::fairness_dynamics(&v2, &[0, 0], 0.01, 1e8);
    assert!(d.total_bps.iter().all(|&b| b == 0.0));
}

#[test]
fn flight_record_round_trips_through_versioned_parser() {
    let cfg = ScenarioConfig::new(
        CcaKind::Cubic,
        CcaKind::Cubic,
        AqmKind::Fifo,
        1.0,
        100_000_000,
        &RunOptions::quick(),
    );
    let dir = temp_dir("roundtrip");
    let outcome = Runner::new(&cfg)
        .seed(4)
        .recorder(Recording::parse("flows,queue,events").unwrap().out_dir(&dir).svg(false))
        .run()
        .unwrap();
    let path = outcome.record_path().unwrap();
    let text = std::fs::read_to_string(path).unwrap();
    let record = FlightRecord::parse(&text).unwrap();
    assert_eq!(record.to_json_string(), text.trim(), "parse ∘ serialize is the identity");
    assert_eq!(record.seed, 4);
    assert!(!record.flow_samples.is_empty());
    assert!(!record.queue_samples.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
