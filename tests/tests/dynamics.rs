//! Fairness-dynamics acceptance tests, driven through the `elephants`
//! facade (ISSUE: analysis subsystem).
//!
//! Unlike `paper_shapes.rs`, which checks run-level aggregates, these
//! tests difference the flight record into windowed series and assert the
//! paper's *temporal* claims: BBRv1 suppresses CUBIC early with partial
//! recovery later, a late CUBIC joiner claims fair share in finite time,
//! and 10 ms windowed utilization survives sub-RTT burstiness at 25 Gbps
//! (where the run-level `link_utilization` debug assertion would trip).

use elephants::analysis::{late_joiner_response, suppression_shape, ConvergenceSpec};
use elephants::cca::CcaKind;
use elephants::experiments::{Recording, RunOptions, Runner, ScenarioConfig};
use elephants::netsim::SimDuration;
use elephants::AqmKind;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("elephants-dynamics-{tag}-{}", std::process::id()))
}

#[test]
fn bbr1_suppresses_cubic_early_with_partial_recovery() {
    // The paper's qualitative BBRv1-vs-CUBIC shape on the 62 ms dumbbell:
    // CUBIC's share sits well below fair while BBRv1's startup estimate
    // dominates, then recovers as CUBIC's window grows — suppression
    // without starvation. Thresholds match the `dynamics` binary gate
    // (empirically 0.41–0.43 early, 0.71–0.72 late across seeds 1–5).
    let cfg = ScenarioConfig::new(
        CcaKind::BbrV1,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        100_000_000,
        &RunOptions::quick(),
    );
    let dir = temp_dir("shape");
    let outcome = Runner::new(&cfg)
        .seed(1)
        .recorder(Recording::flows_only().out_dir(&dir).svg(false))
        .run()
        .unwrap();
    let d = outcome.analysis(0.25).unwrap();
    let shape = suppression_shape(&d, 1, 2.5, 6.0).expect("both spans hold windows");
    assert!(
        shape.early_share < 0.9 * shape.fair_share,
        "CUBIC must be suppressed early: share {:.3} vs fair {:.3}",
        shape.early_share,
        shape.fair_share
    );
    assert!(
        shape.late_share > shape.early_share + 0.05,
        "CUBIC must partially recover: early {:.3} late {:.3}",
        shape.early_share,
        shape.late_share
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn late_cubic_joiner_reaches_fair_share_in_finite_time() {
    // CUBIC joining a CUBIC incumbent 3 s in: AIMD converges, so the
    // joiner must claim ≥70% of fair share within the run and the
    // incumbent must concede bandwidth. Judged on 1 s windows — 250 ms
    // share noise (±0.08) would defeat any sustained-hold criterion.
    let cfg = ScenarioConfig::builder(
        CcaKind::Cubic,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        100_000_000,
        &RunOptions::quick(),
    )
    .start_offset_ms(vec![0, 3000])
    .build()
    .unwrap();
    assert_eq!(cfg.duration, SimDuration::from_secs(10), "quick preset at 100 Mbps");
    let dir = temp_dir("latejoin");
    let outcome = Runner::new(&cfg)
        .seed(1)
        .recorder(Recording::flows_only().out_dir(&dir).svg(false))
        .run()
        .unwrap();
    let d = outcome.analysis(1.0).unwrap();
    let spec = ConvergenceSpec { epsilon: 0.3, hold_s: 1.0 };
    let join = late_joiner_response(&d, 1, 3.0, &spec);
    assert!(
        join.time_to_fair_share_s.is_some(),
        "joiner never sustained ≥{:.0}% of fair share: {join:?}",
        (1.0 - spec.epsilon) * 100.0
    );
    let t = join.time_to_fair_share_s.unwrap();
    assert!(t > 0.0 && t < 7.0, "claim time within the post-join horizon, got {t:.2}s");
    assert!(
        join.concession > 0.1,
        "incumbent must concede real bandwidth, got {:.3}",
        join.concession
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowed_utilization_survives_10ms_windows_at_25g() {
    // At 25 Gbps a 10 ms window is ~160 RTT-worth of queue drain: single
    // windows legitimately exceed capacity, which the run-level
    // `link_utilization` debug assertion rejects. The windowed variant
    // must return those ratios raw, and their average must still converge
    // to a sane run-level utilization.
    let cfg = ScenarioConfig::builder(
        CcaKind::Cubic,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        25_000_000_000,
        &RunOptions::quick(),
    )
    .flow_scale(0.05)
    .build()
    .unwrap();
    let dir = temp_dir("util25g");
    let outcome = Runner::new(&cfg)
        .seed(1)
        .recorder(Recording::flows_only().out_dir(&dir).svg(false))
        .run()
        .unwrap();
    let d = outcome.analysis(0.01).unwrap();
    assert!(d.t.len() >= 100, "a quick 25G run spans ≥1 s of 10 ms windows");
    assert!(
        d.utilization.iter().all(|u| u.is_finite() && *u >= 0.0),
        "every windowed utilization is a finite ratio"
    );
    // Steady-state average (skipping slow-start) recovers run-level phi.
    let tail: Vec<f64> =
        d.utilization.iter().copied().skip(d.t.len() / 2).collect();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        mean > 0.5 && mean < 1.05,
        "steady-state mean of windowed utilization stays physical: {mean:.3}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
