//! Determinism regression tests: the simulator's output must be a pure
//! function of `(config, seed)`, all the way down to the serialized bytes.
//!
//! The paper's methodology leans on repeat runs being comparable; in the
//! reproduction the stronger property holds — identical runs are
//! *identical*, so every figure is exactly regenerable. This suite guards
//! the property end-to-end through the in-repo JSON encoder: any
//! nondeterminism in the event schedule, the RNG plumbing, float
//! formatting, or object field ordering shows up as a byte diff here.

use elephants::cca::CcaKind;
use elephants::experiments::{
    par_map_with_workers, run_scenario_traced, try_sweep_with_workers, RunCache, RunOptions,
    Runner, ScenarioConfig,
};
use elephants::json::ToJson;
use elephants::netsim::{FaultPlan, LossModel};
use elephants::{AqmKind, SimDuration};

fn dumbbell_cfg(seed: u64) -> ScenarioConfig {
    let mut opts = RunOptions::quick();
    opts.seed = seed;
    ScenarioConfig::new(CcaKind::Reno, CcaKind::Cubic, AqmKind::FqCodel, 2.0, 100_000_000, &opts)
}

fn trace_json(seed: u64) -> String {
    let cfg = dumbbell_cfg(seed);
    run_scenario_traced(&cfg, seed, SimDuration::from_millis(500)).to_json()
}

#[test]
fn same_seed_produces_byte_identical_json() {
    let a = trace_json(42);
    let b = trace_json(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same (config, seed) must serialize to identical bytes");
}

#[test]
fn different_seeds_produce_different_json() {
    let a = trace_json(42);
    let b = trace_json(43);
    assert_ne!(a, b, "different seeds must produce observably different runs");
}

/// The parallel sweep must be a pure function of the work list: scheduling
/// runs across 1, 2, or the default number of worker threads may change
/// *when* each simulation executes but never *what* it produces, down to
/// the serialized bytes of every run result.
#[test]
fn sweep_json_is_identical_across_worker_counts() {
    let opts = RunOptions::quick();
    let grid = [
        ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000, &opts),
        ScenarioConfig::new(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000, &opts),
        ScenarioConfig::new(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000, &opts),
    ];
    // Two seeds per config, flattened like `sweep()` does internally.
    let work: Vec<(usize, u64)> = grid
        .iter()
        .enumerate()
        .flat_map(|(i, cfg)| [(i, cfg.seed), (i, cfg.seed + 1)])
        .collect();

    let sweep_json = |workers: usize| -> String {
        par_map_with_workers(&work, workers, |&(i, seed)| {
            Runner::new(&grid[i]).seed(seed).run().expect("run must succeed").into_first()
        })
        .to_json_string()
    };

    let serial = sweep_json(1);
    assert!(!serial.is_empty());
    for workers in [2, 0] {
        let parallel = sweep_json(workers);
        assert_eq!(
            serial, parallel,
            "sweep results must be byte-identical regardless of worker count ({workers})"
        );
    }
}

/// Determinism must survive fault injection: a scenario with a mid-run
/// link flap *and* Gilbert–Elliott burst loss exercises the fault
/// scheduler and the impairment RNG, and the sweep output must still be a
/// pure function of `(config, seed)` — byte-identical across worker
/// counts and across reruns.
#[test]
fn faulted_sweep_json_is_identical_across_worker_counts() {
    let opts = RunOptions::quick();
    let mut flapped =
        ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000, &opts);
    flapped.faults =
        FaultPlan::flap(SimDuration::from_millis(1500), SimDuration::from_millis(400));
    let mut lossy =
        ScenarioConfig::new(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000, &opts);
    lossy.loss = LossModel::GilbertElliott { p_gb: 0.002, p_bg: 0.2 };
    let grid = [flapped, lossy];

    let sweep_json = |workers: usize| -> String {
        let out = try_sweep_with_workers(&grid, 2, &RunCache::disabled(), workers);
        assert!(out.failed.is_empty(), "faulted grid must still complete: {:?}", out.failed);
        out.results.iter().flat_map(|a| a.runs.iter().cloned()).collect::<Vec<_>>().to_json_string()
    };

    let serial = sweep_json(1);
    assert!(!serial.is_empty());
    for workers in [2, 0, 1] {
        let rerun = sweep_json(workers);
        assert_eq!(
            serial, rerun,
            "faulted sweep must be byte-identical regardless of worker count ({workers})"
        );
    }
}
