//! Determinism regression tests: the simulator's output must be a pure
//! function of `(config, seed)`, all the way down to the serialized bytes.
//!
//! The paper's methodology leans on repeat runs being comparable; in the
//! reproduction the stronger property holds — identical runs are
//! *identical*, so every figure is exactly regenerable. This suite guards
//! the property end-to-end through the in-repo JSON encoder: any
//! nondeterminism in the event schedule, the RNG plumbing, float
//! formatting, or object field ordering shows up as a byte diff here.

use elephants::cca::CcaKind;
use elephants::experiments::{run_scenario_traced, RunOptions, ScenarioConfig};
use elephants::{AqmKind, SimDuration};

fn dumbbell_cfg(seed: u64) -> ScenarioConfig {
    let mut opts = RunOptions::quick();
    opts.seed = seed;
    ScenarioConfig::new(CcaKind::Reno, CcaKind::Cubic, AqmKind::FqCodel, 2.0, 100_000_000, &opts)
}

fn trace_json(seed: u64) -> String {
    let cfg = dumbbell_cfg(seed);
    run_scenario_traced(&cfg, seed, SimDuration::from_millis(500)).to_json()
}

#[test]
fn same_seed_produces_byte_identical_json() {
    let a = trace_json(42);
    let b = trace_json(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same (config, seed) must serialize to identical bytes");
}

#[test]
fn different_seeds_produce_different_json() {
    let a = trace_json(42);
    let b = trace_json(43);
    assert_ne!(a, b, "different seeds must produce observably different runs");
}
