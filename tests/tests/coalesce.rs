//! Receive-side coalescing identity and conservation tests.
//!
//! PR 7 adds an opt-in GRO-style coalescing layer to the TCP receiver.
//! Two properties pin its safety envelope:
//!
//! 1. **Identity when off** — with coalescing disabled (the default), every
//!    run's `RunMetrics` JSON must be byte-identical to fixtures pinned
//!    from the build *before* the coalescing layer (and the monomorphized
//!    checker dispatch) existed. Any diff here means the refactor changed
//!    simulation behaviour, not just its speed.
//! 2. **Conservation when on** — with coalescing enabled, runs across the
//!    5×5 CCA×AQM grid must stay clean under the strict invariant checker
//!    (packet conservation: aggregation must not create or destroy data)
//!    and keep goodput physically conserved — below link capacity, above
//!    collapse — relative to the non-coalesced run.
//!
//! Regenerate the pinned fixtures (only when intentionally re-baselining,
//! from a build whose behaviour is known-good) with:
//!
//! ```sh
//! UPDATE_FIXTURES=1 cargo test -q -p integration-tests --test coalesce
//! ```

use elephants::cca::CcaKind;
use elephants::experiments::{RunOptions, Runner, ScenarioConfig};
use elephants::json::ToJson;
use elephants::netsim::CheckMode;
use elephants::{AqmKind, SimDuration};
use std::path::PathBuf;

const FIXTURE_SEED: u64 = 42;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/coalesce")
}

/// The pinned cells: one per AQM, cycling through the five CCAs (all vs
/// CUBIC) so every discipline and every sender implementation appears.
/// 100 Mbps quick keeps each cell a debug-mode-friendly few seconds.
fn fixture_cells() -> Vec<(String, ScenarioConfig)> {
    let pairs = [
        (CcaKind::BbrV1, AqmKind::Fifo),
        (CcaKind::BbrV2, AqmKind::Red),
        (CcaKind::Cubic, AqmKind::FqCodel),
        (CcaKind::Reno, AqmKind::Codel),
        (CcaKind::Htcp, AqmKind::Pie),
    ];
    pairs
        .iter()
        .map(|&(cca, aqm)| {
            let mut opts = RunOptions::quick();
            opts.seed = FIXTURE_SEED;
            let cfg =
                ScenarioConfig::new(cca, CcaKind::Cubic, aqm, 2.0, 100_000_000, &opts);
            (format!("{cca}_{aqm}.json"), cfg)
        })
        .collect()
}

fn metrics_json(cfg: &ScenarioConfig) -> String {
    Runner::new(cfg)
        .seed(FIXTURE_SEED)
        .run()
        .unwrap_or_else(|e| panic!("{} failed: {e}", cfg.label()))
        .into_first()
        .metrics()
        .to_json_string()
}

/// Coalescing disabled (the default) must reproduce the pre-change build's
/// pinned `RunMetrics` byte-for-byte. This is the contract that lets the
/// hot-path refactor land as a pure optimization.
#[test]
fn coalesce_off_is_byte_identical_to_pre_change_fixtures() {
    let dir = fixture_dir();
    let regen = std::env::var_os("UPDATE_FIXTURES").is_some();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
    }
    for (name, cfg) in fixture_cells() {
        let got = metrics_json(&cfg);
        let path = dir.join(&name);
        if regen {
            std::fs::write(&path, &got).unwrap();
            eprintln!("regenerated fixture {}", path.display());
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); regenerate with UPDATE_FIXTURES=1 \
                 only from a known-good build",
                path.display()
            )
        });
        assert_eq!(
            got,
            want,
            "{}: RunMetrics diverged from the pre-change pinned fixture",
            cfg.label()
        );
    }
}

/// Every CCA×AQM cell of the paper grid, run with coalescing enabled under
/// the strict runtime checker: the batched ACK path must satisfy the same
/// packet-conservation invariants as the per-segment default (no packet
/// created or destroyed by aggregation — that is what the checker proves),
/// and the goodput it delivers must stay physically conserved: bounded by
/// link capacity above and by no-collapse below. Exact goodput equality is
/// *not* asserted — ACK timing feeds back into the congestion controller,
/// so coalescing legitimately shifts short-window dynamics (Reno under PIE
/// moves by ~40% over a 2 s window; per-ACK window growth makes loss-based
/// CCAs ramp slower under ACK thinning); what it must never do is
/// manufacture bytes or wedge the transfer.
#[test]
fn coalesce_on_conserves_delivery_across_the_grid_under_strict_check() {
    const CCAS: [CcaKind; 5] =
        [CcaKind::Reno, CcaKind::Cubic, CcaKind::Htcp, CcaKind::BbrV1, CcaKind::BbrV2];
    const AQMS: [AqmKind; 5] =
        [AqmKind::Fifo, AqmKind::Red, AqmKind::Codel, AqmKind::FqCodel, AqmKind::Pie];
    for cca in CCAS {
        for aqm in AQMS {
            let build = |coalesce: bool| {
                // 8 s (6 s measurement window past warmup) lets steady
                // state dominate the slower ACK-thinned ramp while keeping
                // the 25-cell grid debug-mode tractable.
                ScenarioConfig::builder(
                    cca,
                    CcaKind::Cubic,
                    aqm,
                    2.0,
                    100_000_000,
                    &RunOptions::quick(),
                )
                .duration(SimDuration::from_secs(8))
                .coalesce(coalesce)
                .build()
                .unwrap()
            };
            let run = |cfg: &ScenarioConfig| {
                let outcome = Runner::new(cfg)
                    .seed(FIXTURE_SEED)
                    .check(CheckMode::Strict)
                    .run()
                    .unwrap_or_else(|e| panic!("{} failed: {e}", cfg.label()));
                assert!(
                    outcome.check_reports.iter().all(|r| r.is_clean()),
                    "{}: strict checker reported violations",
                    cfg.label()
                );
                outcome.into_first()
            };
            let plain = run(&build(false));
            let gro = run(&build(true));

            let total = |r: &elephants::experiments::RunResult| -> f64 {
                r.sender_mbps.iter().sum()
            };
            let (p, g) = (total(&plain), total(&gro));
            assert!(g > 0.0, "{cca}/{aqm}: coalesced run delivered nothing");
            // Window-average goodput can exceed the link rate by the queue
            // standing at the window boundary: the 2-BDP queue holds
            // 12.4 Mbit, worth a few Mbps over the 6 s window.
            assert!(
                g <= 106.0,
                "{cca}/{aqm}: coalesced goodput {g:.2} Mbps exceeds the \
                 100 Mbps bottleneck plus queue drain — bytes were manufactured"
            );
            assert!(
                g >= 0.5 * p,
                "{cca}/{aqm}: coalescing collapsed goodput \
                 ({p:.2} Mbps plain vs {g:.2} Mbps coalesced)"
            );
        }
    }
}
