//! Chaos corpus replay: once-found bugs stay fixed.
//!
//! PR 8 adds the deterministic chaos harness (`crates/chaos`). Every
//! failure it ever finds is shrunk and committed as a fixture under
//! `tests/fixtures/chaos/`; this test re-judges the whole corpus through
//! the four-oracle stack on every `cargo test`, so a regression on any
//! previously-found minimal repro fails CI immediately.
//!
//! The corpus is seeded with a few **curated** generated cases (fault
//! plans, loss models, coalescing) so the replay path is exercised even
//! while the fuzzer has found no real bugs. Regenerate those after an
//! intentional generator change with:
//!
//! ```sh
//! UPDATE_CHAOS_SEEDS=1 cargo test -q -p integration-tests --test chaos_corpus
//! ```
//!
//! (then delete any stale `chaos-*.json` the old generator produced, and
//! re-run without the env var to confirm everything judges clean).

use elephants::chaos::{
    case_cost, default_corpus_dir, fixture_stem, generate_case, load_corpus, replay_all,
    replay_failures, save_fixture, CaseOutcome, ChaosFixture,
};
use elephants::experiments::ScenarioConfig;

/// Debug-mode budget per curated case: the judge runs every config twice
/// (determinism oracle), so keep each run to a few megabytes of traffic.
const CURATED_COST_CAP: u64 = 4_000_000;

fn first_seed(tag: &str, pred: impl Fn(&ScenarioConfig) -> bool) -> (u64, ScenarioConfig) {
    (0..10_000u64)
        .map(|s| (s, generate_case(s)))
        .find(|(_, c)| case_cost(c) < CURATED_COST_CAP && pred(c))
        .unwrap_or_else(|| panic!("no cheap generated case matching `{tag}` in 10k seeds"))
}

/// The curated corner cases: one faulted, one lossy, one coalescing, one
/// multi-bottleneck and one staggered-start run, each found by a
/// deterministic scan over the generator's seed space.
fn curated_fixtures() -> Vec<ChaosFixture> {
    let picks = [
        ("faulted", first_seed("faulted", |c| !c.faults.is_empty())),
        ("lossy", first_seed("lossy", |c| c.loss != elephants::netsim::LossModel::None)),
        ("coalescing", first_seed("coalescing", |c| c.coalesce)),
        (
            "multi-bottleneck",
            first_seed("multi-bottleneck", |c| c.topology.n_bottlenecks() > 1),
        ),
        ("staggered", first_seed("staggered", |c| c.is_staggered())),
    ];
    picks
        .into_iter()
        .map(|(tag, (seed, config))| ChaosFixture {
            found_by_seed: seed,
            oracle: "curated".to_string(),
            detail: format!("curated seed corpus: cheap {tag} case"),
            config,
        })
        .collect()
}

#[test]
fn curated_seed_fixtures_are_committed_and_current() {
    let dir = default_corpus_dir();
    for fixture in curated_fixtures() {
        let path = dir.join(format!("{}.json", fixture_stem(&fixture.config)));
        if std::env::var("UPDATE_CHAOS_SEEDS").is_ok() {
            save_fixture(&dir, &fixture).expect("write curated fixture");
            eprintln!("updated {}", path.display());
            continue;
        }
        assert!(
            path.is_file(),
            "curated fixture {} missing — regenerate with UPDATE_CHAOS_SEEDS=1",
            path.display()
        );
    }
}

#[test]
fn committed_corpus_replays_clean() {
    let dir = default_corpus_dir();
    let corpus = load_corpus(&dir).expect("corpus must parse");
    assert!(
        !corpus.is_empty(),
        "committed corpus must not be empty (curated seeds live in {})",
        dir.display()
    );
    let results = replay_all(&dir).expect("corpus must parse");
    let failures = replay_failures(&results);
    assert!(
        failures.is_empty(),
        "corpus regressions: {:?}",
        failures
            .iter()
            .map(|f| (f.path.display().to_string(), format!("{:?}", f.outcome)))
            .collect::<Vec<_>>()
    );
    // Skips are tolerated (wall-clock watchdog under load) but should be
    // loud in the log: a corpus that always skips checks nothing.
    for r in &results {
        if let CaseOutcome::Skip { reason } = &r.outcome {
            eprintln!("chaos fixture {} skipped: {reason}", r.path.display());
        }
    }
}
