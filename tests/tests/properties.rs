//! Property-based tests over the public APIs (seeded harness).

use elephants::aqm::{Codel, CodelConfig, FqCodel, FqCodelConfig, Red, RedConfig};
use elephants::metrics::{jain_index, relative_retransmissions, Summary};
use elephants::netsim::prelude::*;
use elephants::netsim::prop::{run_cases, vec_of, DEFAULT_CASES};
use elephants::netsim::{prop_check, prop_check_eq, Aqm, FlowId, NodeId, Packet};

fn gen_throughputs(rng: &mut SmallRng) -> Vec<f64> {
    vec_of(rng, 1, 20, |r| r.random_range(0.0f64..1e10))
}

#[test]
fn jain_index_is_in_unit_interval() {
    run_cases("jain_index_is_in_unit_interval", DEFAULT_CASES, |rng| {
        let tputs = gen_throughputs(rng);
        let j = jain_index(&tputs);
        prop_check!(j > 0.0 && j <= 1.0 + 1e-12, "J = {j}");
        Ok(())
    });
}

#[test]
fn jain_index_is_scale_invariant() {
    run_cases("jain_index_is_scale_invariant", DEFAULT_CASES, |rng| {
        let tputs = gen_throughputs(rng);
        let k = rng.random_range(0.001f64..1000.0);
        let a = jain_index(&tputs);
        let scaled: Vec<f64> = tputs.iter().map(|&x| x * k).collect();
        let b = jain_index(&scaled);
        prop_check!((a - b).abs() < 1e-9, "{a} vs {b}");
        Ok(())
    });
}

#[test]
fn jain_equals_one_iff_all_equal() {
    run_cases("jain_equals_one_iff_all_equal", DEFAULT_CASES, |rng| {
        let x = rng.random_range(1.0f64..1e9);
        let n = rng.random_range(2usize..10);
        let v = vec![x; n];
        prop_check!((jain_index(&v) - 1.0).abs() < 1e-12);
        Ok(())
    });
}

#[test]
fn rr_is_multiplicative_identity_on_self() {
    run_cases("rr_is_multiplicative_identity_on_self", DEFAULT_CASES, |rng| {
        let r = rng.random_range(1u64..1_000_000);
        prop_check_eq!(relative_retransmissions(r, r), 1.0);
        Ok(())
    });
}

#[test]
fn summary_bounds_hold() {
    run_cases("summary_bounds_hold", DEFAULT_CASES, |rng| {
        let xs = vec_of(rng, 1, 50, |r| r.random_range(-1e12f64..1e12));
        let s = Summary::of(&xs);
        prop_check!(s.min <= s.mean + 1e-6 && s.mean <= s.max + 1e-6);
        prop_check!(s.std >= 0.0);
        prop_check_eq!(s.n, xs.len());
        Ok(())
    });
}

fn mk_pkt(flow: u32, seq: u64, size: u32) -> Packet {
    Packet::data(FlowId(flow), NodeId(0), NodeId(1), seq, size, SimTime::ZERO)
}

/// A random enqueue/dequeue script applied to a queue discipline.
#[derive(Debug, Clone)]
enum Op {
    Enq { flow: u32, size: u32 },
    Deq,
    Advance { us: u64 },
}

fn gen_ops(rng: &mut SmallRng) -> Vec<Op> {
    vec_of(rng, 1, 200, |r| match r.random_range(0u32..3) {
        0 => Op::Enq { flow: r.random_range(0u32..8), size: r.random_range(64u32..9001) },
        1 => Op::Deq,
        _ => Op::Advance { us: r.random_range(1u64..5_000) },
    })
}

fn exercise(aqm: &mut dyn Aqm, ops: &[Op]) -> Result<(), String> {
    let mut rng = SmallRng::seed_from_u64(99);
    let mut now = SimTime::ZERO;
    let mut seq = 0u64;
    for op in ops {
        match *op {
            Op::Enq { flow, size } => {
                seq += 1;
                let _ = aqm.enqueue(mk_pkt(flow, seq, size), now, &mut rng);
            }
            Op::Deq => {
                let _ = aqm.dequeue(now, &mut rng);
            }
            Op::Advance { us } => now += SimDuration::from_micros(us),
        }
        // Conservation: every accepted packet is delivered, dropped at
        // dequeue, or still queued. FQ-CoDel may additionally evict
        // *accepted* packets on overflow (fattest-flow drop), so its
        // `enqueued` counter sits between the strict sum and the sum plus
        // evictions.
        let s = aqm.stats();
        let rhs = s.dequeued + s.dropped_dequeue + aqm.backlog_pkts() as u64;
        if aqm.name() == "fq_codel" {
            prop_check!(
                s.enqueued >= rhs && s.enqueued <= rhs + s.dropped_enqueue,
                "conservation violated for fq_codel: enq={} rhs={} evict={}",
                s.enqueued,
                rhs,
                s.dropped_enqueue
            );
        } else {
            prop_check_eq!(s.enqueued, rhs, "conservation violated for {}", aqm.name());
        }
    }
    Ok(())
}

#[test]
fn droptail_conserves_packets() {
    run_cases("droptail_conserves_packets", 64, |rng| {
        let ops = gen_ops(rng);
        let mut q = DropTail::new(100_000);
        exercise(&mut q, &ops)
    });
}

#[test]
fn red_conserves_packets() {
    run_cases("red_conserves_packets", 64, |rng| {
        let ops = gen_ops(rng);
        let mut q = Red::new(RedConfig::tc_defaults(200_000, 100_000_000, 1500));
        exercise(&mut q, &ops)
    });
}

#[test]
fn codel_conserves_packets() {
    run_cases("codel_conserves_packets", 64, |rng| {
        let ops = gen_ops(rng);
        let mut q =
            Codel::new(CodelConfig { limit_bytes: 100_000, mtu: 1500, ..Default::default() });
        exercise(&mut q, &ops)
    });
}

#[test]
fn fq_codel_conserves_packets() {
    run_cases("fq_codel_conserves_packets", 64, |rng| {
        let ops = gen_ops(rng);
        let mut q = FqCodel::new(FqCodelConfig::tc_defaults(100_000, 1500));
        exercise(&mut q, &ops)
    });
}

#[test]
fn fq_codel_backlog_bytes_never_negative_nor_leaks() {
    run_cases("fq_codel_backlog_bytes_never_negative_nor_leaks", 64, |rng| {
        let ops = gen_ops(rng);
        let mut q = FqCodel::new(FqCodelConfig::tc_defaults(50_000, 1500));
        let mut rng2 = SmallRng::seed_from_u64(3);
        let mut now = SimTime::ZERO;
        let mut seq = 0;
        for op in &ops {
            match *op {
                Op::Enq { flow, size } => {
                    seq += 1;
                    q.enqueue(mk_pkt(flow, seq, size), now, &mut rng2);
                }
                Op::Deq => {
                    q.dequeue(now, &mut rng2);
                }
                Op::Advance { us } => now += SimDuration::from_micros(us),
            }
        }
        // Drain completely; accounting must return exactly to zero.
        now += SimDuration::from_secs(10);
        let mut guard = 0;
        while q.backlog_pkts() > 0 {
            let r = q.dequeue(now, &mut rng2);
            prop_check!(r.pkt.is_some() || r.dropped > 0, "backlog stuck at {}", q.backlog_pkts());
            guard += 1;
            prop_check!(guard < 10_000);
        }
        prop_check_eq!(q.backlog_bytes(), 0);
        Ok(())
    });
}

/// End-to-end determinism over random scenario knobs: two identical
/// short runs must agree exactly.
#[test]
fn simulation_is_deterministic() {
    run_cases("simulation_is_deterministic", 16, |rng| {
        use elephants::cca::CcaKind;
        use elephants::experiments::{RunOptions, Runner, ScenarioConfig};
        use elephants::AqmKind;
        let seed = rng.random_range(0u64..1000);
        let q = rng.random_range(1usize..4);
        let cca = CcaKind::ALL[rng.random_range(0usize..5)];
        let cfg = ScenarioConfig::new(
            cca,
            CcaKind::Cubic,
            AqmKind::PAPER_SET[q % 3],
            [0.5, 2.0, 16.0][q - 1],
            100_000_000,
            &RunOptions::quick(),
        );
        let a = Runner::new(&cfg).seed(seed).run().expect("run must succeed").into_first();
        let b = Runner::new(&cfg).seed(seed).run().expect("run must succeed").into_first();
        prop_check_eq!(a.events, b.events);
        prop_check_eq!(a.sender_mbps, b.sender_mbps);
        prop_check_eq!(a.retransmits, b.retransmits);
        Ok(())
    });
}
