//! Property-based tests over the public APIs (proptest).

use elephants::aqm::{Codel, CodelConfig, FqCodel, FqCodelConfig, Red, RedConfig};
use elephants::metrics::{jain_index, relative_retransmissions, Summary};
use elephants::netsim::prelude::*;
use elephants::netsim::{Aqm, FlowId, NodeId, Packet};
use proptest::prelude::*;

fn arb_throughputs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e10, 1..20)
}

proptest! {
    #[test]
    fn jain_index_is_in_unit_interval(tputs in arb_throughputs()) {
        let j = jain_index(&tputs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "J = {j}");
    }

    #[test]
    fn jain_index_is_scale_invariant(tputs in arb_throughputs(), k in 0.001f64..1000.0) {
        let a = jain_index(&tputs);
        let scaled: Vec<f64> = tputs.iter().map(|&x| x * k).collect();
        let b = jain_index(&scaled);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn jain_equals_one_iff_all_equal(x in 1.0f64..1e9, n in 2usize..10) {
        let v = vec![x; n];
        prop_assert!((jain_index(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rr_is_multiplicative_identity_on_self(r in 1u64..1_000_000) {
        prop_assert_eq!(relative_retransmissions(r, r), 1.0);
    }

    #[test]
    fn summary_bounds_hold(xs in proptest::collection::vec(-1e12f64..1e12, 1..50)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.mean + 1e-6 && s.mean <= s.max + 1e-6);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.n, xs.len());
    }
}

fn mk_pkt(flow: u32, seq: u64, size: u32) -> Packet {
    Packet::data(FlowId(flow), NodeId(0), NodeId(1), seq, size, SimTime::ZERO)
}

/// A random enqueue/dequeue script applied to a queue discipline.
#[derive(Debug, Clone)]
enum Op {
    Enq { flow: u32, size: u32 },
    Deq,
    Advance { us: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..8, 64u32..9001).prop_map(|(flow, size)| Op::Enq { flow, size }),
            Just(Op::Deq),
            (1u64..5_000).prop_map(|us| Op::Advance { us }),
        ],
        1..200,
    )
}

fn exercise(aqm: &mut dyn Aqm, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut rng = SmallRng::seed_from_u64(99);
    let mut now = SimTime::ZERO;
    let mut seq = 0u64;
    for op in ops {
        match *op {
            Op::Enq { flow, size } => {
                seq += 1;
                let _ = aqm.enqueue(mk_pkt(flow, seq, size), now, &mut rng);
            }
            Op::Deq => {
                let _ = aqm.dequeue(now, &mut rng);
            }
            Op::Advance { us } => now += SimDuration::from_micros(us),
        }
        // Conservation: every accepted packet is delivered, dropped at
        // dequeue, or still queued. FQ-CoDel may additionally evict
        // *accepted* packets on overflow (fattest-flow drop), so its
        // `enqueued` counter sits between the strict sum and the sum plus
        // evictions.
        let s = aqm.stats();
        let rhs = s.dequeued + s.dropped_dequeue + aqm.backlog_pkts() as u64;
        if aqm.name() == "fq_codel" {
            prop_assert!(
                s.enqueued >= rhs && s.enqueued <= rhs + s.dropped_enqueue,
                "conservation violated for fq_codel: enq={} rhs={} evict={}",
                s.enqueued,
                rhs,
                s.dropped_enqueue
            );
        } else {
            prop_assert_eq!(s.enqueued, rhs, "conservation violated for {}", aqm.name());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn droptail_conserves_packets(ops in arb_ops()) {
        let mut q = DropTail::new(100_000);
        exercise(&mut q, &ops)?;
    }

    #[test]
    fn red_conserves_packets(ops in arb_ops()) {
        let mut q = Red::new(RedConfig::tc_defaults(200_000, 100_000_000, 1500));
        exercise(&mut q, &ops)?;
    }

    #[test]
    fn codel_conserves_packets(ops in arb_ops()) {
        let mut q = Codel::new(CodelConfig { limit_bytes: 100_000, mtu: 1500, ..Default::default() });
        exercise(&mut q, &ops)?;
    }

    #[test]
    fn fq_codel_conserves_packets(ops in arb_ops()) {
        let mut q = FqCodel::new(FqCodelConfig::tc_defaults(100_000, 1500));
        exercise(&mut q, &ops)?;
    }

    #[test]
    fn fq_codel_backlog_bytes_never_negative_nor_leaks(ops in arb_ops()) {
        let mut q = FqCodel::new(FqCodelConfig::tc_defaults(50_000, 1500));
        let mut rng = SmallRng::seed_from_u64(3);
        let mut now = SimTime::ZERO;
        let mut seq = 0;
        for op in &ops {
            match *op {
                Op::Enq { flow, size } => {
                    seq += 1;
                    q.enqueue(mk_pkt(flow, seq, size), now, &mut rng);
                }
                Op::Deq => { q.dequeue(now, &mut rng); }
                Op::Advance { us } => now += SimDuration::from_micros(us),
            }
        }
        // Drain completely; accounting must return exactly to zero.
        now += SimDuration::from_secs(10);
        let mut guard = 0;
        while q.backlog_pkts() > 0 {
            let r = q.dequeue(now, &mut rng);
            prop_assert!(r.pkt.is_some() || r.dropped > 0, "backlog stuck at {}", q.backlog_pkts());
            guard += 1;
            prop_assert!(guard < 10_000);
        }
        prop_assert_eq!(q.backlog_bytes(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end determinism over random scenario knobs: two identical
    /// short runs must agree exactly.
    #[test]
    fn simulation_is_deterministic(
        seed in 0u64..1000,
        q in 1usize..4,
        cca_idx in 0usize..5,
    ) {
        use elephants::cca::CcaKind;
        use elephants::experiments::{run_scenario, RunOptions, ScenarioConfig};
        use elephants::AqmKind;
        let cca = CcaKind::ALL[cca_idx];
        let cfg = ScenarioConfig::new(
            cca,
            CcaKind::Cubic,
            AqmKind::PAPER_SET[q % 3],
            [0.5, 2.0, 16.0][q - 1],
            100_000_000,
            &RunOptions::quick(),
        );
        let a = run_scenario(&cfg, seed);
        let b = run_scenario(&cfg, seed);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.sender_mbps, b.sender_mbps);
        prop_assert_eq!(a.retransmits, b.retransmits);
    }
}
