//! Dependency guard: the workspace must stay hermetic.
//!
//! Every `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`
//! entry in every workspace manifest must resolve to an in-repo path crate
//! — either directly (`path = "..."`) or through `workspace = true`
//! inheritance from the root `[workspace.dependencies]` table, whose
//! entries must themselves be path deps. A registry dependency (`foo =
//! "1.0"` or `foo = { version = "..." }`) fails this test with the
//! offending manifest and line, before it gets a chance to break the
//! offline build.

use std::path::{Path, PathBuf};

/// Collect every Cargo.toml under the workspace root, skipping build
/// output and VCS metadata.
fn find_manifests(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name == "Cargo.toml" {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

/// Does a dependency-table line declare an in-repo dependency?
fn line_is_path_dep(line: &str) -> bool {
    line.contains("path =") || line.contains("path=") || line.contains("workspace = true")
}

/// Scan one manifest; returns `(line_number, line)` for every dependency
/// entry that is not an in-repo path/workspace dependency.
fn scan_manifest(text: &str) -> Vec<(usize, String)> {
    let mut offending = Vec::new();
    let mut in_dep_table = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            // `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
            // `[workspace.dependencies]`, and `[target.'...'.dependencies]`
            // all end in "dependencies]". Dotted headers like
            // `[dependencies.foo]` name a single dep as a sub-table; those
            // are checked entry-by-entry below.
            in_dep_table = line.ends_with("dependencies]");
            if line.contains("dependencies.") {
                // Sub-table form: the table itself must declare a path.
                in_dep_table = true;
            }
            continue;
        }
        if !in_dep_table {
            continue;
        }
        // Inside a dependency table every `name = value` entry must point
        // at an in-repo crate. Sub-table bodies (`path = "..."`, `version`)
        // are key/value lines too; `path` keys pass the same check.
        if line.contains('=') && !line_is_path_dep(line) {
            // Allow pure structural keys inside a `[dependencies.foo]`
            // sub-table that has a `path` key elsewhere; to stay simple and
            // strict, only `features`/`default-features` keys are excused.
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "features" || key == "default-features" || key == "optional" {
                continue;
            }
            offending.push((idx + 1, raw.to_string()));
        }
    }
    offending
}

#[test]
fn every_workspace_dependency_is_a_path_dependency() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root").to_path_buf();
    let manifests = find_manifests(&root);
    assert!(
        manifests.len() >= 16,
        "expected the full workspace (root + members incl. crates/analysis), found {} manifests",
        manifests.len()
    );

    let mut violations = Vec::new();
    for manifest in &manifests {
        let text = std::fs::read_to_string(manifest).expect("manifest readable");
        for (line_no, line) in scan_manifest(&text) {
            violations.push(format!("{}:{line_no}: {line}", manifest.display()));
        }
    }
    assert!(
        violations.is_empty(),
        "non-path dependencies found (the workspace must stay hermetic):\n{}",
        violations.join("\n")
    );
}

#[test]
fn scanner_flags_registry_dependencies() {
    let bad = "[package]\nname = \"x\"\n[dependencies]\nrand = \"0.9\"\nserde = { version = \"1\", features = [\"derive\"] }\n";
    let hits = scan_manifest(bad);
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits[0].1.contains("rand"));
    assert!(hits[1].1.contains("serde"));
}

#[test]
fn scanner_accepts_path_and_workspace_dependencies() {
    let good = "[package]\nname = \"x\"\nversion.workspace = true\n[dependencies]\nfoo = { path = \"../foo\" }\nbar = { workspace = true }\n[dev-dependencies]\nbaz = { path = \"../baz\", features = [\"extra\"] }\n";
    assert!(scan_manifest(good).is_empty());
}
