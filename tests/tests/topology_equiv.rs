//! Topology-subsystem equivalence tests.
//!
//! PR 9 lifts the hard-coded dumbbell into a `TopologySpec` on
//! `ScenarioConfig`. Two properties pin the redesign's safety envelope:
//!
//! 1. **Dumbbell identity** — the default (dumbbell) topology path must
//!    produce `RunMetrics` JSON byte-identical to fixtures pinned from the
//!    build *before* the topology subsystem existed, across 5 CCA×AQM
//!    cells. Any diff means the redesign changed simulation behaviour.
//! 2. **Cache-key stability** — non-topology configs must keep the exact
//!    cache keys they had before the redesign (pinned as strings), so no
//!    cached grid result is spuriously invalidated beyond the one
//!    explicit schema-version bump.
//!
//! Regenerate the pinned fixtures (only when intentionally re-baselining,
//! from a build whose behaviour is known-good) with:
//!
//! ```sh
//! UPDATE_FIXTURES=1 cargo test -q -p integration-tests --test topology_equiv
//! ```

use elephants::cca::CcaKind;
use elephants::experiments::{RunOptions, Runner, ScenarioConfig};
use elephants::json::ToJson;
use elephants::netsim::{CheckMode, TopologySpec};
use elephants::AqmKind;
use std::path::PathBuf;

const FIXTURE_SEED: u64 = 42;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/topology")
}

/// The pinned cells: one per AQM, cycling through the five CCAs (all vs
/// CUBIC) so every discipline and every sender implementation appears.
/// 100 Mbps quick keeps each cell a debug-mode-friendly few seconds.
fn fixture_cells() -> Vec<(String, ScenarioConfig)> {
    let pairs = [
        (CcaKind::BbrV1, AqmKind::Fifo),
        (CcaKind::BbrV2, AqmKind::Red),
        (CcaKind::Cubic, AqmKind::FqCodel),
        (CcaKind::Reno, AqmKind::Codel),
        (CcaKind::Htcp, AqmKind::Pie),
    ];
    pairs
        .iter()
        .map(|&(cca, aqm)| {
            let mut opts = RunOptions::quick();
            opts.seed = FIXTURE_SEED;
            let cfg =
                ScenarioConfig::new(cca, CcaKind::Cubic, aqm, 2.0, 100_000_000, &opts);
            (format!("{cca}_{aqm}.json"), cfg)
        })
        .collect()
}

fn metrics_json(cfg: &ScenarioConfig) -> String {
    Runner::new(cfg)
        .seed(FIXTURE_SEED)
        .run()
        .unwrap_or_else(|e| panic!("{} failed: {e}", cfg.label()))
        .into_first()
        .metrics()
        .to_json_string()
}

/// The default (dumbbell) topology path must reproduce the pre-redesign
/// build's pinned `RunMetrics` byte-for-byte. This is the contract that
/// lets the topology generalization land without perturbing the paper
/// grid.
#[test]
fn dumbbell_topology_is_byte_identical_to_pre_change_fixtures() {
    let dir = fixture_dir();
    let regen = std::env::var_os("UPDATE_FIXTURES").is_some();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
    }
    for (name, cfg) in fixture_cells() {
        let got = metrics_json(&cfg);
        let path = dir.join(&name);
        if regen {
            std::fs::write(&path, &got).unwrap();
            eprintln!("regenerated fixture {}", path.display());
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); regenerate with UPDATE_FIXTURES=1 \
                 only from a known-good build",
                path.display()
            )
        });
        assert_eq!(
            got,
            want,
            "{}: RunMetrics diverged from the pre-change pinned fixture",
            cfg.label()
        );
    }
}

/// Cache keys for non-topology configs are pinned as literal strings from
/// the pre-redesign build: the topology knob must be suffix-only (empty
/// for the default dumbbell), like every other opt-in knob.
#[test]
fn cache_keys_for_default_topology_are_unchanged() {
    let dir = fixture_dir();
    let regen = std::env::var_os("UPDATE_FIXTURES").is_some();
    let path = dir.join("cache_keys.txt");
    let got: String = fixture_cells()
        .iter()
        .map(|(_, cfg)| format!("{}\n", cfg.cache_key(FIXTURE_SEED)))
        .collect();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated fixture {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); regenerate with UPDATE_FIXTURES=1", path.display())
    });
    assert_eq!(got, want, "cache keys for default-topology configs changed");
}

/// A strict-checked 3-hop parking-lot run completes with zero invariant
/// violations, reports one `LinkResult` per shaped hop, and every hop
/// carries traffic (the cross-group long flow guarantees this).
#[test]
fn parking_lot_runs_strict_clean_with_per_link_reports() {
    let mut opts = RunOptions::quick();
    opts.seed = FIXTURE_SEED;
    opts.flow_scale = 0.5;
    let mut cfg = ScenarioConfig::new(
        CcaKind::Cubic,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        50_000_000,
        &opts,
    );
    cfg.topology = TopologySpec::ParkingLot { hops: 3 };
    let outcome = Runner::new(&cfg)
        .seed(FIXTURE_SEED)
        .check(CheckMode::Strict)
        .run()
        .expect("strict parking-lot run");
    let violations: u64 =
        outcome.check_reports.iter().map(|r| r.violations_total).sum();
    assert_eq!(violations, 0, "strict checker must stay clean on multi-hop");
    let r = outcome.into_first();
    assert_eq!(r.sender_mbps.len(), 4, "K+1 flow groups on a K-hop parking lot");
    assert_eq!(r.links.len(), 3, "one LinkResult per shaped hop");
    for l in &r.links {
        assert!(l.utilization > 0.0, "hop {} idle: {l:?}", l.link);
    }
}

/// Heterogeneous-RTT multi-dumbbell: the short-RTT group outruns the
/// long-RTT group under loss-based congestion control on one shared
/// bottleneck (the classic RTT-unfairness asymmetry).
#[test]
fn multi_dumbbell_short_rtt_group_wins_under_cubic() {
    let mut opts = RunOptions::quick();
    opts.seed = FIXTURE_SEED;
    let mut cfg = ScenarioConfig::new(
        CcaKind::Cubic,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        50_000_000,
        &opts,
    );
    cfg.topology = TopologySpec::MultiDumbbell { rtts_ms: vec![10, 124] };
    let r = Runner::new(&cfg)
        .seed(FIXTURE_SEED)
        .run()
        .expect("multi-dumbbell run")
        .into_first();
    assert_eq!(r.sender_mbps.len(), 2);
    assert_eq!(r.links.len(), 1, "multi-dumbbell shares one bottleneck");
    assert!(
        r.sender_mbps[0] > r.sender_mbps[1],
        "10 ms group must beat the 124 ms group: {:?}",
        r.sender_mbps
    );
}
