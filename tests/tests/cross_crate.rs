//! Cross-crate integration: wiring the simulator, TCP stack, AQMs and
//! metrics together through the public APIs.

use elephants::cca::{build_cca_seeded, CcaKind};
use elephants::netsim::prelude::*;
use elephants::netsim::LossModel;
use elephants::tcp::{flow_pair, ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};
use elephants::{AqmKind, FairnessStudy};

#[test]
fn study_outcome_invariants_hold_across_grid_sample() {
    for aqm in ["fifo", "red", "fq_codel"] {
        for (a, b) in [("cubic", "cubic"), ("bbr2", "cubic")] {
            let out = FairnessStudy::builder()
                .cca_pair(a, b)
                .aqm(aqm)
                .bandwidth_mbps(100)
                .queue_bdp(1.0)
                .duration_secs(6)
                .build()
                .unwrap()
                .run();
            assert!(out.jain > 0.0 && out.jain <= 1.0, "{aqm} {a}/{b} J={}", out.jain);
            assert!(out.utilization >= 0.0 && out.utilization <= 1.0);
            assert!(out.sender1_mbps >= 0.0 && out.sender2_mbps >= 0.0);
            assert_eq!(out.flows, 2);
        }
    }
}

#[test]
fn repeats_average_differs_from_single_seed() {
    let single = FairnessStudy::builder()
        .cca_pair("cubic", "cubic")
        .bandwidth_mbps(100)
        .duration_secs(5)
        .seed(1)
        .build()
        .unwrap()
        .run();
    let averaged = FairnessStudy::builder()
        .cca_pair("cubic", "cubic")
        .bandwidth_mbps(100)
        .duration_secs(5)
        .seed(1)
        .repeats(3)
        .build()
        .unwrap()
        .run();
    // Both valid; the averaged one used 3 seeds (weak check: both sane).
    assert!(single.utilization > 0.5 && averaged.utilization > 0.5);
}

#[test]
fn ecn_enabled_end_to_end_reduces_drops_with_fq_codel() {
    let run = |ecn: bool| {
        FairnessStudy::builder()
            .cca_pair("bbr2", "bbr2")
            .aqm("fq_codel")
            .bandwidth_mbps(100)
            .queue_bdp(2.0)
            .duration_secs(8)
            .ecn(ecn)
            .build()
            .unwrap()
            .run()
    };
    let without = run(false);
    let with = run(true);
    // ECN converts drops into marks: retransmissions must not increase.
    assert!(
        with.retransmits <= without.retransmits,
        "ECN should not increase retx: with={:.0} without={:.0}",
        with.retransmits,
        without.retransmits
    );
}

#[test]
fn custom_topology_with_loss_injection() {
    // Build everything by hand through the low-level APIs.
    let bw = Bandwidth::from_mbps(100);
    let spec = DumbbellSpec::paper(bw);
    let mut topo = spec.build();
    let bdp = bdp_bytes(bw, topo.base_rtt());
    topo.set_bottleneck_aqm(Box::new(DropTail::new(2 * bdp)));
    let bn = topo.bottleneck_link().unwrap();
    topo.link_mut(bn).loss_model = LossModel::Bernoulli { p: 0.001 };

    let mut sim = Simulator::new(
        topo,
        SimConfig {
            duration: SimDuration::from_secs(8),
            warmup: SimDuration::from_secs(2),
            max_events: u64::MAX,
        },
        11,
    );
    let tx = TcpSender::new(SenderConfig::default(), spec.receiver(0), build_cca_seeded(CcaKind::BbrV2, 8900, 1));
    let rx = TcpReceiver::new(ReceiverConfig::default(), spec.sender(0));
    sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
    let summary = sim.run();
    assert!(summary.bottleneck.fault_losses > 0, "loss model must fire");
    let goodput = summary.flows[0].window_goodput_bps(summary.window) / 1e6;
    assert!(goodput > 50.0, "BBRv2 should still move data under 0.1% loss: {goodput:.1}");
}

#[test]
fn gilbert_elliott_bursts_hurt_more_than_bernoulli_for_cubic() {
    let run = |model: LossModel| {
        let bw = Bandwidth::from_mbps(100);
        let spec = DumbbellSpec::paper(bw);
        let mut topo = spec.build();
        let bdp = bdp_bytes(bw, topo.base_rtt());
        topo.set_bottleneck_aqm(Box::new(DropTail::new(2 * bdp)));
        let bn = topo.bottleneck_link().unwrap();
        topo.link_mut(bn).loss_model = model;
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                duration: SimDuration::from_secs(8),
                warmup: SimDuration::from_secs(2),
                max_events: u64::MAX,
            },
            5,
        );
        let (tx, rx) = flow_pair(
            CcaKind::Cubic,
            SenderConfig::default(),
            ReceiverConfig::default(),
            spec.sender(0),
            spec.receiver(0),
        );
        sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
        let s = sim.run();
        s.flows[0].window_goodput_bps(s.window) / 1e6
    };
    let clean = run(LossModel::None);
    // Same average loss rate (~0.5%), different burstiness.
    let bursty = run(LossModel::GilbertElliott { p_gb: 0.001, p_bg: 0.2 });
    assert!(clean > bursty, "loss must cost goodput: clean={clean:.1} bursty={bursty:.1}");
}

#[test]
fn flow_scale_controls_flow_count() {
    let out = FairnessStudy::builder()
        .cca_pair("cubic", "cubic")
        .bandwidth_mbps(500)
        .duration_secs(4)
        .flow_scale(0.4)
        .build()
        .unwrap()
        .run();
    // Table 2 at 500 Mbps = 5 flows/node; 40% = 2/node = 4 total.
    assert_eq!(out.flows, 4);
}

#[test]
fn aqm_kind_constants_cover_paper_set() {
    assert_eq!(AqmKind::PAPER_SET.len(), 3);
    assert_eq!(CcaKind::ALL.len(), 5);
}

#[test]
fn pie_extension_keeps_delay_low_with_good_utilization() {
    // The PIE extension (RFC 8033): near-full utilization at 100 Mbps with
    // a 15 ms delay target — the standing queue stays far below what CUBIC
    // would build through plain FIFO.
    let fifo = elephants::FairnessStudy::builder()
        .cca_pair("cubic", "cubic")
        .aqm("fifo")
        .bandwidth_mbps(100)
        .queue_bdp(8.0)
        .duration_secs(15)
        .build()
        .unwrap()
        .run();
    let pie = elephants::FairnessStudy::builder()
        .cca_pair("cubic", "cubic")
        .aqm("pie")
        .bandwidth_mbps(100)
        .queue_bdp(8.0)
        .duration_secs(15)
        .build()
        .unwrap()
        .run();
    assert!(pie.utilization > 0.8, "PIE phi = {:.3}", pie.utilization);
    assert!(pie.jain > 0.85, "PIE J = {:.3}", pie.jain);
    // FIFO at 8 BDP has no drops to speak of but a giant queue; PIE trades
    // a few retransmissions for bounded delay.
    assert!(fifo.utilization > 0.9);
}
