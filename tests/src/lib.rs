//! Cross-crate integration tests for the `elephants` workspace live in
//! `tests/tests/`. This library only hosts shared helpers.

use elephants::{FairnessStudy, StudyOutcome};

/// Run a study for an explicit simulated duration.
pub fn study_secs(
    cca1: &str,
    cca2: &str,
    aqm: &str,
    queue_bdp: f64,
    mbps: u64,
    secs: u64,
) -> StudyOutcome {
    FairnessStudy::builder()
        .cca_pair(cca1, cca2)
        .aqm(aqm)
        .bandwidth_mbps(mbps)
        .queue_bdp(queue_bdp)
        .duration_secs(secs)
        .build()
        .expect("valid study")
        .run()
}

/// Run a short study with sane defaults for integration testing.
///
/// Uses 100–500 Mbps bandwidths and small durations so the whole suite
/// stays fast in debug builds while still exercising every crate. Slow
/// equilibria (deep buffers, who-overtakes-whom) need [`study_secs`] with
/// an explicit longer duration.
pub fn quick_study(cca1: &str, cca2: &str, aqm: &str, queue_bdp: f64, mbps: u64) -> StudyOutcome {
    study_secs(cca1, cca2, aqm, queue_bdp, mbps, if mbps > 200 { 8 } else { 12 })
}
