//! Property-based tests on the fairness-dynamics invariants (seeded
//! harness, `netsim::prop` style).
//!
//! Records are synthetic: random monotone cumulative `delivered_bytes`
//! series per flow, which is the only signal the analysis layer reads.

use elephants_analysis::{convergence_time, fairness_dynamics, windowed_goodput, ConvergenceSpec};
use elephants_netsim::prop::{run_cases, vec_of};
use elephants_netsim::{prop_check, RngExt, SmallRng};
use elephants_telemetry::{FlightRecord, FlowPoint, FLIGHT_RECORD_VERSION};

const STEP_MS: u64 = 50;

/// A random per-flow cumulative series: `steps` entries 50 ms apart,
/// each adding 0–50 kB, with a random idle prefix.
fn gen_flow(rng: &mut SmallRng, steps: usize) -> Vec<(u64, u64)> {
    let idle = rng.random_range(0..(steps as u64 / 2).max(1));
    let mut total = 0u64;
    (0..steps as u64)
        .map(|k| {
            if k >= idle {
                total += rng.random_range(0..50_000u64);
            }
            (k * STEP_MS, total)
        })
        .collect()
}

fn record_of(series: &[Vec<(u64, u64)>]) -> FlightRecord {
    let mut flow_samples: Vec<FlowPoint> = Vec::new();
    for (f, points) in series.iter().enumerate() {
        for &(t_ms, delivered) in points {
            flow_samples.push(FlowPoint {
                t_s: t_ms as f64 / 1e3,
                flow: f as u32,
                cwnd: 10_000,
                pacing_bps: None,
                srtt_s: None,
                inflight: 0,
                phase: "steady".into(),
                delivered_bytes: delivered,
                retx: 0,
            });
        }
    }
    flow_samples.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
    FlightRecord {
        schema_version: FLIGHT_RECORD_VERSION,
        label: "prop".into(),
        seed: 0,
        sample_interval_s: STEP_MS as f64 / 1e3,
        flow_samples,
        queue_samples: vec![],
        events: vec![],
        events_truncated: 0,
    }
}

/// Per-flow cumulative `(t_ms, delivered_bytes)` series.
type FlowSeries = Vec<Vec<(u64, u64)>>;

fn gen_record(rng: &mut SmallRng) -> (FlightRecord, FlowSeries, Vec<u32>) {
    let steps = rng.random_range(10..60usize);
    let flows = vec_of(rng, 1, 6, |r| gen_flow(r, steps));
    let n_groups = rng.random_range(1..=flows.len() as u32);
    let groups: Vec<u32> = (0..flows.len() as u32).map(|f| f % n_groups).collect();
    (record_of(&flows), flows, groups)
}

#[test]
fn windowed_jain_stays_within_jain_bounds() {
    run_cases("windowed_jain_bounds", 200, |rng| {
        let (rec, _, groups) = gen_record(rng);
        let window_s = [0.1, 0.25, 0.5][rng.random_range(0..3usize)];
        let d = fairness_dynamics(&rec, &groups, window_s, 1e8);
        let n = d.n_groups() as f64;
        for (k, &j) in d.jain.iter().enumerate() {
            prop_check!(
                (1.0 / n - 1e-9..=1.0 + 1e-9).contains(&j),
                "J(t) out of [1/{n}, 1] at window {k}: {j}"
            );
        }
        Ok(())
    });
}

#[test]
fn windowed_goodput_reconciles_with_total_goodput() {
    // Summing windowed goodput over the complete windows recovers each
    // flow's total delivered bytes, short only by what arrived in the
    // trailing partial window (< one window of slack).
    run_cases("windowed_goodput_reconciles", 200, |rng| {
        let (rec, flows, _) = gen_record(rng);
        let window_s = [0.1, 0.25, 0.3][rng.random_range(0..3usize)];
        let g = windowed_goodput(&rec, window_s);
        for (f, series) in flows.iter().enumerate() {
            let windowed_bytes: f64 =
                g.bps[f].iter().map(|bps| bps * window_s / 8.0).sum();
            // Bytes on the wire before t=0 are baseline, not goodput —
            // the analysis differences against the t=0 sample.
            let base = series.first().unwrap().1 as f64;
            let total = series.last().unwrap().1 as f64 - base;
            let horizon_ms = series.last().unwrap().0;
            // Delivered within the final `window_s` of the trace — the
            // partial window the analysis is allowed to drop.
            let tail_start_ms = horizon_ms.saturating_sub((window_s * 1e3) as u64);
            let tail_bytes = series.last().unwrap().1 as f64
                - series
                    .iter()
                    .rfind(|(t, _)| *t <= tail_start_ms)
                    .map_or(0.0, |(_, d)| *d as f64);
            prop_check!(
                windowed_bytes <= total + 1e-6,
                "flow {f}: windowed sum {windowed_bytes} exceeds total {total}"
            );
            prop_check!(
                total - windowed_bytes <= tail_bytes + 1e-6,
                "flow {f}: discrepancy {} exceeds one-window slack {tail_bytes}",
                total - windowed_bytes
            );
        }
        Ok(())
    });
}

#[test]
fn convergence_time_is_monotone_in_epsilon() {
    // A laxer fairness band (larger ε) can only be entered sooner:
    // convergence time is non-increasing in ε, and convergence under a
    // tight band implies convergence under every looser one.
    run_cases("convergence_monotone_in_epsilon", 200, |rng| {
        let (rec, _, groups) = gen_record(rng);
        let d = fairness_dynamics(&rec, &groups, 0.1, 1e8);
        let hold_s = [0.1, 0.2, 0.5][rng.random_range(0..3usize)];
        let mut epsilons: Vec<f64> =
            (0..4).map(|_| rng.random_range(1..90u32) as f64 / 100.0).collect();
        epsilons.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let times: Vec<Option<f64>> = epsilons
            .iter()
            .map(|&epsilon| convergence_time(&d, &ConvergenceSpec { epsilon, hold_s }))
            .collect();
        for pair in times.windows(2) {
            match (pair[0], pair[1]) {
                (Some(tight), Some(loose)) => prop_check!(
                    loose <= tight + 1e-9,
                    "larger ε converged later: {loose} > {tight} (ε={epsilons:?})"
                ),
                (Some(tight), None) => {
                    return Err(format!(
                        "converged at tight ε (t={tight}) but not at looser ε ({epsilons:?})"
                    ))
                }
                _ => {}
            }
        }
        Ok(())
    });
}
