//! # elephants-analysis
//!
//! Fairness *dynamics*: turns a recorded run ([`FlightRecord`], schema v3+)
//! into the time-resolved metrics the paper's questions are actually about
//! — not just "was the final share fair" but *how the share evolved*:
//!
//! * [`windowed_goodput`] — per-flow goodput series differenced from the
//!   cumulative `delivered_bytes` counter each flow sample carries;
//! * [`fairness_dynamics`] — per-group share series, windowed Jain index
//!   `J(t)` and burst-tolerant windowed link utilization;
//! * [`convergence_time`] — first time every group's windowed share stays
//!   within ε of its fair share for a sustained hold duration;
//! * [`late_joiner_response`] — how long a group joining at offset `T`
//!   takes to claim ≥ (1−ε) of its fair share, and how much the
//!   incumbents concede;
//! * [`throughput_ratio`] — per-window inter-group ratio summaries;
//! * [`bootstrap_ci`] — seeded bootstrap confidence intervals across
//!   repeats (deterministic: reuses `netsim::rng`, never the wall clock).
//!
//! Everything here is a pure function of the record plus explicit
//! parameters — same record, same windows, same numbers, every time.
//! Records older than schema v3 parse with `delivered_bytes` backfilled
//! to 0, so analysis over them reports zero goodput rather than garbage;
//! callers who care should check [`FlightRecord::schema_version`].

use elephants_metrics::{jain_index, link_utilization_windowed};
use elephants_netsim::{RngExt, SeedableRng, SmallRng};
use elephants_telemetry::FlightRecord;

/// Windowed per-flow goodput, differenced from cumulative delivered bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputSeries {
    /// Window length, seconds.
    pub window_s: f64,
    /// Window *end* times, seconds since run start. Only complete windows
    /// are emitted; a partial tail window is dropped.
    pub t: Vec<f64>,
    /// Flow ids present in the record, ascending.
    pub flows: Vec<u32>,
    /// Goodput in bits/s, indexed `[flow index][window]`.
    pub bps: Vec<Vec<f64>>,
}

impl GoodputSeries {
    /// Number of complete windows.
    pub fn n_windows(&self) -> usize {
        self.t.len()
    }

    /// Total goodput (all flows summed) per window, bits/s.
    pub fn total_bps(&self) -> Vec<f64> {
        let mut total = vec![0.0; self.t.len()];
        for series in &self.bps {
            for (k, v) in series.iter().enumerate() {
                total[k] += v;
            }
        }
        total
    }
}

/// Cumulative delivered bytes of one flow at time `b`: the last sample at
/// or before `b` (0 before the first sample — the counter starts at 0).
fn cumulative_at(samples: &[(f64, f64)], b: f64) -> f64 {
    match samples.partition_point(|&(t, _)| t <= b) {
        0 => 0.0,
        i => samples[i - 1].1,
    }
}

/// Difference the cumulative `delivered_bytes` series of every flow in a
/// record into per-window goodput. Windows are `(k·w, (k+1)·w]`; the
/// cumulative counter is evaluated at each boundary by step interpolation
/// (last sample at or before the boundary), so sums over windows exactly
/// reconcile with the counter at the last complete boundary.
pub fn windowed_goodput(record: &FlightRecord, window_s: f64) -> GoodputSeries {
    assert!(window_s > 0.0, "window must be positive");
    let flows = record.flow_ids();
    let t_max =
        record.flow_samples.iter().map(|p| p.t_s).fold(0.0f64, f64::max);
    let n_windows = (t_max / window_s).floor() as usize;
    let t = (1..=n_windows).map(|k| k as f64 * window_s).collect();
    let bps = flows
        .iter()
        .map(|&f| {
            let samples = record.delivered_series(f);
            (0..n_windows)
                .map(|k| {
                    let lo = cumulative_at(&samples, k as f64 * window_s);
                    let hi = cumulative_at(&samples, (k + 1) as f64 * window_s);
                    (hi - lo).max(0.0) * 8.0 / window_s
                })
                .collect()
        })
        .collect();
    GoodputSeries { window_s, t, flows, bps }
}

/// Time-resolved fairness of one run: per-group shares, `J(t)` and
/// windowed utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessDynamics {
    /// Window length, seconds.
    pub window_s: f64,
    /// Each group's fair share of the bottleneck (`1 / n_groups`).
    pub fair_share: f64,
    /// Window end times, seconds.
    pub t: Vec<f64>,
    /// Per-group goodput in bits/s, indexed `[group][window]`.
    pub group_bps: Vec<Vec<f64>>,
    /// All-groups goodput per window, bits/s.
    pub total_bps: Vec<f64>,
    /// Windowed Jain index across groups, one value per window.
    pub jain: Vec<f64>,
    /// Windowed link utilization (burst-tolerant: may exceed 1.0 when a
    /// queue built in earlier windows drains into this one).
    pub utilization: Vec<f64>,
}

impl FairnessDynamics {
    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.group_bps.len()
    }

    /// One group's share of the total goodput in window `k` (0 in an idle
    /// window: no goodput means no one holds a share).
    pub fn share(&self, group: usize, k: usize) -> f64 {
        if self.total_bps[k] > 0.0 {
            self.group_bps[group][k] / self.total_bps[k]
        } else {
            0.0
        }
    }

    /// One group's share series, `(t, share)` per window.
    pub fn share_series(&self, group: usize) -> Vec<(f64, f64)> {
        (0..self.t.len()).map(|k| (self.t[k], self.share(group, k))).collect()
    }

    /// The `(t, J(t))` series.
    pub fn jain_series(&self) -> Vec<(f64, f64)> {
        self.t.iter().copied().zip(self.jain.iter().copied()).collect()
    }

    /// Mean of a group's share over the window span `[from_s, to_s)`
    /// (window-end times). `None` when no window falls inside.
    pub fn mean_share(&self, group: usize, from_s: f64, to_s: f64) -> Option<f64> {
        let picked: Vec<f64> = (0..self.t.len())
            .filter(|&k| self.t[k] >= from_s && self.t[k] < to_s)
            .map(|k| self.share(group, k))
            .collect();
        if picked.is_empty() {
            None
        } else {
            Some(picked.iter().sum::<f64>() / picked.len() as f64)
        }
    }
}

/// Windowed per-group dynamics of a record.
///
/// `flow_groups[flow_id]` assigns each flow to its group (the experiments
/// runner derives this from the flow plan: flows are added group by
/// group). Flows not covered by the mapping are ignored; the number of
/// groups is `max(flow_groups) + 1`. `capacity_bps` is the bottleneck
/// capacity for the utilization series.
pub fn fairness_dynamics(
    record: &FlightRecord,
    flow_groups: &[u32],
    window_s: f64,
    capacity_bps: f64,
) -> FairnessDynamics {
    assert!(capacity_bps > 0.0, "capacity must be positive");
    let goodput = windowed_goodput(record, window_s);
    let n_groups = flow_groups.iter().copied().max().map_or(0, |m| m as usize + 1);
    let n_windows = goodput.n_windows();
    let mut group_bps = vec![vec![0.0; n_windows]; n_groups];
    for (fi, &f) in goodput.flows.iter().enumerate() {
        let Some(&g) = flow_groups.get(f as usize) else { continue };
        for (acc, bps) in group_bps[g as usize].iter_mut().zip(&goodput.bps[fi]) {
            *acc += bps;
        }
    }
    let total_bps: Vec<f64> =
        (0..n_windows).map(|k| group_bps.iter().map(|s| s[k]).sum()).collect();
    let jain = (0..n_windows)
        .map(|k| {
            let at_k: Vec<f64> = group_bps.iter().map(|s| s[k]).collect();
            jain_index(&at_k)
        })
        .collect();
    let utilization =
        total_bps.iter().map(|&b| link_utilization_windowed(b, capacity_bps)).collect();
    FairnessDynamics {
        window_s,
        fair_share: if n_groups > 0 { 1.0 / n_groups as f64 } else { 0.0 },
        t: goodput.t,
        group_bps,
        total_bps,
        jain,
        utilization,
    }
}

/// Parameters of the convergence-time estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceSpec {
    /// Fairness tolerance: a window is "fair" when every group's share is
    /// within `epsilon` of the fair share.
    pub epsilon: f64,
    /// How long the fair state must hold before the run counts as
    /// converged, seconds.
    pub hold_s: f64,
}

impl Default for ConvergenceSpec {
    fn default() -> Self {
        ConvergenceSpec { epsilon: 0.1, hold_s: 2.0 }
    }
}

/// Whether window `k` is fair: every group's share within ε of fair share.
fn window_is_fair(d: &FairnessDynamics, k: usize, epsilon: f64) -> bool {
    (0..d.n_groups()).all(|g| (d.share(g, k) - d.fair_share).abs() <= epsilon)
}

/// First time `t` (seconds, window-start) from which every group's
/// windowed share stays within ε of the fair share for at least `hold_s`.
/// `None` if the run never converges (including runs too short to sustain
/// the hold). Monotone non-increasing in ε: loosening the tolerance can
/// only move convergence earlier.
pub fn convergence_time(d: &FairnessDynamics, spec: &ConvergenceSpec) -> Option<f64> {
    assert!(spec.epsilon >= 0.0, "epsilon must be non-negative");
    assert!(spec.hold_s >= 0.0, "hold must be non-negative");
    let hold_windows = ((spec.hold_s / d.window_s).ceil() as usize).max(1);
    let n = d.t.len();
    if n < hold_windows {
        return None;
    }
    (0..=n - hold_windows)
        .find(|&k| (k..k + hold_windows).all(|j| window_is_fair(d, j, spec.epsilon)))
        .map(|k| d.t[k] - d.window_s)
}

/// Outcome of a late-joiner experiment (one group started at offset `T`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LateJoinReport {
    /// The late group's index.
    pub joiner: u32,
    /// Join time, seconds since run start.
    pub join_t_s: f64,
    /// Seconds from join until the joiner's windowed share first reaches
    /// ≥ (1−ε) of fair share and holds it; `None` if it never claims.
    pub time_to_fair_share_s: Option<f64>,
    /// Mean combined incumbent goodput before the join, bits/s.
    pub incumbent_before_bps: f64,
    /// Mean combined incumbent goodput after the claim point (after the
    /// join, when the joiner never claims), bits/s.
    pub incumbent_after_bps: f64,
    /// Fraction of their pre-join goodput the incumbents gave up
    /// (`1 − after/before`; 0 when there was no pre-join traffic).
    pub concession: f64,
}

/// Measure a late joiner's responsiveness: how quickly the group that
/// joined at `join_t_s` claims ≥ (1−ε) of its fair share (sustained for
/// `hold_s`), and how much goodput the incumbents conceded to make room.
pub fn late_joiner_response(
    d: &FairnessDynamics,
    joiner: u32,
    join_t_s: f64,
    spec: &ConvergenceSpec,
) -> LateJoinReport {
    assert!((joiner as usize) < d.n_groups(), "joiner group out of range");
    let hold_windows = ((spec.hold_s / d.window_s).ceil() as usize).max(1);
    let n = d.t.len();
    let target = (1.0 - spec.epsilon) * d.fair_share;
    let claims = |k: usize| d.share(joiner as usize, k) >= target;
    let claim_k = (0..n.saturating_sub(hold_windows - 1))
        .filter(|&k| d.t[k] - d.window_s >= join_t_s)
        .find(|&k| (k..k + hold_windows).all(claims));
    let time_to_fair_share_s = claim_k.map(|k| d.t[k] - d.window_s - join_t_s);

    let incumbent_bps = |k: usize| -> f64 {
        (0..d.n_groups()).filter(|&g| g != joiner as usize).map(|g| d.group_bps[g][k]).sum()
    };
    let mean_over = |keep: &dyn Fn(usize) -> bool| -> f64 {
        let picked: Vec<f64> = (0..n).filter(|&k| keep(k)).map(incumbent_bps).collect();
        if picked.is_empty() {
            0.0
        } else {
            picked.iter().sum::<f64>() / picked.len() as f64
        }
    };
    let incumbent_before_bps = mean_over(&|k| d.t[k] <= join_t_s);
    let after_from = claim_k.map_or(join_t_s, |k| d.t[k]);
    let incumbent_after_bps = mean_over(&|k| d.t[k] - d.window_s >= after_from);
    let concession = if incumbent_before_bps > 0.0 {
        1.0 - incumbent_after_bps / incumbent_before_bps
    } else {
        0.0
    };
    LateJoinReport {
        joiner,
        join_t_s,
        time_to_fair_share_s,
        incumbent_before_bps,
        incumbent_after_bps,
        concession,
    }
}

/// Summary of the per-window goodput ratio between two groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioSummary {
    /// Windows where the ratio was defined (denominator group active).
    pub windows: usize,
    /// Mean ratio over those windows.
    pub mean: f64,
    /// Smallest per-window ratio.
    pub min: f64,
    /// Largest per-window ratio.
    pub max: f64,
    /// Ratio in the last defined window.
    pub last: f64,
}

/// Per-window `group a / group b` goodput ratio. Idle-denominator windows
/// are skipped; `None` when group `b` never moved goodput.
pub fn throughput_ratio(d: &FairnessDynamics, a: usize, b: usize) -> Option<RatioSummary> {
    let ratios: Vec<f64> = (0..d.t.len())
        .filter(|&k| d.group_bps[b][k] > 0.0)
        .map(|k| d.group_bps[a][k] / d.group_bps[b][k])
        .collect();
    if ratios.is_empty() {
        return None;
    }
    Some(RatioSummary {
        windows: ratios.len(),
        mean: ratios.iter().sum::<f64>() / ratios.len() as f64,
        min: ratios.iter().copied().fold(f64::INFINITY, f64::min),
        max: ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        last: *ratios.last().unwrap(),
    })
}

/// The paper's BBRv1-vs-CUBIC qualitative shape, measured: the suppressed
/// group's mean share early in the run vs late in the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuppressionShape {
    /// Mean share over the early span `[0, early_until_s)`.
    pub early_share: f64,
    /// Mean share over the late span `[late_from_s, end)`.
    pub late_share: f64,
    /// The group's fair share, for reference.
    pub fair_share: f64,
}

/// Mean share of `group` over an early and a late span of the run —
/// the two numbers behind "CUBIC suppressed early, partial recovery".
/// `None` when either span contains no complete window.
pub fn suppression_shape(
    d: &FairnessDynamics,
    group: usize,
    early_until_s: f64,
    late_from_s: f64,
) -> Option<SuppressionShape> {
    let horizon = *d.t.last()? + d.window_s;
    Some(SuppressionShape {
        early_share: d.mean_share(group, 0.0, early_until_s)?,
        late_share: d.mean_share(group, late_from_s, horizon)?,
        fair_share: d.fair_share,
    })
}

/// A seeded bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Sample mean of the input values.
    pub mean: f64,
    /// Lower CI bound (percentile method).
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub confidence: f64,
    /// Bootstrap resamples drawn.
    pub resamples: u32,
}

/// Stream salt for the bootstrap RNG, so analysis draws can never collide
/// with simulation or workload streams derived from the same base seed.
const BOOTSTRAP_SALT: u64 = 0xB007_57A9_CF1D_E2E7;

/// Percentile-method bootstrap CI over per-repeat values (e.g. one
/// convergence time or mean share per seeded repeat). Deterministic in
/// `seed`; `None` on an empty input. With a single value the interval
/// collapses to a point — honest, if not informative.
pub fn bootstrap_ci(
    values: &[f64],
    confidence: f64,
    resamples: u32,
    seed: u64,
) -> Option<BootstrapCi> {
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
    assert!(resamples > 0, "resamples must be positive");
    if values.is_empty() {
        return None;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let mut rng = SmallRng::seed_from_u64(seed ^ BOOTSTRAP_SALT);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let sum: f64 =
                (0..values.len()).map(|_| values[rng.random_range(0..values.len())]).sum();
            sum / values.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap means must not be NaN"));
    let alpha = (1.0 - confidence) / 2.0;
    let idx = |q: f64| -> f64 {
        let i = (q * (means.len() - 1) as f64).round() as usize;
        means[i.min(means.len() - 1)]
    };
    Some(BootstrapCi { mean, lo: idx(alpha), hi: idx(1.0 - alpha), confidence, resamples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_telemetry::{FlightRecord, FlowPoint, FLIGHT_RECORD_VERSION};

    /// Build a record from per-flow cumulative (t_ms, delivered_bytes)
    /// series — the analysis layer only looks at those fields.
    fn record_of(series: &[&[(u64, u64)]]) -> FlightRecord {
        let mut flow_samples: Vec<FlowPoint> = Vec::new();
        for (f, points) in series.iter().enumerate() {
            for &(t_ms, delivered) in *points {
                flow_samples.push(FlowPoint {
                    t_s: t_ms as f64 / 1e3,
                    flow: f as u32,
                    cwnd: 10_000,
                    pacing_bps: None,
                    srtt_s: None,
                    inflight: 0,
                    phase: "steady".into(),
                    delivered_bytes: delivered,
                    retx: 0,
                });
            }
        }
        flow_samples.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
        FlightRecord {
            schema_version: FLIGHT_RECORD_VERSION,
            label: "synthetic".into(),
            seed: 0,
            sample_interval_s: 0.01,
            flow_samples,
            queue_samples: vec![],
            events: vec![],
            events_truncated: 0,
        }
    }

    /// 1 Mbps == 125_000 bytes/s; a flow delivering 12_500 bytes per
    /// 100 ms window runs at exactly 1 Mbps.
    fn steady_flow(ms_step: u64, until_ms: u64, bytes_per_step: u64) -> Vec<(u64, u64)> {
        (0..=until_ms / ms_step).map(|k| (k * ms_step, k * bytes_per_step)).collect()
    }

    #[test]
    fn windowed_goodput_differences_cumulative_counters() {
        // Flow 0: 1 Mbps steady. Flow 1: idle then 2 Mbps from t=500ms.
        let f0 = steady_flow(100, 1000, 12_500);
        let f1: Vec<(u64, u64)> =
            (0..=10).map(|k| (k * 100, 25_000 * (k.max(5) - 5))).collect();
        let rec = record_of(&[&f0, &f1]);
        let g = windowed_goodput(&rec, 0.5);
        assert_eq!(g.n_windows(), 2);
        assert_eq!(g.flows, vec![0, 1]);
        assert!((g.bps[0][0] - 1e6).abs() < 1e-6);
        assert!((g.bps[0][1] - 1e6).abs() < 1e-6);
        assert!((g.bps[1][0] - 0.0).abs() < 1e-6, "late flow idle in window 0");
        assert!((g.bps[1][1] - 2e6).abs() < 1e-6);
        let total = g.total_bps();
        assert!((total[1] - 3e6).abs() < 1e-6);
    }

    #[test]
    fn partial_tail_window_is_dropped() {
        let rec = record_of(&[&steady_flow(100, 1234, 12_500)]);
        let g = windowed_goodput(&rec, 0.5);
        assert_eq!(g.n_windows(), 2, "t_max=1.2s → two complete 0.5s windows");
    }

    #[test]
    fn dynamics_shares_jain_and_utilization() {
        // Two single-flow groups at 3 Mbps and 1 Mbps on a 5 Mbps link.
        let f0 = steady_flow(100, 1000, 37_500);
        let f1 = steady_flow(100, 1000, 12_500);
        let rec = record_of(&[&f0, &f1]);
        let d = fairness_dynamics(&rec, &[0, 1], 0.5, 5e6);
        assert_eq!(d.n_groups(), 2);
        assert!((d.share(0, 0) - 0.75).abs() < 1e-9);
        assert!((d.share(1, 0) - 0.25).abs() < 1e-9);
        // Jain of (3,1) = 16/(2*10) = 0.8.
        assert!((d.jain[0] - 0.8).abs() < 1e-9);
        assert!((d.utilization[0] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn convergence_detects_the_handover() {
        // Group 1 is suppressed for 2s, then both run equal for 3s.
        let f0: Vec<(u64, u64)> = (0..=50)
            .map(|k| (k * 100, if k <= 20 { 25_000 * k } else { 500_000 + 12_500 * (k - 20) }))
            .collect();
        let f1: Vec<(u64, u64)> =
            (0..=50).map(|k| (k * 100, if k <= 20 { 0 } else { 12_500 * (k - 20) })).collect();
        let rec = record_of(&[&f0, &f1]);
        let d = fairness_dynamics(&rec, &[0, 1], 0.5, 2e6);
        let spec = ConvergenceSpec { epsilon: 0.05, hold_s: 1.5 };
        let t = convergence_time(&d, &spec).expect("converges after the handover");
        assert!((t - 2.0).abs() < 1e-9, "fair from t=2.0s, got {t}");
        // A run that never shares fairly reports None.
        let unfair = record_of(&[&steady_flow(100, 5000, 25_000), &steady_flow(100, 5000, 2_500)]);
        let du = fairness_dynamics(&unfair, &[0, 1], 0.5, 2e6);
        assert_eq!(convergence_time(&du, &spec), None);
    }

    #[test]
    fn convergence_hold_must_be_sustained() {
        // One fair window amid unfair ones must not count with a long hold:
        // flow 0 runs at 2 Mbps except for a 200 ms dip to flow 1's 1 Mbps.
        let step = |j: u64| if (10..12).contains(&j) { 12_500u64 } else { 25_000 };
        let f0: Vec<(u64, u64)> =
            (0..=30).map(|k| (k * 100, (0..k).map(step).sum())).collect();
        let f1 = steady_flow(100, 3000, 12_500);
        let rec = record_of(&[&f0, &f1]);
        let d = fairness_dynamics(&rec, &[0, 1], 0.2, 2e6);
        let strict = ConvergenceSpec { epsilon: 0.05, hold_s: 1.0 };
        assert_eq!(convergence_time(&d, &strict), None);
        let brief = ConvergenceSpec { epsilon: 0.05, hold_s: 0.2 };
        assert!(convergence_time(&d, &brief).is_some(), "the fair blip satisfies a 1-window hold");
    }

    #[test]
    fn late_joiner_reports_claim_and_concession() {
        // Incumbent alone at 2 Mbps for 2s; joiner ramps to parity at 3s.
        let f0: Vec<(u64, u64)> = (0..=50)
            .map(|k| (k * 100, if k <= 30 { 25_000 * k } else { 750_000 + 12_500 * (k - 30) }))
            .collect();
        let f1: Vec<(u64, u64)> = (0..=50)
            .map(|k| (k * 100, if k <= 30 { 0 } else { 12_500 * (k - 30) }))
            .collect();
        let rec = record_of(&[&f0, &f1]);
        let d = fairness_dynamics(&rec, &[0, 1], 0.5, 2e6);
        let spec = ConvergenceSpec { epsilon: 0.1, hold_s: 1.0 };
        let rep = late_joiner_response(&d, 1, 2.0, &spec);
        let tts = rep.time_to_fair_share_s.expect("joiner reaches parity");
        assert!((tts - 1.0).abs() < 1e-9, "claims fair share 1s after joining, got {tts}");
        assert!(rep.incumbent_before_bps > rep.incumbent_after_bps);
        assert!((rep.concession - 0.5).abs() < 0.05, "incumbent gives up half: {}", rep.concession);
        // A joiner that never claims reports None but still measures concession.
        let never = record_of(&[&steady_flow(100, 5000, 25_000), &steady_flow(100, 5000, 1_250)]);
        let dn = fairness_dynamics(&never, &[0, 1], 0.5, 2e6);
        assert_eq!(late_joiner_response(&dn, 1, 2.0, &spec).time_to_fair_share_s, None);
    }

    #[test]
    fn throughput_ratio_summarizes_defined_windows() {
        let f0 = steady_flow(100, 2000, 25_000);
        let f1: Vec<(u64, u64)> =
            (0..=20u64).map(|k| (k * 100, 12_500 * k.saturating_sub(10))).collect();
        let rec = record_of(&[&f0, &f1]);
        let d = fairness_dynamics(&rec, &[0, 1], 0.5, 2e6);
        let r = throughput_ratio(&d, 0, 1).unwrap();
        assert_eq!(r.windows, 2, "denominator idle in the first two windows");
        assert!((r.last - 2.0).abs() < 1e-9);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(throughput_ratio(&d, 1, 0).is_some());
        let silent = record_of(&[&steady_flow(100, 1000, 25_000), &[(0, 0), (1000, 0)]]);
        let ds = fairness_dynamics(&silent, &[0, 1], 0.5, 2e6);
        assert!(throughput_ratio(&ds, 0, 1).is_none());
    }

    #[test]
    fn suppression_shape_reads_early_and_late_spans() {
        // Group 1 suppressed to 20% early, recovers to 40% late.
        let f0: Vec<(u64, u64)> = (0..=40)
            .map(|k| (k * 100, if k <= 20 { 40_000 * k } else { 800_000 + 30_000 * (k - 20) }))
            .collect();
        let f1: Vec<(u64, u64)> = (0..=40)
            .map(|k| (k * 100, if k <= 20 { 10_000 * k } else { 200_000 + 20_000 * (k - 20) }))
            .collect();
        let rec = record_of(&[&f0, &f1]);
        let d = fairness_dynamics(&rec, &[0, 1], 0.5, 4e6);
        let s = suppression_shape(&d, 1, 2.0, 2.5).unwrap();
        assert!((s.early_share - 0.2).abs() < 1e-9);
        assert!((s.late_share - 0.4).abs() < 1e-9);
        assert!(s.early_share < s.late_share, "partial recovery");
        assert!(suppression_shape(&d, 1, 0.0, 99.0).is_none(), "empty span yields None");
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_ordered() {
        let vals = [4.2, 3.9, 4.4, 4.1, 4.0];
        let a = bootstrap_ci(&vals, 0.95, 500, 7).unwrap();
        let b = bootstrap_ci(&vals, 0.95, 500, 7).unwrap();
        assert_eq!(a, b, "same seed, same interval");
        assert!(a.lo <= a.mean && a.mean <= a.hi);
        assert!(vals.iter().all(|&v| v >= a.lo - 1.0 && v <= a.hi + 1.0));
        assert!(bootstrap_ci(&[], 0.95, 100, 1).is_none());
        let point = bootstrap_ci(&[2.5], 0.95, 100, 1).unwrap();
        assert_eq!((point.lo, point.hi), (2.5, 2.5), "single repeat collapses to a point");
    }
}
