//! The replayable regression corpus.
//!
//! Every failure the fuzzer ever finds is shrunk and committed as a JSON
//! fixture under `tests/fixtures/chaos/`; [`replay_all`] re-judges every
//! fixture and is wired into `cargo test`, so a once-found bug that
//! reappears fails CI immediately.
//!
//! ## Fixture contract
//!
//! * A fixture records the **minimal** (post-shrink) config, the case
//!   seed that found it, the oracle it tripped and the failure detail at
//!   the time of discovery.
//! * A committed fixture's config must judge **clean** (`Pass`, or `Skip`
//!   under load) on current code: committing a fixture asserts "this bug
//!   is fixed and must stay fixed". A still-failing find lives in a
//!   branch alongside the fix, never alone on main.
//! * Filenames are `chaos-<fnv64 of the config JSON>.json`, so the same
//!   minimal repro never commits twice and names are diff-stable.

use crate::oracle::{judge, CaseOutcome};
use elephants_experiments::ScenarioConfig;
use elephants_json::{impl_json_struct, FromJson, ToJson};
use std::path::{Path, PathBuf};

/// One committed repro (or curated corner case).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosFixture {
    /// Case seed the fuzzer found the failure at (0 for curated seeds).
    pub found_by_seed: u64,
    /// The oracle the original case tripped — `"Invariant"`,
    /// `"Termination"`, `"Determinism"`, `"RoundTrip"`, or `"curated"`
    /// for hand-picked hardening cases that never failed.
    pub oracle: String,
    /// Failure detail at discovery time (or the curation rationale).
    pub detail: String,
    /// The minimal config. Must currently judge clean.
    pub config: ScenarioConfig,
}

impl_json_struct!(ChaosFixture { found_by_seed, oracle, detail, config });

/// The committed corpus directory (repo-relative; resolved from this
/// crate's manifest so `cargo test` finds it from any working directory).
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/chaos")
}

/// FNV-1a over the config's canonical JSON: the fixture's identity.
pub fn fixture_stem(cfg: &ScenarioConfig) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in cfg.to_json_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("chaos-{h:016x}")
}

/// Write `fixture` into `dir`, creating it if needed. Returns the path
/// (existing identical fixtures are simply overwritten — the name is a
/// content hash of the config, so this is idempotent).
pub fn save_fixture(dir: &Path, fixture: &ChaosFixture) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", fixture_stem(&fixture.config)));
    std::fs::write(&path, fixture.to_json_pretty())?;
    Ok(path)
}

/// Load every `chaos-*.json` fixture in `dir`, sorted by filename for a
/// deterministic replay order. A missing directory is an empty corpus.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, ChaosFixture)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading corpus dir {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("chaos-"))
        })
        .collect();
    paths.sort();
    let mut corpus = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading fixture {}: {e}", path.display()))?;
        let fixture = ChaosFixture::from_json_str(&text)
            .map_err(|e| format!("parsing fixture {}: {e}", path.display()))?;
        corpus.push((path, fixture));
    }
    Ok(corpus)
}

/// One fixture's replay result.
#[derive(Debug)]
pub struct ReplayResult {
    /// The fixture file.
    pub path: PathBuf,
    /// The judge's verdict on its config today.
    pub outcome: CaseOutcome,
}

/// Re-judge every fixture in `dir`. Per the contract, every outcome must
/// be `Pass` (or `Skip` on an overloaded machine); the returned list lets
/// callers report which fixture regressed.
pub fn replay_all(dir: &Path) -> Result<Vec<ReplayResult>, String> {
    Ok(load_corpus(dir)?
        .into_iter()
        .map(|(path, fixture)| ReplayResult { path, outcome: judge(&fixture.config) })
        .collect())
}

/// The failures among a replay run (anything that is neither Pass nor
/// Skip).
pub fn replay_failures(results: &[ReplayResult]) -> Vec<&ReplayResult> {
    results
        .iter()
        .filter(|r| matches!(r.outcome, CaseOutcome::Fail { .. }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("elephants-chaos-{tag}-{}", std::process::id()))
    }

    fn fixture_for(seed: u64) -> ChaosFixture {
        ChaosFixture {
            found_by_seed: seed,
            oracle: "curated".to_string(),
            detail: "unit-test fixture".to_string(),
            config: generate_case(seed),
        }
    }

    #[test]
    fn fixture_json_round_trips() {
        let fx = fixture_for(17);
        let json = fx.to_json_string();
        let back = ChaosFixture::from_json_str(&json).unwrap();
        assert_eq!(back, fx);
        assert_eq!(back.to_json_string(), json);
    }

    #[test]
    fn save_load_cycle_is_idempotent_and_sorted() {
        let dir = tmp_dir("corpus");
        std::fs::remove_dir_all(&dir).ok();
        let (a, b) = (fixture_for(1), fixture_for(2));
        save_fixture(&dir, &a).unwrap();
        save_fixture(&dir, &b).unwrap();
        save_fixture(&dir, &a).unwrap(); // same content hash: no duplicate
        let corpus = load_corpus(&dir).unwrap();
        assert_eq!(corpus.len(), 2);
        let stems: Vec<String> = corpus
            .iter()
            .map(|(p, _)| p.file_stem().unwrap().to_string_lossy().into_owned())
            .collect();
        let mut sorted = stems.clone();
        sorted.sort();
        assert_eq!(stems, sorted, "replay order must be filename-sorted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_corpus_dir_is_empty_not_an_error() {
        let dir = tmp_dir("no-such-corpus");
        std::fs::remove_dir_all(&dir).ok();
        assert!(load_corpus(&dir).unwrap().is_empty());
        assert!(replay_all(&dir).unwrap().is_empty());
    }

    #[test]
    fn unparsable_fixture_is_a_loud_error() {
        let dir = tmp_dir("bad-fixture");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chaos-zzzz.json"), "{ nope").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert!(err.contains("chaos-zzzz"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_corpus_directory_exists() {
        // The default dir is committed with the repo (seed fixtures +
        // README); a broken path here would make replay silently vacuous.
        assert!(
            default_corpus_dir().is_dir(),
            "missing committed corpus dir {}",
            default_corpus_dir().display()
        );
    }
}
