//! The oracle stack: what "this case passed" means.
//!
//! Every case is executed through [`Runner`] under `CheckMode::Strict`
//! inside `catch_unwind`, and judged against four oracles:
//!
//! 1. **Invariant** — the strict runtime checker must not fire (a strict
//!    violation panics with an `invariant violated:` payload, which the
//!    judge catches and classifies).
//! 2. **Termination** — the run must end in `Ok` or a *classified*
//!    [`RunError`]; any other panic escaping the runner is a failure.
//! 3. **Determinism** — executing the same `(config, seed)` twice must
//!    produce byte-identical `RunMetrics` JSON (or byte-identical error
//!    JSON: failures must be as reproducible as successes).
//! 4. **RoundTrip** — every emitted JSON artifact (the config itself,
//!    the metrics, the error) must re-parse to a value that re-serializes
//!    to the same bytes.
//!
//! Wall-clock errors are the one machine-load-dependent outcome; a case
//! hitting the watchdog is reported as a [`CaseOutcome::Skip`], never a
//! failure — a loaded CI box must not manufacture chaos findings.

use elephants_experiments::{RunError, RunErrorKind, Runner, ScenarioConfig};
use elephants_json::{impl_json_unit_enum, FromJson, ToJson};
use elephants_metrics::RunMetrics;
use elephants_netsim::CheckMode;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Per-run wall-clock watchdog for fuzz cases. Generated cases simulate
/// ≤ 3 s at ≤ 500 Mbps — seconds of wall time in release; a minute means
/// the machine is swamped (→ Skip), not that the case is interesting.
pub const CASE_WALL_LIMIT: Duration = Duration::from_secs(60);

/// Which oracle a failing case tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// The strict invariant checker fired inside the run.
    Invariant,
    /// A panic other than a strict-checker violation escaped the run.
    Termination,
    /// Two executions of the same case disagreed.
    Determinism,
    /// An emitted JSON artifact did not survive parse → re-serialize.
    RoundTrip,
}

impl_json_unit_enum!(OracleKind { Invariant, Termination, Determinism, RoundTrip });

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The judge's verdict on one case.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseOutcome {
    /// All four oracles clean.
    Pass,
    /// Environment-dependent outcome (wall-clock watchdog); not a finding.
    Skip {
        /// Why the case was skipped.
        reason: String,
    },
    /// An oracle failed.
    Fail {
        /// Which oracle.
        oracle: OracleKind,
        /// Human-readable failure detail.
        detail: String,
    },
}

impl CaseOutcome {
    /// The failing oracle, if this is a failure.
    pub fn failed_oracle(&self) -> Option<OracleKind> {
        match self {
            CaseOutcome::Fail { oracle, .. } => Some(*oracle),
            _ => None,
        }
    }
}

/// What one strict-checked execution of a case produced.
enum ExecResult {
    /// Run succeeded; canonical `RunMetrics` JSON of the base-seed run.
    Metrics(String),
    /// Run failed with a classified error.
    Error(RunError),
    /// A panic escaped the runner.
    Panic {
        /// Whether the payload is a strict-checker violation.
        invariant: bool,
        /// The panic payload, stringified.
        payload: String,
    },
}

fn panic_payload(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `cfg` once at its own base seed under the strict checker.
fn exec(cfg: &ScenarioConfig, wall_limit: Duration) -> ExecResult {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Runner::new(cfg).wall_limit(wall_limit).check(CheckMode::Strict).run()
    }));
    match result {
        Ok(Ok(outcome)) => ExecResult::Metrics(outcome.into_first().metrics().to_json_string()),
        Ok(Err(e)) => ExecResult::Error(e),
        Err(payload) => {
            let payload = panic_payload(payload);
            ExecResult::Panic { invariant: payload.contains("invariant violated"), payload }
        }
    }
}

/// Check that `json` re-parses (as `T`) to a value that re-serializes to
/// the same bytes.
fn round_trips<T: FromJson + ToJson>(what: &str, json: &str) -> Result<(), String> {
    match T::from_json_str(json) {
        Ok(value) => {
            let again = value.to_json_string();
            if again == json {
                Ok(())
            } else {
                Err(format!("{what}: re-serialized JSON differs from the original"))
            }
        }
        Err(e) => Err(format!("{what}: emitted JSON failed to parse: {e}")),
    }
}

/// Canonical string form of an execution, for the determinism comparison.
fn canon(r: &ExecResult) -> String {
    match r {
        ExecResult::Metrics(json) => format!("metrics:{json}"),
        ExecResult::Error(e) => format!("error:{}", e.to_json_string()),
        ExecResult::Panic { payload, .. } => format!("panic:{payload}"),
    }
}

/// Run the full oracle stack on one case. `wall_limit` bounds each of the
/// (up to two) executions.
pub fn judge_with_wall_limit(cfg: &ScenarioConfig, wall_limit: Duration) -> CaseOutcome {
    // Oracle 4a: the input config itself must round-trip — it is the
    // artifact a repro fixture stores.
    if let Err(detail) = round_trips::<ScenarioConfig>("config", &cfg.to_json_string()) {
        return CaseOutcome::Fail { oracle: OracleKind::RoundTrip, detail };
    }

    let first = exec(cfg, wall_limit);
    match &first {
        ExecResult::Panic { invariant: true, payload } => {
            return CaseOutcome::Fail {
                oracle: OracleKind::Invariant,
                detail: payload.clone(),
            };
        }
        ExecResult::Panic { invariant: false, payload } => {
            return CaseOutcome::Fail {
                oracle: OracleKind::Termination,
                detail: format!("unclassified panic escaped the runner: {payload}"),
            };
        }
        ExecResult::Error(e) if e.kind == RunErrorKind::WallClock => {
            return CaseOutcome::Skip { reason: format!("wall-clock watchdog: {}", e.detail) };
        }
        ExecResult::Error(e) => {
            // Graceful termination holds (the error is classified); its
            // JSON must round-trip like any other artifact.
            if let Err(detail) = round_trips::<RunError>("run error", &e.to_json_string()) {
                return CaseOutcome::Fail { oracle: OracleKind::RoundTrip, detail };
            }
        }
        ExecResult::Metrics(json) => {
            if let Err(detail) = round_trips::<RunMetrics>("run metrics", json) {
                return CaseOutcome::Fail { oracle: OracleKind::RoundTrip, detail };
            }
        }
    }

    // Oracle 3: replay the identical case; outcomes must agree byte for
    // byte. A wall-clock skip on either side skips the whole case.
    let second = exec(cfg, wall_limit);
    if let ExecResult::Error(e) = &second {
        if e.kind == RunErrorKind::WallClock {
            return CaseOutcome::Skip {
                reason: format!("wall-clock watchdog on replay: {}", e.detail),
            };
        }
    }
    let (a, b) = (canon(&first), canon(&second));
    if a != b {
        return CaseOutcome::Fail {
            oracle: OracleKind::Determinism,
            detail: format!(
                "replay diverged: first {} bytes vs second {} bytes ({} vs {})",
                a.len(),
                b.len(),
                a.chars().take(96).collect::<String>(),
                b.chars().take(96).collect::<String>(),
            ),
        };
    }
    CaseOutcome::Pass
}

/// [`judge_with_wall_limit`] at the default [`CASE_WALL_LIMIT`].
pub fn judge(cfg: &ScenarioConfig) -> CaseOutcome {
    judge_with_wall_limit(cfg, CASE_WALL_LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;
    use elephants_experiments::RunOptions;

    fn tiny_cfg() -> ScenarioConfig {
        let mut opts = RunOptions::quick();
        opts.seed = 11;
        let mut cfg = ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            25_000_000,
            &opts,
        );
        cfg.duration = elephants_netsim::SimDuration::from_millis(500);
        cfg.warmup = elephants_netsim::SimDuration::ZERO;
        cfg
    }

    #[test]
    fn healthy_case_passes_all_oracles() {
        assert_eq!(judge(&tiny_cfg()), CaseOutcome::Pass);
    }

    #[test]
    fn event_budget_case_is_a_classified_pass_not_a_failure() {
        // Graceful termination: a budget trip is a classified RunError,
        // which the termination oracle accepts and the determinism oracle
        // requires to reproduce identically.
        let mut cfg = tiny_cfg();
        cfg.max_events = 1_000;
        assert_eq!(judge(&cfg), CaseOutcome::Pass);
    }

    #[test]
    fn wall_clock_overrun_is_a_skip_not_a_finding() {
        let out = judge_with_wall_limit(&tiny_cfg(), Duration::from_nanos(1));
        assert!(
            matches!(&out, CaseOutcome::Skip { reason } if reason.contains("wall-clock")),
            "{out:?}"
        );
    }

    #[test]
    fn oracle_kind_json_round_trips() {
        for kind in
            [OracleKind::Invariant, OracleKind::Termination, OracleKind::Determinism, OracleKind::RoundTrip]
        {
            let json = kind.to_json_string();
            assert_eq!(OracleKind::from_json_str(&json).unwrap(), kind);
        }
    }
}
