//! Deterministic chaos fuzzer for the elephants simulator.
//!
//! ```text
//! chaos [--cases N] [--seed S] [--corpus DIR] [--no-commit]
//!       [--no-shrink] [--replay-only] [--verbose]
//!       [--loss MODEL] [--flap START,DUR] [--coalesce]
//!       [--topology SPEC] [--fault-link N]
//! ```
//!
//! Fuzzes `N` generated scenarios (seeds `S .. S+N`) through the
//! four-oracle judge, shrinks any failure, and (unless `--no-commit`)
//! writes each minimal repro into the corpus; then replays the whole
//! committed corpus. Fully deterministic in `--seed`.
//!
//! The scenario-shaping flags are the shared set from
//! `elephants_experiments::cli` and act as *pins*: each is forced onto
//! every generated case (a case a pin cannot validly apply to counts as
//! a skip). `--record`/`--check`/`--sample-interval` are rejected — the
//! judge always runs the strict checker and owns its own artifacts.
//!
//! Exit codes: `0` — all oracles clean and corpus green; `1` — findings
//! or corpus regressions; `2` — usage error.

use elephants_chaos::{
    default_corpus_dir, fuzz, replay_all, replay_failures, save_fixture, CaseOutcome,
    FuzzOptions,
};
use elephants_experiments::SharedFlags;
use elephants_json::ToJson;
use std::path::PathBuf;

struct Args {
    opts: FuzzOptions,
    corpus: PathBuf,
    commit: bool,
    replay_only: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: FuzzOptions::default(),
        corpus: default_corpus_dir(),
        commit: true,
        replay_only: false,
        verbose: false,
    };
    let mut shared = SharedFlags::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if shared.try_parse(&arg, &mut it)? {
            continue;
        }
        let mut value = |flag: &str| {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--cases" => {
                args.opts.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--seed" => {
                args.opts.base_seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--corpus" => args.corpus = PathBuf::from(value("--corpus")?),
            "--no-commit" => args.commit = false,
            "--no-shrink" => args.opts.shrink = false,
            "--replay-only" => args.replay_only = true,
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if shared.record.is_some() || shared.check.is_some() || shared.sample_interval.is_some() {
        return Err(
            "the chaos judge always runs the strict checker and owns its artifacts; \
             drop --record/--check/--sample-interval"
                .to_string(),
        );
    }
    let pins_given = shared.loss.is_some()
        || shared.faults.is_some()
        || shared.coalesce
        || shared.topology.is_some()
        || shared.fault_link.is_some();
    if pins_given {
        args.opts.overrides = Some(shared);
    }
    Ok(args)
}

fn print_usage() {
    eprintln!(
        "usage: chaos [--cases N] [--seed S] [--corpus DIR] [--no-commit] \
         [--no-shrink] [--replay-only] [--verbose] [--loss MODEL] \
         [--flap START,DUR] [--coalesce] [--topology SPEC] [--fault-link N]"
    );
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("chaos: {msg}");
            print_usage();
            std::process::exit(2);
        }
    };

    let mut dirty = false;

    if !args.replay_only {
        eprintln!(
            "chaos: fuzzing {} cases from seed {} (strict checker, 4 oracles)",
            args.opts.cases, args.opts.base_seed
        );
        let verbose = args.verbose;
        let report = fuzz(&args.opts, |seed, outcome| match outcome {
            CaseOutcome::Pass if verbose => eprintln!("  case {seed}: pass"),
            CaseOutcome::Skip { reason } => eprintln!("  case {seed}: SKIP ({reason})"),
            CaseOutcome::Fail { oracle, detail } => {
                eprintln!("  case {seed}: FAIL [{oracle}] {detail}")
            }
            _ => {}
        });
        for finding in &report.findings {
            eprintln!(
                "chaos: finding at seed {} [{}]: {}",
                finding.seed, finding.oracle, finding.detail
            );
            eprintln!(
                "chaos: shrunk ({} evals) to: {}",
                finding.shrink_evals,
                finding.shrunk.to_json_string()
            );
            if args.commit {
                match save_fixture(&args.corpus, &finding.fixture()) {
                    Ok(path) => eprintln!("chaos: committed repro {}", path.display()),
                    Err(e) => eprintln!("chaos: FAILED to write repro: {e}"),
                }
            }
        }
        println!("{}", report.summary_line());
        dirty |= !report.findings.is_empty();
    }

    match replay_all(&args.corpus) {
        Ok(results) => {
            let failures = replay_failures(&results);
            for f in &failures {
                eprintln!(
                    "chaos: corpus REGRESSION {}: {:?}",
                    f.path.display(),
                    f.outcome
                );
            }
            println!(
                "chaos-corpus: fixtures={} failures={}",
                results.len(),
                failures.len()
            );
            dirty |= !failures.is_empty();
        }
        Err(e) => {
            eprintln!("chaos: corpus replay failed: {e}");
            dirty = true;
        }
    }

    std::process::exit(if dirty { 1 } else { 0 });
}
