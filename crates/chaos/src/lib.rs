//! Deterministic chaos harness for the elephants simulator.
//!
//! The repo's scenario space (CCA × AQM × RTT × queue × loss × fault
//! timing × coalescing) is far larger than any hand-written test grid;
//! pathologies live in the corners. This crate drives the existing
//! ingredients adversarially:
//!
//! * [`gen`] — a seeded generator sampling random-but-valid
//!   [`ScenarioConfig`]s (faults, loss models, coalescing included),
//! * [`oracle`] — the four-oracle judge (invariants, graceful
//!   termination, determinism, artifact round-trip) running each case
//!   under `CheckMode::Strict` inside `catch_unwind`,
//! * [`shrink`] — a greedy deterministic minimizer for failing cases,
//! * [`corpus`] — committed minimal repros replayed forever by
//!   `cargo test`.
//!
//! The `chaos` binary ties them together; `scripts/ci.sh --fuzz-smoke`
//! runs a bounded fixed-seed pass plus the corpus replay offline.
//!
//! Everything is deterministic in the seeds: the fuzzer itself is a
//! reproducible experiment.
//!
//! [`ScenarioConfig`]: elephants_experiments::ScenarioConfig

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use corpus::{
    default_corpus_dir, fixture_stem, load_corpus, replay_all, replay_failures, save_fixture,
    ChaosFixture, ReplayResult,
};
pub use gen::{case_cost, generate_case, CASE_EVENT_BUDGET};
pub use oracle::{judge, judge_with_wall_limit, CaseOutcome, OracleKind, CASE_WALL_LIMIT};
pub use shrink::{fails_like, shrink, ShrinkOutcome, DEFAULT_SHRINK_EVALS};

use elephants_experiments::{ScenarioConfig, SharedFlags};
use std::time::Duration;

/// Options for one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of cases (seeds `base_seed .. base_seed + cases`).
    pub cases: u32,
    /// First case seed.
    pub base_seed: u64,
    /// Shrink failing cases before reporting them.
    pub shrink: bool,
    /// Evaluation budget per shrink.
    pub max_shrink_evals: u32,
    /// Per-execution wall-clock watchdog.
    pub wall_limit: Duration,
    /// Shared scenario flags pinned over every generated case (the chaos
    /// binary's `--loss`/`--flap`/`--coalesce`/`--topology`/`--fault-link`).
    /// A case the pins cannot validly apply to is counted as a skip.
    pub overrides: Option<SharedFlags>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            cases: 200,
            base_seed: 1,
            shrink: true,
            max_shrink_evals: DEFAULT_SHRINK_EVALS,
            wall_limit: CASE_WALL_LIMIT,
            overrides: None,
        }
    }
}

/// One failing case, minimized when shrinking was on.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The case seed.
    pub seed: u64,
    /// The oracle it tripped.
    pub oracle: OracleKind,
    /// Failure detail from the original (pre-shrink) judgment.
    pub detail: String,
    /// The config as generated.
    pub original: ScenarioConfig,
    /// The minimal config still failing the same oracle (equals
    /// `original` when shrinking was off or could not simplify).
    pub shrunk: ScenarioConfig,
    /// Shrink statistics, when shrinking ran.
    pub shrink_evals: u32,
}

impl Finding {
    /// The corpus fixture for this finding.
    pub fn fixture(&self) -> ChaosFixture {
        ChaosFixture {
            found_by_seed: self.seed,
            oracle: self.oracle.to_string(),
            detail: self.detail.clone(),
            config: self.shrunk.clone(),
        }
    }
}

/// Aggregate result of a fuzzing campaign.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u32,
    /// Cases passing all four oracles.
    pub passed: u32,
    /// Cases skipped (wall-clock watchdog under machine load).
    pub skipped: u32,
    /// Failing cases, in seed order.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// The one-line machine-greppable summary (`scripts/ci.sh` asserts
    /// on this exact shape).
    pub fn summary_line(&self) -> String {
        format!(
            "chaos-summary: cases={} passed={} skipped={} failed={}",
            self.cases,
            self.passed,
            self.skipped,
            self.findings.len(),
        )
    }
}

/// Run a fuzzing campaign. `on_case` is called after each case with its
/// seed and outcome (progress reporting; pass `|_, _| {}` to ignore).
pub fn fuzz(opts: &FuzzOptions, mut on_case: impl FnMut(u64, &CaseOutcome)) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..opts.cases {
        let seed = opts.base_seed + i as u64;
        let mut cfg = generate_case(seed);
        if let Some(pins) = &opts.overrides {
            if let Err(e) = pins.apply(&mut cfg) {
                // e.g. a pinned --fault-link outside a generated dumbbell:
                // not a simulator failure, just not a runnable combination.
                let outcome = CaseOutcome::Skip { reason: format!("pinned flags: {e}") };
                on_case(seed, &outcome);
                report.cases += 1;
                report.skipped += 1;
                continue;
            }
        }
        let outcome = judge_with_wall_limit(&cfg, opts.wall_limit);
        on_case(seed, &outcome);
        report.cases += 1;
        match outcome {
            CaseOutcome::Pass => report.passed += 1,
            CaseOutcome::Skip { .. } => report.skipped += 1,
            CaseOutcome::Fail { oracle, detail } => {
                let (shrunk, shrink_evals) = if opts.shrink {
                    let out = shrink(
                        &cfg,
                        |candidate| {
                            crate::oracle::judge_with_wall_limit(candidate, opts.wall_limit)
                                .failed_oracle()
                                == Some(oracle)
                        },
                        opts.max_shrink_evals,
                    );
                    (out.config, out.evals)
                } else {
                    (cfg.clone(), 0)
                };
                report.findings.push(Finding {
                    seed,
                    oracle,
                    detail,
                    original: cfg,
                    shrunk,
                    shrink_evals,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_shape_is_stable() {
        let mut report = FuzzReport { cases: 7, passed: 5, skipped: 2, ..Default::default() };
        assert_eq!(report.summary_line(), "chaos-summary: cases=7 passed=5 skipped=2 failed=0");
        report.findings.push(Finding {
            seed: 3,
            oracle: OracleKind::Invariant,
            detail: "x".into(),
            original: generate_case(3),
            shrunk: generate_case(3),
            shrink_evals: 0,
        });
        assert!(report.summary_line().ends_with("failed=1"));
    }

    #[test]
    fn unapplicable_pins_skip_instead_of_failing() {
        // No generated topology has 6 bottleneck hops, so a pinned
        // --fault-link 5 can never validate: every case must skip (and
        // none must reach the simulator, keeping this debug-mode cheap).
        let opts = FuzzOptions {
            cases: 3,
            overrides: Some(SharedFlags { fault_link: Some(5), ..Default::default() }),
            ..Default::default()
        };
        let report = fuzz(&opts, |_, _| {});
        assert_eq!(report.cases, 3);
        assert_eq!(report.skipped, 3);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn tiny_campaign_passes_and_counts_every_case() {
        // Two known-cheap seeds through the full judge (each case runs
        // twice for the determinism oracle): the real end-to-end path,
        // small enough for debug-mode CI. The ≥200-case campaign runs in
        // release via `scripts/ci.sh --fuzz-smoke` and the acceptance run.
        let seed = (0..)
            .find(|&s| {
                let c = generate_case(s);
                case_cost(&c) < 4_000_000 && !c.coalesce
            })
            .unwrap();
        let opts = FuzzOptions { cases: 1, base_seed: seed, ..Default::default() };
        let mut seen = Vec::new();
        let report = fuzz(&opts, |s, outcome| seen.push((s, outcome.clone())));
        assert_eq!(report.cases, 1);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, seed);
        assert_eq!(report.passed + report.skipped, 1, "{:?}", report.findings);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
