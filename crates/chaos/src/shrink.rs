//! Greedy deterministic shrinking of failing cases.
//!
//! Given a config that fails some oracle, [`shrink`] walks a fixed
//! sequence of simplification passes, accepting a candidate only when it
//! *still fails the same oracle*, and repeats the sequence until a full
//! round changes nothing (a fixpoint) or the evaluation budget runs out.
//! The passes, in order:
//!
//! 1. drop flows (`flow_scale` down its menu),
//! 2. shorten the run (halve `duration`, zero `warmup`),
//! 3. remove fault events (one at a time, from the back),
//! 4. simplify the loss model (Gilbert–Elliott → Bernoulli → None),
//! 5. zero the start offsets (clear the whole staggered-start vector;
//!    failing that, zero one entry at a time from the back),
//! 6. simplify the topology (anything → the paper dumbbell; failing
//!    that, re-aim `fault_link` at hop 0),
//! 7. clear the boolean knobs (`coalesce`, `ecn`),
//! 8. round sizes to paper defaults (`mss` 8900, `rtt` 62 ms,
//!    `queue_bdp` 2.0, bandwidth 100 Mbps, unlimited event budget).
//!
//! Every pass enumerates candidates in a fixed order and the predicate is
//! deterministic, so the same failing input always shrinks to the same
//! minimal config — the property the mutation test pins.

use crate::oracle::OracleKind;
use elephants_experiments::ScenarioConfig;
use elephants_netsim::{LossModel, SimDuration, TopologySpec};

/// Default cap on predicate evaluations per shrink. Each evaluation is
/// one (sometimes two) simulation runs; the passes converge long before
/// this in practice.
pub const DEFAULT_SHRINK_EVALS: u32 = 200;

/// What a shrink produced.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimal config still failing the target oracle.
    pub config: ScenarioConfig,
    /// Simplification steps accepted.
    pub steps: u32,
    /// Predicate evaluations spent.
    pub evals: u32,
    /// Whether shrinking stopped on the eval budget rather than at a
    /// fixpoint (the result is still a valid, smaller repro).
    pub budget_exhausted: bool,
}

struct Shrinker<'a> {
    fails: &'a dyn Fn(&ScenarioConfig) -> bool,
    evals: u32,
    max_evals: u32,
    steps: u32,
}

impl<'a> Shrinker<'a> {
    /// True when `candidate` still fails; counts the evaluation.
    fn still_fails(&mut self, candidate: &ScenarioConfig) -> bool {
        if self.evals >= self.max_evals {
            return false;
        }
        self.evals += 1;
        candidate.validate().is_ok() && (self.fails)(candidate)
    }

    /// Try one simplified candidate; adopt it into `cfg` when it still
    /// fails. Returns whether it was adopted.
    fn try_adopt(&mut self, cfg: &mut ScenarioConfig, candidate: ScenarioConfig) -> bool {
        if self.still_fails(&candidate) {
            *cfg = candidate;
            self.steps += 1;
            true
        } else {
            false
        }
    }

    fn pass_flow_scale(&mut self, cfg: &mut ScenarioConfig) -> bool {
        // Smallest first: one accepted jump to 0.25 beats three ladder steps.
        for scale in [0.25, 0.5, 0.75] {
            if scale < cfg.flow_scale {
                let mut c = cfg.clone();
                c.flow_scale = scale;
                if self.try_adopt(cfg, c) {
                    return true;
                }
            }
        }
        false
    }

    fn pass_duration(&mut self, cfg: &mut ScenarioConfig) -> bool {
        let mut changed = false;
        if !cfg.warmup.is_zero() {
            let mut c = cfg.clone();
            c.warmup = SimDuration::ZERO;
            changed |= self.try_adopt(cfg, c);
        }
        loop {
            let ms = cfg.duration.as_nanos() / 1_000_000;
            if ms <= 500 {
                break;
            }
            let mut c = cfg.clone();
            c.duration = SimDuration::from_millis((ms / 2).max(500));
            c.warmup = c.warmup.min(c.duration);
            if !self.try_adopt(cfg, c) {
                break;
            }
            changed = true;
        }
        changed
    }

    fn pass_faults(&mut self, cfg: &mut ScenarioConfig) -> bool {
        let mut changed = false;
        // Back-to-front removal keeps indices of untried events stable
        // across accepted removals.
        let mut idx = cfg.faults.events.len();
        while idx > 0 {
            idx -= 1;
            let mut c = cfg.clone();
            c.faults.events.remove(idx);
            changed |= self.try_adopt(cfg, c);
        }
        changed
    }

    fn pass_loss(&mut self, cfg: &mut ScenarioConfig) -> bool {
        let candidates: &[LossModel] = match cfg.loss {
            LossModel::None => &[],
            LossModel::Bernoulli { .. } => &[LossModel::None],
            LossModel::GilbertElliott { .. } => {
                &[LossModel::None, LossModel::Bernoulli { p: 0.001 }]
            }
        };
        for loss in candidates {
            let mut c = cfg.clone();
            c.loss = *loss;
            if self.try_adopt(cfg, c) {
                return true;
            }
        }
        false
    }

    fn pass_zero_offset(&mut self, cfg: &mut ScenarioConfig) -> bool {
        if cfg.start_offset_ms.is_empty() {
            return false;
        }
        // Whole-vector clear first: one accepted step beats per-entry
        // zeroing, and an empty vector is the canonical all-synchronous
        // form (it drops the cache-key tag and the serialized field).
        let mut c = cfg.clone();
        c.start_offset_ms = Vec::new();
        if self.try_adopt(cfg, c) {
            return true;
        }
        let mut changed = false;
        let mut idx = cfg.start_offset_ms.len();
        while idx > 0 {
            idx -= 1;
            if cfg.start_offset_ms[idx] != 0 {
                let mut c = cfg.clone();
                c.start_offset_ms[idx] = 0;
                changed |= self.try_adopt(cfg, c);
            }
        }
        changed
    }

    fn pass_topology(&mut self, cfg: &mut ScenarioConfig) -> bool {
        let mut changed = false;
        if cfg.topology != TopologySpec::Dumbbell {
            let mut c = cfg.clone();
            c.topology = TopologySpec::Dumbbell;
            c.fault_link = 0;
            // A wider topology's offset vector may not fit the dumbbell's
            // two groups; drop the tail so the candidate stays valid.
            c.start_offset_ms.truncate(2);
            changed |= self.try_adopt(cfg, c);
        }
        // The dumbbell jump may be rejected (multi-hop failure): still try
        // pulling the fault target back to the first hop.
        if cfg.fault_link != 0 {
            let mut c = cfg.clone();
            c.fault_link = 0;
            changed |= self.try_adopt(cfg, c);
        }
        changed
    }

    fn pass_booleans(&mut self, cfg: &mut ScenarioConfig) -> bool {
        let mut changed = false;
        for clear in [
            (|c: &mut ScenarioConfig| c.coalesce = false) as fn(&mut ScenarioConfig),
            |c| c.ecn = false,
        ] {
            let mut c = cfg.clone();
            clear(&mut c);
            if c != *cfg {
                changed |= self.try_adopt(cfg, c);
            }
        }
        changed
    }

    fn pass_round_sizes(&mut self, cfg: &mut ScenarioConfig) -> bool {
        let mut changed = false;
        let rounders: [fn(&mut ScenarioConfig); 5] = [
            |c| c.mss = 8900,
            |c| c.rtt_ms = 62,
            |c| c.queue_bdp = 2.0,
            |c| c.bw_bps = 100_000_000,
            |c| c.max_events = u64::MAX,
        ];
        for round in rounders {
            let mut c = cfg.clone();
            round(&mut c);
            if c != *cfg {
                changed |= self.try_adopt(cfg, c);
            }
        }
        changed
    }
}

/// Shrink `cfg` against `fails` (true ⇔ the candidate still exhibits the
/// target failure), spending at most `max_evals` predicate evaluations.
///
/// The caller's predicate closes over the target [`OracleKind`]; see
/// [`fails_like`] for the standard one.
pub fn shrink(
    cfg: &ScenarioConfig,
    fails: impl Fn(&ScenarioConfig) -> bool,
    max_evals: u32,
) -> ShrinkOutcome {
    let mut shrinker = Shrinker { fails: &fails, evals: 0, max_evals, steps: 0 };
    let mut current = cfg.clone();
    loop {
        let mut changed = false;
        changed |= shrinker.pass_flow_scale(&mut current);
        changed |= shrinker.pass_duration(&mut current);
        changed |= shrinker.pass_faults(&mut current);
        changed |= shrinker.pass_loss(&mut current);
        changed |= shrinker.pass_zero_offset(&mut current);
        changed |= shrinker.pass_topology(&mut current);
        changed |= shrinker.pass_booleans(&mut current);
        changed |= shrinker.pass_round_sizes(&mut current);
        if !changed || shrinker.evals >= max_evals {
            break;
        }
    }
    ShrinkOutcome {
        config: current,
        steps: shrinker.steps,
        evals: shrinker.evals,
        budget_exhausted: shrinker.evals >= max_evals,
    }
}

/// The standard shrink predicate: the candidate's judged outcome fails
/// the same oracle as the original finding.
pub fn fails_like(kind: OracleKind) -> impl Fn(&ScenarioConfig) -> bool {
    move |candidate| crate::oracle::judge(candidate).failed_oracle() == Some(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;
    use elephants_experiments::RunOptions;
    use elephants_json::ToJson;
    use elephants_netsim::{FaultAction, FaultPlan};

    /// A deliberately baroque config for predicate-driven shrink tests
    /// (no simulation involved — the predicate is pure).
    fn baroque() -> ScenarioConfig {
        let mut opts = RunOptions::quick();
        opts.seed = 3;
        opts.flow_scale = 1.0;
        let mut cfg = ScenarioConfig::new(
            CcaKind::BbrV2,
            CcaKind::Htcp,
            AqmKind::Pie,
            8.0,
            500_000_000,
            &opts,
        );
        cfg.duration = SimDuration::from_millis(3000);
        cfg.warmup = SimDuration::from_millis(1000);
        cfg.mss = 1500;
        cfg.rtt_ms = 124;
        cfg.ecn = true;
        cfg.coalesce = true;
        cfg.loss = LossModel::GilbertElliott { p_gb: 0.001, p_bg: 0.2 };
        cfg.faults = FaultPlan::none()
            .with(SimDuration::from_millis(100), FaultAction::LinkDown)
            .with(SimDuration::from_millis(300), FaultAction::LinkUp)
            .with(
                SimDuration::from_millis(800),
                FaultAction::SetDelay(SimDuration::from_millis(31)),
            );
        cfg.max_events = 50_000_000;
        cfg.topology = TopologySpec::ParkingLot { hops: 3 };
        cfg.fault_link = 2;
        cfg.start_offset_ms = vec![0, 400, 0, 200];
        cfg
    }

    #[test]
    fn always_failing_predicate_shrinks_to_the_floor() {
        let out = shrink(&baroque(), |_| true, 500);
        let min = &out.config;
        assert!(!out.budget_exhausted);
        assert_eq!(min.flow_scale, 0.25);
        assert_eq!(min.duration, SimDuration::from_millis(500));
        assert!(min.warmup.is_zero());
        assert!(min.faults.is_empty());
        assert_eq!(min.loss, LossModel::None);
        assert!(!min.coalesce && !min.ecn);
        assert_eq!(min.mss, 8900);
        assert_eq!(min.rtt_ms, 62);
        assert_eq!(min.queue_bdp, 2.0);
        assert_eq!(min.bw_bps, 100_000_000);
        assert_eq!(min.max_events, u64::MAX);
        assert_eq!(min.topology, TopologySpec::Dumbbell);
        assert_eq!(min.fault_link, 0);
        assert!(min.start_offset_ms.is_empty(), "offsets shrink to synchronous starts");
        // CCA/AQM/seed are identity, not size: never touched.
        assert_eq!(min.cca1, CcaKind::BbrV2);
        assert_eq!(min.aqm, AqmKind::Pie);
        assert_eq!(min.seed, 3);
    }

    #[test]
    fn shrinking_is_deterministic() {
        // A nontrivial predicate: failure needs the coalesce knob AND a
        // duration of at least a second.
        let pred = |c: &ScenarioConfig| c.coalesce && c.duration >= SimDuration::from_millis(1000);
        let a = shrink(&baroque(), pred, 500);
        let b = shrink(&baroque(), pred, 500);
        assert_eq!(a.config.to_json_string(), b.config.to_json_string());
        assert_eq!(a.evals, b.evals);
        assert!(a.config.coalesce, "the failure-carrying knob must survive");
        // Greedy halving: 3000 → 1500 accepted, 750 rejected (< 1 s), stop.
        assert_eq!(a.config.duration, SimDuration::from_millis(1500));
        assert_eq!(a.config.flow_scale, 0.25, "unrelated dimensions still shrink");
    }

    #[test]
    fn multi_hop_failures_keep_the_topology_but_recenter_the_fault() {
        // The failure needs a multi-bottleneck shape: the dumbbell jump is
        // rejected but the fault target still shrinks back to hop 0.
        let pred = |c: &ScenarioConfig| c.topology.n_bottlenecks() > 1;
        let out = shrink(&baroque(), pred, 500);
        assert_eq!(out.config.topology, TopologySpec::ParkingLot { hops: 3 });
        assert_eq!(out.config.fault_link, 0);
        assert!(out.config.validate().is_ok());
    }

    #[test]
    fn stagger_carrying_failures_keep_one_offset() {
        // The whole-vector clear is rejected (the failure needs a late
        // joiner), so the pass zeroes entries back-to-front, keeping
        // exactly the offsets the failure depends on — and the dumbbell
        // jump truncates the vector to the two surviving groups.
        let pred = |c: &ScenarioConfig| c.is_staggered();
        let out = shrink(&baroque(), pred, 500);
        assert!(out.config.is_staggered());
        assert_eq!(out.config.start_offset_ms, vec![0, 400]);
        assert_eq!(out.config.topology, TopologySpec::Dumbbell);
        assert!(out.config.validate().is_ok());
    }

    #[test]
    fn eval_budget_bounds_the_work() {
        let out = shrink(&baroque(), |_| true, 3);
        assert!(out.evals <= 3);
        assert!(out.budget_exhausted);
        assert!(out.config.validate().is_ok());
    }

    #[test]
    fn never_failing_candidate_keeps_the_original() {
        // Predicate holds only for the exact original: nothing shrinks.
        let orig = baroque();
        let orig_json = orig.to_json_string();
        let out = shrink(&orig, move |c| c.to_json_string() == orig_json, 500);
        assert_eq!(out.config, orig);
        assert_eq!(out.steps, 0);
    }
}
