//! Seeded random-but-valid scenario generation.
//!
//! [`generate_case`] maps a case seed to a [`ScenarioConfig`] drawn from
//! the whole configuration surface — CCA/AQM mixes, bandwidths, RTTs,
//! queue depths, loss models, timed fault plans, receive coalescing —
//! under three hard rules:
//!
//! 1. **Valid by construction.** Every generated config satisfies
//!    `ScenarioConfig::validate()`; the fuzzer probes the simulator, not
//!    the input validator (which has its own tests).
//! 2. **Deterministic.** The config is a pure function of the case seed,
//!    so any finding replays from the seed alone.
//! 3. **Discrete knob values.** Sampled floats come from small fixed
//!    menus (or are rounded to a few decimals) so two distinct cases can
//!    never collide in `cache_key`'s fixed-precision formatting, and
//!    shrunk repros print as round, human-readable numbers.
//!
//! One deliberate asymmetry: `SetBandwidth` fault events only ever
//! *lower* the link rate below the configured `bw_bps`. Raising it would
//! let the wire carry more bytes than `capacity × window`, tripping the
//! (intentional) sanity `debug_assert` in `link_utilization` — a
//! measurement-model precondition, not a simulator bug.

use elephants_aqm::AqmKind;
use elephants_cca::CcaKind;
use elephants_experiments::{RunOptions, ScenarioConfig};
use elephants_netsim::{
    Bandwidth, FaultAction, FaultPlan, LossModel, RngExt, SeedableRng, SimDuration, SmallRng,
    TopologySpec,
};

/// Distinguishes the generator's RNG stream from plain `seed_from_u64`
/// users of the same seed.
const STREAM_SALT: u64 = 0xC4A0_5CEB_AB1E_F00D;

/// Bottleneck bandwidth menu (bits/s). Spans the paper's 100 Mbps–1 Gbps
/// range downward so debug-mode replays stay fast; flow counts follow
/// Table 2's interpolation at every point.
const BW_MENU: [u64; 6] =
    [25_000_000, 50_000_000, 100_000_000, 150_000_000, 200_000_000, 500_000_000];

/// Queue depths in BDP multiples (the paper's set plus a shallow 0.5).
const QUEUE_MENU: [f64; 6] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

/// Flow-count scales (fractions of Table 2's per-sender count).
const FLOW_SCALE_MENU: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Segment sizes: Ethernet, mid, and the paper's 9k-jumbo MSS.
const MSS_MENU: [u32; 3] = [1500, 4500, 8900];

/// Round-trip propagation times (ms); 62 is the paper's path.
const RTT_MENU: [u64; 4] = [10, 31, 62, 124];

/// One-way delays a `SetDelay` fault can impose (ms).
const DELAY_MENU: [u64; 4] = [5, 15, 31, 62];

/// Factors a `SetBandwidth` fault scales the configured rate by (≤ 1.0;
/// see the module docs for why faults never raise the rate).
const BW_FACTOR_MENU: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Event budget for generated cases: a generous multiple of what the
/// largest menu case needs, but finite, so a runaway schedule surfaces as
/// a classified `EventBudget` error instead of hanging the fuzzer.
pub const CASE_EVENT_BUDGET: u64 = 50_000_000;

fn choose<T: Copy>(rng: &mut SmallRng, menu: &[T]) -> T {
    menu[rng.random_range(0..menu.len())]
}

/// A loss probability from a mild menu, exactly representable in a few
/// decimals (cache-key and shrink-output hygiene).
fn loss_prob(rng: &mut SmallRng) -> f64 {
    choose(rng, &[0.0001, 0.0005, 0.001, 0.002, 0.005, 0.01])
}

fn loss_model(rng: &mut SmallRng) -> LossModel {
    if rng.random_bool(0.7) {
        LossModel::None
    } else if rng.random_bool(0.5) {
        LossModel::Bernoulli { p: loss_prob(rng) }
    } else {
        // Bad-state exits are kept likelier than entries so the link
        // spends most of its time in the Good state (burst loss, not a
        // dead link — dead links are LinkDown's job).
        LossModel::GilbertElliott {
            p_gb: loss_prob(rng),
            p_bg: choose(rng, &[0.1, 0.2, 0.5]),
        }
    }
}

/// A fault plan of `n` events at non-decreasing 10 ms-quantized times in
/// `[0, 1.25 × duration]` — the tail past `duration` deliberately
/// generates events that validate but never fire.
fn fault_plan(rng: &mut SmallRng, duration: SimDuration, bw_bps: u64) -> FaultPlan {
    let n = rng.random_range(1..=4u32);
    let horizon_ms = duration.as_nanos() / 1_000_000 * 5 / 4;
    let mut times_ms: Vec<u64> =
        (0..n).map(|_| rng.random_range(0..=horizon_ms / 10) * 10).collect();
    times_ms.sort_unstable();
    let mut plan = FaultPlan::none();
    let mut down = false;
    for t in times_ms {
        let at = SimDuration::from_millis(t);
        // A downed link is most interesting brought back up; otherwise
        // pick uniformly among the action classes.
        let action = if down && rng.random_bool(0.7) {
            down = false;
            FaultAction::LinkUp
        } else {
            match rng.random_range(0..4u32) {
                0 => {
                    down = true;
                    FaultAction::LinkDown
                }
                1 => FaultAction::SetBandwidth(Bandwidth::from_bps(
                    ((bw_bps as f64 * choose(rng, &BW_FACTOR_MENU)) as u64).max(1_000_000),
                )),
                2 => FaultAction::SetDelay(SimDuration::from_millis(choose(rng, &DELAY_MENU))),
                _ => FaultAction::SetLossModel(if rng.random_bool(0.5) {
                    LossModel::None
                } else {
                    LossModel::Bernoulli { p: loss_prob(rng) }
                }),
            }
        };
        plan = plan.with(at, action);
    }
    plan
}

/// Generate the scenario for one case seed (see the module docs for the
/// guarantees). The config's own `seed` field is the case seed, so a
/// repro fixture carries its provenance.
pub fn generate_case(case_seed: u64) -> ScenarioConfig {
    let mut rng = SmallRng::seed_from_u64(case_seed ^ STREAM_SALT);
    const CCAS: [CcaKind; 5] =
        [CcaKind::Reno, CcaKind::Cubic, CcaKind::Htcp, CcaKind::BbrV1, CcaKind::BbrV2];
    const AQMS: [AqmKind; 5] =
        [AqmKind::Fifo, AqmKind::Red, AqmKind::FqCodel, AqmKind::Codel, AqmKind::Pie];

    let cca1 = choose(&mut rng, &CCAS);
    let cca2 = choose(&mut rng, &CCAS);
    let aqm = choose(&mut rng, &AQMS);
    let queue_bdp = choose(&mut rng, &QUEUE_MENU);
    let bw_bps = choose(&mut rng, &BW_MENU);

    // 500–3000 ms in 100 ms steps; warmup in 100 ms steps up to half the
    // duration, so the measurement window always has positive width.
    let duration_ms = rng.random_range(5..=30u64) * 100;
    let warmup_ms = rng.random_range(0..=duration_ms / 200) * 100;
    let duration = SimDuration::from_millis(duration_ms);

    let mut opts = RunOptions::quick();
    opts.seed = case_seed;
    opts.flow_scale = choose(&mut rng, &FLOW_SCALE_MENU);
    let mut cfg = ScenarioConfig::new(cca1, cca2, aqm, queue_bdp, bw_bps, &opts);
    cfg.duration = duration;
    cfg.warmup = SimDuration::from_millis(warmup_ms);
    cfg.mss = choose(&mut rng, &MSS_MENU);
    cfg.rtt_ms = choose(&mut rng, &RTT_MENU);
    cfg.ecn = rng.random_bool(0.1);
    cfg.coalesce = rng.random_bool(0.25);
    cfg.loss = loss_model(&mut rng);
    if rng.random_bool(0.5) {
        cfg.faults = fault_plan(&mut rng, duration, bw_bps);
    }
    cfg.max_events = CASE_EVENT_BUDGET;

    // Topology draws come LAST in the RNG stream: every pre-topology seed
    // consumes the same prefix it always did, so replays of dumbbell-era
    // corpus fixtures regenerate byte-identically.
    if rng.random_bool(0.25) {
        cfg.topology = if rng.random_bool(0.5) {
            TopologySpec::ParkingLot { hops: rng.random_range(2..=3u32) as usize }
        } else {
            TopologySpec::MultiDumbbell {
                rtts_ms: vec![choose(&mut rng, &RTT_MENU), choose(&mut rng, &RTT_MENU)],
            }
        };
        // Aim the loss/fault knobs at a uniformly random bottleneck hop
        // (always 0 on single-bottleneck shapes).
        cfg.fault_link = rng.random_range(0..cfg.topology.n_bottlenecks() as u32);
    }

    // Start-offset draws extend the END of the stream (same discipline as
    // the topology block above): every pre-offset seed consumes its old
    // prefix unchanged, so the committed corpus replays byte-identically.
    // One group joins late, 100 ms-quantized, at most half the duration
    // in — the offset must leave the late group time to actually run.
    if rng.random_bool(0.2) {
        let n_groups = cfg.topology.n_groups();
        let idx = rng.random_range(0..n_groups);
        let off_ms = rng.random_range(1..=duration_ms / 200) * 100;
        let mut offsets = vec![0u64; n_groups];
        offsets[idx] = off_ms;
        cfg.start_offset_ms = offsets;
    }

    debug_assert!(cfg.validate().is_ok(), "generator must emit valid configs");
    cfg
}

/// Rough relative cost of simulating a case: bytes the bottleneck can
/// carry over the run, scaled by the flow-count fraction. Used to pick
/// debug-mode-friendly cases for tests; the fuzzer itself runs release.
pub fn case_cost(cfg: &ScenarioConfig) -> u64 {
    let bits = cfg.bw_bps as f64 * cfg.duration.as_secs_f64() * cfg.flow_scale;
    (bits / 8.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_json::ToJson;

    #[test]
    fn every_generated_case_validates() {
        for seed in 0..500 {
            let cfg = generate_case(seed);
            assert!(
                cfg.validate().is_ok(),
                "seed {seed} generated an invalid config: {:?}",
                cfg.validate()
            );
            assert_eq!(cfg.seed, seed, "config must carry its case seed");
            assert_eq!(cfg.max_events, CASE_EVENT_BUDGET);
            assert!(cfg.warmup.as_nanos() * 2 <= cfg.duration.as_nanos());
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = generate_case(seed).to_json_string();
            let b = generate_case(seed).to_json_string();
            assert_eq!(a, b);
        }
        assert_ne!(generate_case(1).to_json_string(), generate_case(2).to_json_string());
    }

    #[test]
    fn bandwidth_faults_never_raise_the_rate() {
        for seed in 0..500 {
            let cfg = generate_case(seed);
            for ev in &cfg.faults.events {
                if let FaultAction::SetBandwidth(bw) = ev.action {
                    assert!(
                        bw.as_bps() <= cfg.bw_bps,
                        "seed {seed}: fault raises rate to {} above {}",
                        bw.as_bps(),
                        cfg.bw_bps
                    );
                }
            }
        }
    }

    #[test]
    fn knob_menus_are_actually_explored() {
        // 500 seeds must hit every CCA, AQM, both coalesce values, and at
        // least one faulted + one loss-model case — a silent generator
        // collapse (always the same corner) would gut the fuzzer.
        let mut ccas = std::collections::BTreeSet::new();
        let mut aqms = std::collections::BTreeSet::new();
        let (mut coalesced, mut faulted, mut lossy) = (0u32, 0u32, 0u32);
        let (mut parking, mut multi, mut off_hop, mut staggered) = (0u32, 0u32, 0u32, 0u32);
        for seed in 0..500 {
            let cfg = generate_case(seed);
            ccas.insert(format!("{}", cfg.cca1));
            aqms.insert(format!("{}", cfg.aqm));
            coalesced += cfg.coalesce as u32;
            faulted += !cfg.faults.is_empty() as u32;
            lossy += (cfg.loss != LossModel::None) as u32;
            if cfg.is_staggered() {
                staggered += 1;
                assert_eq!(cfg.start_offset_ms.len(), cfg.topology.n_groups());
            }
            match &cfg.topology {
                TopologySpec::Dumbbell => assert_eq!(cfg.fault_link, 0),
                TopologySpec::ParkingLot { .. } => parking += 1,
                TopologySpec::MultiDumbbell { .. } => multi += 1,
                TopologySpec::Explicit(_) => panic!("generator never emits Explicit"),
            }
            assert!((cfg.fault_link as usize) < cfg.topology.n_bottlenecks());
            off_hop += (cfg.fault_link != 0) as u32;
        }
        assert_eq!(ccas.len(), 5, "all CCAs explored: {ccas:?}");
        assert_eq!(aqms.len(), 5, "all AQMs explored: {aqms:?}");
        assert!(coalesced > 50 && coalesced < 450, "coalesce on in {coalesced}/500");
        assert!(faulted > 100, "faulted in only {faulted}/500");
        assert!(lossy > 50, "lossy in only {lossy}/500");
        assert!(parking > 20, "parking-lot in only {parking}/500");
        assert!(multi > 20, "multi-dumbbell in only {multi}/500");
        assert!(off_hop > 10, "fault aimed off hop 0 in only {off_hop}/500");
        assert!(
            staggered > 50 && staggered < 200,
            "staggered starts in {staggered}/500, want ~20%"
        );
    }
}
