//! Mutation test: prove the fuzzer can actually find and shrink a bug.
//!
//! A fuzzer whose oracles never fire is indistinguishable from one that
//! checks nothing. This test arms the deliberate invariant break in
//! `netsim::check` (the env-gated sabotage hook fails packet conservation
//! once the checker has seen a threshold of deliveries), then asserts the
//! whole pipeline: the fuzzer *finds* the break, classifies it as an
//! Invariant failure, and *shrinks* it to the same deterministic minimal
//! case on every run.
//!
//! The hook is process-global (environment variable read at `Checker`
//! construction), which is exactly why this lives in its own integration
//! test binary: the sabotage arms every strict run in this process and no
//! other. Keep this file to this single `#[test]`.

use elephants_chaos::{fuzz, generate_case, shrink, CaseOutcome, FuzzOptions, OracleKind};
use elephants_json::ToJson;
use elephants_netsim::{SimDuration, SABOTAGE_ENV, SABOTAGE_INVARIANT};

#[test]
fn seeded_invariant_break_is_found_and_shrunk_deterministically() {
    // Arm the sabotage: conservation "fails" once 400 packets have been
    // delivered. Low enough that floor-sized shrink candidates still trip
    // it, so shrinking converges to the dimensional floor; monotone in
    // run size, so shrinking is a real search, not a coin flip.
    std::env::set_var(SABOTAGE_ENV, "400");

    // A debug-mode-friendly victim seed: cheap case, no fault plan (the
    // generator is deterministic, so this scan always lands on the same
    // seed).
    let seed = (0..500u64)
        .find(|&s| {
            let c = generate_case(s);
            elephants_chaos::case_cost(&c) < 3_000_000 && c.faults.is_empty()
        })
        .expect("some cheap unfaulted case in 500 seeds");

    // 1. The fuzzer finds the break and classifies it.
    let opts = FuzzOptions {
        cases: 1,
        base_seed: seed,
        shrink: false, // shrink separately below, twice
        ..Default::default()
    };
    let report = fuzz(&opts, |_, _| {});
    assert_eq!(report.findings.len(), 1, "sabotaged run must be a finding");
    let finding = &report.findings[0];
    assert_eq!(finding.oracle, OracleKind::Invariant, "detail: {}", finding.detail);
    assert!(
        finding.detail.contains(SABOTAGE_INVARIANT),
        "failure must name the sabotage invariant: {}",
        finding.detail
    );

    // 2. Shrinking is deterministic: two independent runs from the same
    //    finding produce byte-identical minimal configs.
    let predicate = |c: &elephants_experiments::ScenarioConfig| {
        matches!(
            elephants_chaos::judge(c),
            CaseOutcome::Fail { oracle: OracleKind::Invariant, .. }
        )
    };
    let a = shrink(&finding.original, predicate, 100);
    let b = shrink(&finding.original, predicate, 100);
    assert_eq!(
        a.config.to_json_string(),
        b.config.to_json_string(),
        "shrinking must be deterministic"
    );
    assert_eq!(a.evals, b.evals);
    assert!(!a.budget_exhausted, "shrink must reach a fixpoint in budget");

    // 3. The minimal case is actually minimal for this bug: the sabotage
    //    fires in any run delivering >= 400 packets, so every dimension
    //    shrinks to its floor.
    let min = &a.config;
    assert_eq!(min.flow_scale, 0.25);
    assert_eq!(min.duration, SimDuration::from_millis(500));
    assert!(min.warmup.is_zero());
    assert!(min.faults.is_empty());
    assert!(!min.coalesce && !min.ecn);
    assert_eq!(min.mss, 8900);
    assert_eq!(min.rtt_ms, 62);
    assert_eq!((min.queue_bdp, min.bw_bps), (2.0, 100_000_000));

    // 4. The shrunk case still reproduces (the fixture the fuzzer would
    //    commit is a live repro while the bug exists).
    match elephants_chaos::judge(min) {
        CaseOutcome::Fail { oracle: OracleKind::Invariant, detail } => {
            assert!(detail.contains(SABOTAGE_INVARIANT), "{detail}");
        }
        other => panic!("minimal case must still fail the invariant oracle: {other:?}"),
    }
}
