//! Small summary-statistics helpers for aggregating repeated runs.

use elephants_json::impl_json_struct;

/// Mean of a slice (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (m, var.sqrt())
}

/// Five-number-ish summary of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl_json_struct!(Summary { n, mean, std, min, max });

impl Summary {
    /// Summarize a sample set (empty input yields zeros).
    ///
    /// Panics on NaN input: `f64::min`/`max` folds silently absorb or
    /// propagate NaN depending on argument order, so one poisoned sample
    /// would corrupt an entire aggregated table undetected.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, std: 0.0, min: 0.0, max: 0.0 };
        }
        assert!(!xs.iter().any(|x| x.is_nan()), "NaN sample in Summary::of: {xs:?}");
        let (m, s) = mean_std(xs);
        let min = xs.iter().copied().min_by(f64::total_cmp).unwrap();
        let max = xs.iter().copied().max_by(f64::total_cmp).unwrap();
        Summary { n: xs.len(), mean: m, std: s, min, max }
    }
}

/// Bookkeeping for failure-aware aggregation: how many cells were
/// attempted versus lost to failures, carried alongside statistics computed
/// over the survivors so a partially-failed grid cannot masquerade as a
/// fully-measured one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FailureCounts {
    /// Cells attempted.
    pub attempted: usize,
    /// Cells that produced no sample.
    pub failed: usize,
}

impl_json_struct!(FailureCounts { attempted, failed });

impl FailureCounts {
    /// Cells that produced a sample.
    pub fn succeeded(&self) -> usize {
        self.attempted - self.failed
    }

    /// Fraction of attempted cells that succeeded (1.0 for zero attempts:
    /// an empty grid has nothing failing).
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.succeeded() as f64 / self.attempted as f64
        }
    }
}

/// Summarize the surviving samples of a partially-failed grid.
///
/// `None` marks a failed cell. The statistics cover only the `Some`
/// samples; the returned [`FailureCounts`] keeps the gaps visible so a
/// mean over 3 of 5 seeds is never mistaken for a mean over all 5.
pub fn summarize_surviving(samples: &[Option<f64>]) -> (Summary, FailureCounts) {
    let survivors: Vec<f64> = samples.iter().filter_map(|s| *s).collect();
    let counts =
        FailureCounts { attempted: samples.len(), failed: samples.len() - survivors.len() };
    (Summary::of(&survivors), counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let (m, s) = mean_std(&[3.5]);
        assert_eq!((m, s), (3.5, 0.0));
    }

    #[test]
    fn summary_of_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
    }

    #[test]
    fn summary_min_max_handle_signs_and_infinities() {
        // total_cmp-based extrema: order does not depend on element order
        // and infinities are honest extremes, not fold-identity artifacts.
        let s = Summary::of(&[0.0, -3.5, f64::INFINITY, 2.0, f64::NEG_INFINITY]);
        assert_eq!(s.min, f64::NEG_INFINITY);
        assert_eq!(s.max, f64::INFINITY);
        let t = Summary::of(&[-2.0, -7.0, -1.0]);
        assert_eq!((t.min, t.max), (-7.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn summary_rejects_nan() {
        Summary::of(&[1.0, f64::NAN, 3.0]);
    }

    #[test]
    fn surviving_summary_skips_failed_cells_but_counts_them() {
        let (s, c) = summarize_surviving(&[Some(1.0), None, Some(3.0), None, Some(2.0)]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!((c.attempted, c.failed, c.succeeded()), (5, 2, 3));
        assert!((c.success_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn surviving_summary_edge_cases() {
        let (s, c) = summarize_surviving(&[]);
        assert_eq!((s.n, c.attempted), (0, 0));
        assert_eq!(c.success_rate(), 1.0, "empty grid has nothing failing");
        let (s, c) = summarize_surviving(&[None, None]);
        assert_eq!(s.n, 0);
        assert_eq!((c.failed, c.succeeded()), (2, 0));
        assert_eq!(c.success_rate(), 0.0);
    }
}
