//! Small summary-statistics helpers for aggregating repeated runs.

use elephants_json::impl_json_struct;

/// Mean of a slice (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (m, var.sqrt())
}

/// Five-number-ish summary of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl_json_struct!(Summary { n, mean, std, min, max });

impl Summary {
    /// Summarize a sample set (empty input yields zeros).
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, std: 0.0, min: 0.0, max: 0.0 };
        }
        let (m, s) = mean_std(xs);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n: xs.len(), mean: m, std: s, min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let (m, s) = mean_std(&[3.5]);
        assert_eq!((m, s), (3.5, 0.0));
    }

    #[test]
    fn summary_of_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
    }
}
