//! # elephants-metrics
//!
//! The measurement pipeline of the study: Jain's fairness index (paper
//! Eq. 2), overall link utilization φ (Eq. 3), relative retransmissions RR
//! (Eq. 4), and small summary-statistics helpers used when averaging the
//! paper's five repetitions.

pub mod stats;

pub use stats::{mean, mean_std, summarize_surviving, FailureCounts, Summary};

use elephants_json::impl_json_struct;

/// Jain's fairness index over per-entity throughputs (paper Eq. 2).
///
/// Returns a value in `(0, 1]`; `1.0` means perfectly equal shares. By
/// convention an empty or all-zero input yields `1.0` (nothing to be unfair
/// about).
///
/// ```
/// use elephants_metrics::jain_index;
/// assert_eq!(jain_index(&[10.0, 10.0]), 1.0);
/// assert!((jain_index(&[10.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn jain_index(throughputs: &[f64]) -> f64 {
    let n = throughputs.len();
    if n == 0 {
        return 1.0;
    }
    // A NaN would flow through both sums and poison the index (and then
    // every average built on it) silently; fail loudly at the source.
    assert!(
        !throughputs.iter().any(|x| x.is_nan()),
        "NaN throughput in jain_index: {throughputs:?}"
    );
    debug_assert!(throughputs.iter().all(|&x| x >= 0.0), "throughputs must be non-negative");
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|&x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Overall link utilization φ (paper Eq. 3): total goodput over capacity.
///
/// Clamps tiny numerical overshoot to 1.0 but deliberately does *not* hide
/// genuine overshoot above 1.05 (which would indicate an accounting bug).
pub fn link_utilization(total_throughput_bps: f64, capacity_bps: f64) -> f64 {
    assert!(capacity_bps > 0.0, "capacity must be positive");
    let phi = total_throughput_bps / capacity_bps;
    debug_assert!(phi < 1.05, "utilization {phi} > 1.05 suggests an accounting bug");
    phi.min(1.0)
}

/// Sentinel returned by [`relative_retransmissions`] when the ratio is
/// undefined: the CUBIC reference saw zero retransmissions while the
/// scenario did not. A genuine RR is always positive, so `-1.0` cannot be
/// confused with a real value — and unlike the `f64::INFINITY` this used to
/// return, it survives a JSON round trip (JSON has no representation for
/// infinities, so `inf` would silently corrupt cached figure data).
pub const RR_UNDEFINED: f64 = -1.0;

/// Whether an RR value is a real ratio rather than the [`RR_UNDEFINED`]
/// sentinel. Use this to filter before averaging RRs.
pub fn rr_is_defined(rr: f64) -> bool {
    rr >= 0.0
}

/// Relative retransmissions RR (paper Eq. 4): retransmissions of a scenario
/// normalized by the CUBIC-vs-CUBIC reference for the same conditions.
///
/// A zero reference with a nonzero numerator is undefined and returns the
/// documented [`RR_UNDEFINED`] sentinel (test with [`rr_is_defined`]); zero
/// over zero is defined as 1.0 (both perfectly clean).
pub fn relative_retransmissions(retx: u64, retx_cubic_ref: u64) -> f64 {
    match (retx, retx_cubic_ref) {
        (0, 0) => 1.0,
        (_, 0) => RR_UNDEFINED,
        (r, c) => r as f64 / c as f64,
    }
}

/// Per-sender aggregate used for the fairness computations: the paper's
/// per-sender Jain index treats each *sender node* (all its iperf flows
/// combined) as one entity (`n = 2`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenderThroughput {
    /// Sender index (0 or 1 in the paper's dumbbell).
    pub sender: u32,
    /// Aggregate goodput in bits/s over the measurement window.
    pub goodput_bps: f64,
}

impl_json_struct!(SenderThroughput { sender, goodput_bps });

/// Group per-flow goodputs into per-sender totals.
pub fn per_sender_goodput(flow_goodputs: &[(u32, f64)]) -> Vec<SenderThroughput> {
    let mut map: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    for &(sender, bps) in flow_goodputs {
        *map.entry(sender).or_insert(0.0) += bps;
    }
    map.into_iter().map(|(sender, goodput_bps)| SenderThroughput { sender, goodput_bps }).collect()
}

/// Everything the study reports for one (config, seed) run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Per-sender goodput (bits/s).
    pub senders: Vec<SenderThroughput>,
    /// Jain index over the per-sender goodputs.
    pub jain: f64,
    /// Link utilization φ.
    pub utilization: f64,
    /// Total retransmitted segments in the measurement window.
    pub retransmits: u64,
    /// Total RTO events.
    pub rtos: u64,
    /// Bottleneck drops (enqueue + dequeue).
    pub drops: u64,
}

impl_json_struct!(RunMetrics { senders, jain, utilization, retransmits, rtos, drops });

impl RunMetrics {
    /// Assemble run metrics from raw ingredients.
    pub fn compute(
        flow_goodputs: &[(u32, f64)],
        capacity_bps: f64,
        retransmits: u64,
        rtos: u64,
        drops: u64,
    ) -> Self {
        let senders = per_sender_goodput(flow_goodputs);
        let tputs: Vec<f64> = senders.iter().map(|s| s.goodput_bps).collect();
        let jain = jain_index(&tputs);
        let total: f64 = tputs.iter().sum();
        let utilization = link_utilization(total, capacity_bps);
        RunMetrics { senders, jain, utilization, retransmits, rtos, drops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "NaN throughput")]
    fn jain_rejects_nan() {
        jain_index(&[10.0, f64::NAN]);
    }

    #[test]
    fn jain_equal_shares_is_one() {
        assert_eq!(jain_index(&[5.0; 8]), 1.0);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        for n in 2..10 {
            let mut v = vec![0.0; n];
            v[0] = 42.0;
            assert!((jain_index(&v) - 1.0 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn jain_matches_paper_formula_for_two_senders() {
        // J = (s1+s2)^2 / (2 (s1^2 + s2^2))
        let (s1, s2) = (75.0f64, 25.0f64);
        let expect = (s1 + s2).powi(2) / (2.0 * (s1 * s1 + s2 * s2));
        assert!((jain_index(&[s1, s2]) - expect).abs() < 1e-12);
        assert!((expect - 0.8).abs() < 1e-12);
    }

    #[test]
    fn jain_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn utilization_basics() {
        assert_eq!(link_utilization(50e6, 100e6), 0.5);
        assert_eq!(link_utilization(100e6, 100e6), 1.0);
        // Tiny overshoot from measurement-window rounding clamps to 1.
        assert_eq!(link_utilization(100.4e6, 100e6), 1.0);
    }

    #[test]
    #[should_panic]
    fn utilization_rejects_zero_capacity() {
        link_utilization(1.0, 0.0);
    }

    #[test]
    fn rr_normalization() {
        assert_eq!(relative_retransmissions(100, 50), 2.0);
        assert_eq!(relative_retransmissions(0, 0), 1.0);
        assert_eq!(relative_retransmissions(50, 50), 1.0);
    }

    #[test]
    fn rr_zero_reference_is_sentinel_not_inf() {
        let rr = relative_retransmissions(5, 0);
        assert_eq!(rr, RR_UNDEFINED);
        assert!(rr.is_finite(), "sentinel must be JSON-representable");
        assert!(!rr_is_defined(rr));
        // Every defined outcome passes the filter, including 0/5 = 0.
        assert!(rr_is_defined(relative_retransmissions(0, 0)));
        assert!(rr_is_defined(relative_retransmissions(0, 5)));
        assert!(rr_is_defined(relative_retransmissions(7, 5)));
    }

    #[test]
    fn per_sender_grouping() {
        let flows = [(0u32, 10.0), (1, 5.0), (0, 20.0), (1, 5.0)];
        let agg = per_sender_goodput(&flows);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].goodput_bps, 30.0);
        assert_eq!(agg[1].goodput_bps, 10.0);
    }

    #[test]
    fn run_metrics_assembly() {
        let flows = [(0u32, 40e6), (1, 40e6)];
        let m = RunMetrics::compute(&flows, 100e6, 10, 0, 12);
        assert_eq!(m.jain, 1.0);
        assert!((m.utilization - 0.8).abs() < 1e-12);
        assert_eq!(m.retransmits, 10);
        assert_eq!(m.drops, 12);
    }
}
