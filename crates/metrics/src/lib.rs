//! # elephants-metrics
//!
//! The measurement pipeline of the study: Jain's fairness index (paper
//! Eq. 2), overall link utilization φ (Eq. 3), relative retransmissions RR
//! (Eq. 4), and small summary-statistics helpers used when averaging the
//! paper's five repetitions.

pub mod stats;

pub use stats::{mean, mean_std, summarize_surviving, FailureCounts, Summary};

use elephants_json::impl_json_struct;

/// Jain's fairness index over per-entity throughputs (paper Eq. 2).
///
/// Returns a value in `(0, 1]`; `1.0` means perfectly equal shares. By
/// convention an empty or all-zero input yields `1.0` (nothing to be unfair
/// about).
///
/// ```
/// use elephants_metrics::jain_index;
/// assert_eq!(jain_index(&[10.0, 10.0]), 1.0);
/// assert!((jain_index(&[10.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn jain_index(throughputs: &[f64]) -> f64 {
    let n = throughputs.len();
    if n == 0 {
        return 1.0;
    }
    // A NaN would flow through both sums and poison the index (and then
    // every average built on it) silently; fail loudly at the source.
    assert!(
        !throughputs.iter().any(|x| x.is_nan()),
        "NaN throughput in jain_index: {throughputs:?}"
    );
    debug_assert!(throughputs.iter().all(|&x| x >= 0.0), "throughputs must be non-negative");
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|&x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Overall link utilization φ (paper Eq. 3): total goodput over capacity.
///
/// Clamps tiny numerical overshoot to 1.0 but deliberately does *not* hide
/// genuine overshoot above 1.05 (which would indicate an accounting bug).
pub fn link_utilization(total_throughput_bps: f64, capacity_bps: f64) -> f64 {
    assert!(capacity_bps > 0.0, "capacity must be positive");
    let phi = total_throughput_bps / capacity_bps;
    debug_assert!(phi < 1.05, "utilization {phi} > 1.05 suggests an accounting bug");
    phi.min(1.0)
}

/// Burst-tolerant utilization for *windowed* measurements.
///
/// Over a short window, delivery is quantized to whole segments and a
/// queue built up in earlier windows can drain into this one, so the
/// per-window ratio legitimately exceeds 1.0 — at a 10 ms window on a
/// 25 Gbps link a single extra 8900-byte segment is already ~0.03 φ, and
/// a draining queue can push a window well past the 1.05 accounting
/// bound [`link_utilization`] enforces for whole-run measurements. This
/// variant therefore returns the raw ratio unclamped; averaging the
/// series over many windows converges back to the whole-run φ. Use
/// [`link_utilization`] for run-level accounting, this for time series.
pub fn link_utilization_windowed(window_throughput_bps: f64, capacity_bps: f64) -> f64 {
    assert!(capacity_bps > 0.0, "capacity must be positive");
    debug_assert!(
        window_throughput_bps >= 0.0 && window_throughput_bps.is_finite(),
        "windowed throughput must be finite and non-negative, got {window_throughput_bps}"
    );
    window_throughput_bps / capacity_bps
}

/// Sentinel returned by [`relative_retransmissions`] when the ratio is
/// undefined: the CUBIC reference saw zero retransmissions while the
/// scenario did not. A genuine RR is always positive, so `-1.0` cannot be
/// confused with a real value — and unlike the `f64::INFINITY` this used to
/// return, it survives a JSON round trip (JSON has no representation for
/// infinities, so `inf` would silently corrupt cached figure data).
pub const RR_UNDEFINED: f64 = -1.0;

/// Whether an RR value is a real ratio rather than the [`RR_UNDEFINED`]
/// sentinel. Use this to filter before averaging RRs.
pub fn rr_is_defined(rr: f64) -> bool {
    rr >= 0.0
}

/// Relative retransmissions RR (paper Eq. 4): retransmissions of a scenario
/// normalized by the CUBIC-vs-CUBIC reference for the same conditions.
///
/// A zero reference with a nonzero numerator is undefined and returns the
/// documented [`RR_UNDEFINED`] sentinel (test with [`rr_is_defined`]); zero
/// over zero is defined as 1.0 (both perfectly clean).
pub fn relative_retransmissions(retx: u64, retx_cubic_ref: u64) -> f64 {
    match (retx, retx_cubic_ref) {
        (0, 0) => 1.0,
        (_, 0) => RR_UNDEFINED,
        (r, c) => r as f64 / c as f64,
    }
}

/// Per-sender aggregate used for the fairness computations: the paper's
/// per-sender Jain index treats each *sender node* (all its iperf flows
/// combined) as one entity (`n = 2`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenderThroughput {
    /// Sender index (0 or 1 in the paper's dumbbell).
    pub sender: u32,
    /// Aggregate goodput in bits/s over the measurement window.
    pub goodput_bps: f64,
}

impl_json_struct!(SenderThroughput { sender, goodput_bps });

/// Group per-flow goodputs into per-sender totals.
pub fn per_sender_goodput(flow_goodputs: &[(u32, f64)]) -> Vec<SenderThroughput> {
    let mut map: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    for &(sender, bps) in flow_goodputs {
        *map.entry(sender).or_insert(0.0) += bps;
    }
    map.into_iter().map(|(sender, goodput_bps)| SenderThroughput { sender, goodput_bps }).collect()
}

/// Per-flow-group fairness summary for topology-aware runs.
///
/// On the paper's dumbbell a "group" and a "sender" coincide, so
/// [`RunMetrics`] (whose JSON shape is pinned by the equivalence fixtures)
/// already tells the whole story. Parking-lot and multi-dumbbell topologies
/// have more than two groups with asymmetric paths; this type carries the
/// per-group view — shares, Jain index, RR split — *alongside* the frozen
/// `RunMetrics`, never inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupShare {
    /// Flow-group index (position in the topology's sender list).
    pub group: u32,
    /// Aggregate goodput in bits/s over the measurement window.
    pub goodput_bps: f64,
    /// This group's fraction of the total goodput (`0.0` if total is zero).
    pub share: f64,
    /// Retransmitted segments attributed to this group's flows.
    pub retransmits: u64,
}

impl_json_struct!(GroupShare { group, goodput_bps, share, retransmits });

/// Per-group fairness report: the multi-group analogue of the scalar
/// `jain`/`retransmits` fields of [`RunMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupFairness {
    /// One entry per flow group, ordered by group index.
    pub groups: Vec<GroupShare>,
    /// Jain index over the per-group goodputs.
    pub jain: f64,
    /// Each group's retransmissions relative to the group-mean (all `1.0`
    /// when no group retransmitted at all — a clean run is "fair").
    pub rr_split: Vec<f64>,
}

impl_json_struct!(GroupFairness { groups, jain, rr_split });

impl GroupFairness {
    /// Assemble the per-group report from `(group, goodput_bps, retransmits)`
    /// rows (one per group, any order; rows with the same group are summed).
    pub fn compute(rows: &[(u32, f64, u64)]) -> Self {
        let mut map: std::collections::BTreeMap<u32, (f64, u64)> =
            std::collections::BTreeMap::new();
        for &(group, bps, retx) in rows {
            let e = map.entry(group).or_insert((0.0, 0));
            e.0 += bps;
            e.1 += retx;
        }
        let total: f64 = map.values().map(|&(bps, _)| bps).sum();
        let groups: Vec<GroupShare> = map
            .into_iter()
            .map(|(group, (goodput_bps, retransmits))| GroupShare {
                group,
                goodput_bps,
                share: if total > 0.0 { goodput_bps / total } else { 0.0 },
                retransmits,
            })
            .collect();
        let jain = jain_index(&groups.iter().map(|g| g.goodput_bps).collect::<Vec<_>>());
        let n = groups.len();
        let mean_retx: f64 = if n == 0 {
            0.0
        } else {
            groups.iter().map(|g| g.retransmits as f64).sum::<f64>() / n as f64
        };
        // The mean is over these same groups, so mean == 0 implies every
        // group is clean: define that as uniformly fair (1.0 each).
        let rr_split = groups
            .iter()
            .map(|g| if mean_retx == 0.0 { 1.0 } else { g.retransmits as f64 / mean_retx })
            .collect();
        GroupFairness { groups, jain, rr_split }
    }

    /// The goodput share of one group (`0.0` for an unknown group).
    pub fn share_of(&self, group: u32) -> f64 {
        self.groups.iter().find(|g| g.group == group).map_or(0.0, |g| g.share)
    }
}

/// Everything the study reports for one (config, seed) run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Per-sender goodput (bits/s).
    pub senders: Vec<SenderThroughput>,
    /// Jain index over the per-sender goodputs.
    pub jain: f64,
    /// Link utilization φ.
    pub utilization: f64,
    /// Total retransmitted segments in the measurement window.
    pub retransmits: u64,
    /// Total RTO events.
    pub rtos: u64,
    /// Bottleneck drops (enqueue + dequeue).
    pub drops: u64,
}

impl_json_struct!(RunMetrics { senders, jain, utilization, retransmits, rtos, drops });

impl RunMetrics {
    /// Assemble run metrics from raw ingredients.
    pub fn compute(
        flow_goodputs: &[(u32, f64)],
        capacity_bps: f64,
        retransmits: u64,
        rtos: u64,
        drops: u64,
    ) -> Self {
        let senders = per_sender_goodput(flow_goodputs);
        let tputs: Vec<f64> = senders.iter().map(|s| s.goodput_bps).collect();
        let jain = jain_index(&tputs);
        let total: f64 = tputs.iter().sum();
        let utilization = link_utilization(total, capacity_bps);
        RunMetrics { senders, jain, utilization, retransmits, rtos, drops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "NaN throughput")]
    fn jain_rejects_nan() {
        jain_index(&[10.0, f64::NAN]);
    }

    #[test]
    fn jain_equal_shares_is_one() {
        assert_eq!(jain_index(&[5.0; 8]), 1.0);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        for n in 2..10 {
            let mut v = vec![0.0; n];
            v[0] = 42.0;
            assert!((jain_index(&v) - 1.0 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn jain_matches_paper_formula_for_two_senders() {
        // J = (s1+s2)^2 / (2 (s1^2 + s2^2))
        let (s1, s2) = (75.0f64, 25.0f64);
        let expect = (s1 + s2).powi(2) / (2.0 * (s1 * s1 + s2 * s2));
        assert!((jain_index(&[s1, s2]) - expect).abs() < 1e-12);
        assert!((expect - 0.8).abs() < 1e-12);
    }

    #[test]
    fn jain_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn utilization_basics() {
        assert_eq!(link_utilization(50e6, 100e6), 0.5);
        assert_eq!(link_utilization(100e6, 100e6), 1.0);
        // Tiny overshoot from measurement-window rounding clamps to 1.
        assert_eq!(link_utilization(100.4e6, 100e6), 1.0);
    }

    #[test]
    #[should_panic]
    fn utilization_rejects_zero_capacity() {
        link_utilization(1.0, 0.0);
    }

    #[test]
    fn windowed_utilization_tolerates_bursts() {
        // A queue-drain window at 1.2x capacity would trip the run-level
        // accounting assert; the windowed variant reports it faithfully.
        assert!((link_utilization_windowed(120e6, 100e6) - 1.2).abs() < 1e-12);
        assert_eq!(link_utilization_windowed(50e6, 100e6), 0.5);
        assert_eq!(link_utilization_windowed(0.0, 100e6), 0.0);
    }

    #[test]
    #[should_panic]
    fn windowed_utilization_rejects_zero_capacity() {
        link_utilization_windowed(1.0, 0.0);
    }

    #[test]
    fn rr_normalization() {
        assert_eq!(relative_retransmissions(100, 50), 2.0);
        assert_eq!(relative_retransmissions(0, 0), 1.0);
        assert_eq!(relative_retransmissions(50, 50), 1.0);
    }

    #[test]
    fn rr_zero_reference_is_sentinel_not_inf() {
        let rr = relative_retransmissions(5, 0);
        assert_eq!(rr, RR_UNDEFINED);
        assert!(rr.is_finite(), "sentinel must be JSON-representable");
        assert!(!rr_is_defined(rr));
        // Every defined outcome passes the filter, including 0/5 = 0.
        assert!(rr_is_defined(relative_retransmissions(0, 0)));
        assert!(rr_is_defined(relative_retransmissions(0, 5)));
        assert!(rr_is_defined(relative_retransmissions(7, 5)));
    }

    #[test]
    fn per_sender_grouping() {
        let flows = [(0u32, 10.0), (1, 5.0), (0, 20.0), (1, 5.0)];
        let agg = per_sender_goodput(&flows);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].goodput_bps, 30.0);
        assert_eq!(agg[1].goodput_bps, 10.0);
    }

    #[test]
    fn group_fairness_shares_jain_and_rr_split() {
        // Three parking-lot groups: the long-path group got squeezed.
        let rows = [(0u32, 60e6, 30u64), (1, 30e6, 10), (2, 10e6, 20), (0, 0.0, 0)];
        let gf = GroupFairness::compute(&rows);
        assert_eq!(gf.groups.len(), 3);
        assert!((gf.share_of(0) - 0.6).abs() < 1e-12);
        assert!((gf.share_of(2) - 0.1).abs() < 1e-12);
        assert_eq!(gf.share_of(9), 0.0, "unknown group has no share");
        let expect_jain = jain_index(&[60e6, 30e6, 10e6]);
        assert!((gf.jain - expect_jain).abs() < 1e-12);
        // mean retx = 20 -> splits 1.5, 0.5, 1.0
        assert!((gf.rr_split[0] - 1.5).abs() < 1e-12);
        assert!((gf.rr_split[1] - 0.5).abs() < 1e-12);
        assert!((gf.rr_split[2] - 1.0).abs() < 1e-12);
        // JSON round trip through the strict parser.
        use elephants_json::{FromJson, ToJson};
        let back = GroupFairness::from_json_str(&gf.to_json_string()).unwrap();
        assert_eq!(back, gf);
    }

    #[test]
    fn group_fairness_degenerate_inputs() {
        let clean = GroupFairness::compute(&[(0, 50e6, 0), (1, 50e6, 0)]);
        assert_eq!(clean.jain, 1.0);
        assert_eq!(clean.rr_split, vec![1.0, 1.0], "clean run is uniformly fair");
        let empty = GroupFairness::compute(&[]);
        assert!(empty.groups.is_empty());
        assert_eq!(empty.jain, 1.0);
        let stalled = GroupFairness::compute(&[(0, 0.0, 5)]);
        assert_eq!(stalled.share_of(0), 0.0, "zero total goodput yields zero shares");
    }

    #[test]
    fn run_metrics_assembly() {
        let flows = [(0u32, 40e6), (1, 40e6)];
        let m = RunMetrics::compute(&flows, 100e6, 10, 0, 12);
        assert_eq!(m.jain, 1.0);
        assert!((m.utilization - 0.8).abs() < 1e-12);
        assert_eq!(m.retransmits, 10);
        assert_eq!(m.drops, 12);
    }
}
