//! # elephants-json
//!
//! A small, dependency-free JSON layer for the elephants workspace.
//!
//! The workspace policy is **zero external crates** — every build must
//! succeed fully offline — so experiment configs, run results and traces
//! serialize through this module instead of `serde`/`serde_json`:
//!
//! * [`Value`] — an owned JSON document model,
//! * [`parse`] — a strict recursive-descent parser,
//! * [`Value::to_string_compact`] / [`Value::to_string_pretty`] — writers
//!   with deterministic output (object keys keep insertion order, so the
//!   same data always produces byte-identical text),
//! * [`ToJson`] / [`FromJson`] — conversion traits implemented for
//!   primitives and containers here and for domain types in their own
//!   crates via [`impl_json_struct!`], [`impl_json_unit_enum!`] and
//!   [`impl_json_newtype!`].
//!
//! Integers ride in a dedicated [`Value::Int`] (`i128`) variant rather
//! than through `f64`, so `u64` seeds and byte counters round-trip
//! exactly. Non-finite floats serialize as `null` (matching serde_json)
//! and parse back as `NaN`.

use std::fmt::Write as _;

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Construct from anything displayable.
    pub fn new(msg: impl std::fmt::Display) -> Self {
        JsonError(msg.to_string())
    }
}

/// An owned JSON document.
///
/// Objects are stored as insertion-ordered `(key, value)` pairs, not a
/// map: serialization order is exactly the order fields were pushed,
/// which is what makes equal inputs produce byte-identical output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no `.`, `e` or `E` in the source).
    Int(i128),
    /// A floating-point literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object; errors on missing field or non-object.
    pub fn get_field(&self, name: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field '{name}'"))),
            other => Err(JsonError::new(format!(
                "expected object with field '{name}', got {}",
                other.kind_name()
            ))),
        }
    }

    /// Short name of this value's kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (serde_json style).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(x) => write_f64(out, *x),
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Rust's shortest-round-trip `Display` for finite floats is valid JSON
/// (it never emits exponents, always a leading digit). Non-finite values
/// have no JSON representation and become `null`.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError::new(format!(
                "unexpected byte '{}' at {}",
                b as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(JsonError::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| JsonError::new(format!("invalid utf-8 in string: {e}")))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(JsonError::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                Some(b) => {
                    return Err(JsonError::new(format!(
                        "raw control byte 0x{b:02x} in string"
                    )))
                }
                None => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let txt = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(txt, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let txt = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            txt.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| JsonError::new(format!("bad number '{txt}': {e}")))
        } else {
            // Magnitudes beyond i128 (e.g. a serialized f64::MAX) fall back
            // to the float representation rather than erroring.
            match txt.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => txt
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| JsonError::new(format!("bad number '{txt}': {e}"))),
            }
        }
    }
}

/// Convert a domain value into a JSON [`Value`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;

    /// Compact rendering.
    fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Pretty (two-space indented) rendering.
    fn to_json_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

/// Reconstruct a domain value from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Convert from a parsed document.
    fn from_json(v: &Value) -> Result<Self, JsonError>;

    /// Parse text and convert.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&parse(s)?)
    }
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_json_int {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Value {
                    Value::Int(*self as i128)
                }
            }
            impl FromJson for $ty {
                fn from_json(v: &Value) -> Result<Self, JsonError> {
                    match v {
                        Value::Int(i) => <$ty>::try_from(*i).map_err(|_| {
                            JsonError::new(format!(
                                "integer {i} out of range for {}",
                                stringify!($ty)
                            ))
                        }),
                        other => Err(JsonError::new(format!(
                            "expected integer, got {}",
                            other.kind_name()
                        ))),
                    }
                }
            }
        )+
    };
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for i128 {
    fn to_json(&self) -> Value {
        Value::Int(*self)
    }
}

impl FromJson for i128 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(JsonError::new(format!("expected integer, got {}", other.kind_name()))),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {}", other.kind_name()))),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Float(x) => Ok(*x),
            // "2" and "2.0" are the same JSON number; accept both.
            Value::Int(i) => Ok(*i as f64),
            // Non-finite floats serialize as null.
            Value::Null => Ok(f64::NAN),
            other => Err(JsonError::new(format!("expected number, got {}", other.kind_name()))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        f64::from_json(v).map(|x| x as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!("expected string, got {}", other.kind_name()))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) => items.iter().map(FromJson::from_json).collect(),
            other => Err(JsonError::new(format!("expected array, got {}", other.kind_name()))),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(JsonError::new(format!(
                "expected 2-element array, got {}",
                other.kind_name()
            ))),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Copy + Default, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_json(item)?;
                }
                Ok(out)
            }
            other => Err(JsonError::new(format!(
                "expected {N}-element array, got {}",
                other.kind_name()
            ))),
        }
    }
}

// ---- derive-free impl macros --------------------------------------------

/// Implement [`ToJson`]/[`FromJson`] for a struct with named public (or
/// crate-visible) fields. Fields serialize in the listed order.
///
/// ```
/// use elephants_json::{impl_json_struct, FromJson, ToJson};
/// struct P { x: u32, y: f64 }
/// impl_json_struct!(P { x, y });
/// let p = P { x: 1, y: 2.5 };
/// assert_eq!(p.to_json_string(), r#"{"x":1,"y":2.5}"#);
/// assert_eq!(P::from_json_str(&p.to_json_string()).unwrap().x, 1);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::FromJson::from_json(v.get_field(stringify!($field))?)?,)+
                })
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a fieldless enum, serialized as
/// the variant name string (matching what serde's derive produced).
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Str(match self {
                    $($ty::$variant => stringify!($variant),)+
                }.to_string())
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                match v {
                    $crate::Value::Str(s) => match s.as_str() {
                        $(stringify!($variant) => Ok($ty::$variant),)+
                        other => Err($crate::JsonError::new(format!(
                            "unknown {} variant '{}'", stringify!($ty), other
                        ))),
                    },
                    other => Err($crate::JsonError::new(format!(
                        "expected string for {}, got {}", stringify!($ty), other.kind_name()
                    ))),
                }
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a single-field tuple struct,
/// serialized transparently as its inner value.
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ident) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                Ok($ty($crate::FromJson::from_json(v)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        n: u64,
        rate: f64,
        label: String,
        tags: Vec<u32>,
        opt: Option<bool>,
    }
    impl_json_struct!(Demo { n, rate, label, tags, opt });

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    impl_json_unit_enum!(Color { Red, Green });

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Wrapper(u64);
    impl_json_newtype!(Wrapper);

    fn demo() -> Demo {
        Demo {
            n: u64::MAX,
            rate: 0.1,
            label: "a \"b\"\nc".to_string(),
            tags: vec![1, 2, 3],
            opt: None,
        }
    }

    #[test]
    fn struct_round_trip() {
        let d = demo();
        let back = Demo::from_json_str(&d.to_json_string()).unwrap();
        assert_eq!(back, d);
        let back = Demo::from_json_str(&d.to_json_pretty()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn u64_max_survives_round_trip() {
        // The reason Value has a dedicated Int variant: f64 would lose this.
        assert_eq!(u64::from_json_str(&u64::MAX.to_json_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(demo().to_json_pretty(), demo().to_json_pretty());
        assert_eq!(
            demo().to_json_string(),
            r#"{"n":18446744073709551615,"rate":0.1,"label":"a \"b\"\nc","tags":[1,2,3],"opt":null}"#
        );
    }

    #[test]
    fn pretty_format_is_indented() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Int(2)])),
        ]);
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    }

    #[test]
    fn unit_enum_round_trip() {
        assert_eq!(Color::Red.to_json_string(), r#""Red""#);
        assert_eq!(Color::from_json_str(r#""Green""#).unwrap(), Color::Green);
        assert!(Color::from_json_str(r#""Blue""#).is_err());
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Wrapper(7).to_json_string(), "7");
        assert_eq!(Wrapper::from_json_str("7").unwrap(), Wrapper(7));
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.0, -0.5, 1.0, 0.1, 1e-9, 775000.0, f64::MAX] {
            let s = x.to_json_string();
            assert_eq!(f64::from_json_str(&s).unwrap(), x, "via {s}");
        }
        // Whole floats print without a fraction and come back equal.
        assert_eq!(f64::from_json_str("1").unwrap(), 1.0);
        // Non-finite becomes null, which reads back as NaN.
        assert_eq!(f64::NAN.to_json_string(), "null");
        assert!(f64::from_json_str("null").unwrap().is_nan());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse(r#""a\u00e9b\ud83d\ude00c\/""#).unwrap();
        assert_eq!(v, Value::Str("aéb\u{1F600}c/".to_string()));
    }

    #[test]
    fn nested_containers_round_trip() {
        let pairs: [(u64, u64); 3] = [(1, 2), (3, 4), (0, 0)];
        let s = pairs.to_json_string();
        assert_eq!(<[(u64, u64); 3]>::from_json_str(&s).unwrap(), pairs);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_json_str("256").is_err());
        assert!(u64::from_json_str("-1").is_err());
        assert!(u64::from_json_str("1.5").is_err());
    }
}
