//! Property-based tests for the DES engine primitives (seeded harness).

use elephants_netsim::prelude::*;
use elephants_netsim::prop::{run_cases, vec_of, DEFAULT_CASES};
use elephants_netsim::{bdp_bytes, prop_check, prop_check_eq, Event, EventQueue};

/// The event queue is a total order: pops come out sorted by time, and
/// equal times preserve insertion order.
#[test]
fn event_queue_total_order() {
    run_cases("event_queue_total_order", DEFAULT_CASES, |rng| {
        let times = vec_of(rng, 1, 200, |r| r.random_range(0u64..1_000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(
                SimTime::from_nanos(t),
                Event::Timer {
                    flow: FlowId(i as u32),
                    dir: Dir::Sender,
                    kind: TimerKind::Rto,
                    gen: 0,
                },
            );
        }
        let mut last: Option<(u64, u32)> = None;
        let mut popped = 0;
        while let Some((at, ev)) = q.pop() {
            popped += 1;
            let Event::Timer { flow, .. } = ev else { unreachable!() };
            if let Some((lt, lf)) = last {
                prop_check!(
                    at.as_nanos() > lt || (at.as_nanos() == lt && flow.0 > lf),
                    "order violated: ({lt},{lf}) then ({},{})",
                    at.as_nanos(),
                    flow.0
                );
            }
            last = Some((at.as_nanos(), flow.0));
        }
        prop_check_eq!(popped, times.len());
        Ok(())
    });
}

/// The timer wheel agrees with a sorted reference model under interleaved
/// schedule/pop traffic spanning every wheel level and the overflow heap.
#[test]
fn event_queue_matches_reference_model() {
    run_cases("event_queue_matches_reference_model", DEFAULT_CASES, |rng| {
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u32)> = Vec::new();
        let mut popped: Vec<(u64, u32)> = Vec::new();
        let mut id = 0u32;
        let mut now = 0u64;
        for _ in 0..rng.random_range(1usize..40) {
            // A burst of schedules at or after the last popped time, with
            // offsets from sub-µs up to beyond the ~17 s wheel horizon.
            for _ in 0..rng.random_range(1usize..8) {
                let exp = rng.random_range(0u32..36);
                let t = now + rng.random_range(0u64..(1u64 << exp));
                q.schedule(
                    SimTime::from_nanos(t),
                    Event::Timer {
                        flow: FlowId(id),
                        dir: Dir::Sender,
                        kind: TimerKind::Rto,
                        gen: 0,
                    },
                );
                reference.push((t, id));
                id += 1;
            }
            for _ in 0..rng.random_range(0usize..6) {
                let Some((at, ev)) = q.pop() else { break };
                let Event::Timer { flow, .. } = ev else { unreachable!() };
                now = at.as_nanos();
                popped.push((now, flow.0));
            }
        }
        while let Some((at, ev)) = q.pop() {
            let Event::Timer { flow, .. } = ev else { unreachable!() };
            popped.push((at.as_nanos(), flow.0));
        }
        // Ids increase in insertion order, so sorting by (time, id) is
        // exactly the (time, seq) total order the queue must produce.
        reference.sort_unstable();
        prop_check_eq!(popped, reference);
        Ok(())
    });
}

/// Serialization time is consistent with bytes_in (inverse functions).
#[test]
fn serialization_inverts() {
    run_cases("serialization_inverts", DEFAULT_CASES, |rng| {
        let bps = rng.random_range(1_000_000u64..100_000_000_000);
        let bytes = rng.random_range(1u64..10_000_000);
        let bw = Bandwidth::from_bps(bps);
        let t = bw.serialization_time(bytes);
        let back = bw.bytes_in(t);
        // Rounding may lose at most one byte per nanosecond boundary.
        prop_check!(
            (back as i128 - bytes as i128).abs() <= 1 + bps as i128 / 8_000_000_000,
            "bytes {bytes} -> {t:?} -> {back}"
        );
        Ok(())
    });
}

/// Random structurally-valid fault plans (including Gilbert–Elliott and
/// Bernoulli loss payloads) survive a JSON encode → decode round trip
/// bit-exactly, so committed anomaly scenarios reload as authored.
#[test]
fn fault_plan_json_round_trips() {
    use elephants_json::{FromJson, ToJson};
    use elephants_netsim::{FaultAction, FaultPlan, LossModel};
    run_cases("fault_plan_json_round_trips", DEFAULT_CASES, |rng| {
        let mut at = 0u64;
        let mut plan = FaultPlan::none();
        for _ in 0..rng.random_range(0usize..8) {
            at += rng.random_range(0u64..2_000_000_000);
            let action = match rng.random_range(0u32..5) {
                0 => FaultAction::LinkDown,
                1 => FaultAction::LinkUp,
                2 => FaultAction::SetBandwidth(Bandwidth::from_bps(
                    rng.random_range(1_000_000u64..10_000_000_000),
                )),
                3 => FaultAction::SetDelay(SimDuration::from_micros(
                    rng.random_range(1u64..100_000),
                )),
                _ => FaultAction::SetLossModel(match rng.random_range(0u32..3) {
                    0 => LossModel::None,
                    1 => LossModel::Bernoulli { p: rng.random::<f64>() },
                    _ => LossModel::GilbertElliott {
                        p_gb: rng.random::<f64>(),
                        p_bg: rng.random::<f64>(),
                    },
                }),
            };
            plan = plan.with(SimDuration::from_nanos(at), action);
        }
        plan.validate().map_err(|e| format!("generated plan must be valid: {e}"))?;
        let json = plan.to_json_string();
        let back =
            FaultPlan::from_json_str(&json).map_err(|e| format!("decode failed: {e}\n{json}"))?;
        prop_check_eq!(back, plan);
        Ok(())
    });
}

/// BDP is monotone in both bandwidth and RTT.
#[test]
fn bdp_monotone() {
    run_cases("bdp_monotone", DEFAULT_CASES, |rng| {
        let bps = rng.random_range(1_000_000u64..50_000_000_000);
        let ms = rng.random_range(1u64..500);
        let b1 = bdp_bytes(Bandwidth::from_bps(bps), SimDuration::from_millis(ms));
        let b2 = bdp_bytes(Bandwidth::from_bps(bps * 2), SimDuration::from_millis(ms));
        let b3 = bdp_bytes(Bandwidth::from_bps(bps), SimDuration::from_millis(ms * 2));
        prop_check!(b2 >= b1);
        prop_check!(b3 >= b1);
        // And linear: doubling either doubles the product (within rounding).
        prop_check!((b2 as i128 - 2 * b1 as i128).abs() <= 1);
        prop_check!((b3 as i128 - 2 * b1 as i128).abs() <= 1);
        Ok(())
    });
}

/// Time arithmetic: (t + d) - t == d for all representable values.
#[test]
fn time_add_sub_roundtrip() {
    run_cases("time_add_sub_roundtrip", DEFAULT_CASES, |rng| {
        let t = rng.random_range(0u64..u64::MAX / 2);
        let d = rng.random_range(0u64..u64::MAX / 4);
        let t0 = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_check_eq!((t0 + dur) - t0, dur);
        prop_check_eq!((t0 + dur).since(t0), dur);
        Ok(())
    });
}

/// Droptail backlog never exceeds its limit and conserves bytes.
#[test]
fn droptail_limit_invariant() {
    run_cases("droptail_limit_invariant", DEFAULT_CASES, |rng| {
        let sizes = vec_of(rng, 1, 300, |r| r.random_range(64u32..9001));
        let limit = rng.random_range(10_000u64..200_000);
        let mut q = DropTail::new(limit);
        let mut qrng = SmallRng::seed_from_u64(5);
        let mut accepted_bytes = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            let pkt = Packet::data(FlowId(0), NodeId(0), NodeId(1), i as u64, size, SimTime::ZERO);
            if q.enqueue(pkt, SimTime::ZERO, &mut qrng) == Verdict::Enqueued {
                accepted_bytes += size as u64;
            }
            prop_check!(q.backlog_bytes() <= limit);
        }
        // Drain and verify byte conservation.
        let mut drained = 0u64;
        while let Some(p) = q.dequeue(SimTime::ZERO, &mut qrng).pkt {
            drained += p.size as u64;
        }
        prop_check_eq!(drained, accepted_bytes);
        Ok(())
    });
}

/// Deterministic mini-simulations with randomized blast sizes: the engine
/// must deliver every packet exactly once regardless of load pattern.
mod delivery {
    use super::*;
    use elephants_netsim::{Ctx, EndpointReport, FlowEndpoint, PacketKind};
    use std::any::Any;

    struct Blast {
        peer: NodeId,
        n: u64,
        acked: u64,
    }

    impl FlowEndpoint for Blast {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for seq in 0..self.n {
                ctx.send(Packet::data(ctx.flow, ctx.local, self.peer, seq, 1000, ctx.now));
            }
        }
        fn on_packet(&mut self, pkt: &Packet, _ctx: &mut Ctx) {
            if let PacketKind::Ack(info) = pkt.kind {
                self.acked = self.acked.max(info.cum);
            }
        }
        fn on_timer(&mut self, _k: TimerKind, _c: &mut Ctx) {}
        fn report(&self) -> EndpointReport {
            EndpointReport::default()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    struct Sink {
        peer: NodeId,
        next: u64,
        report: EndpointReport,
    }

    impl FlowEndpoint for Sink {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
            if pkt.is_data() {
                if pkt.seq == self.next {
                    self.next += 1;
                    self.report.delivered_segments += 1;
                }
                let ack = Packet::ack(
                    ctx.flow,
                    ctx.local,
                    self.peer,
                    pkt.seq,
                    elephants_netsim::AckInfo::cumulative(self.next),
                    ctx.now,
                );
                ctx.send(ack);
            }
        }
        fn on_timer(&mut self, _k: TimerKind, _c: &mut Ctx) {}
        fn report(&self) -> EndpointReport {
            self.report
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn every_packet_delivered_exactly_once() {
        run_cases("every_packet_delivered_exactly_once", 32, |rng| {
            let n1 = rng.random_range(1u64..300);
            let n2 = rng.random_range(1u64..300);
            let seed = rng.random_range(0u64..100);
            let spec = DumbbellSpec::paper(Bandwidth::from_mbps(100));
            let topo = spec.build();
            let mut sim = Simulator::new(
                topo,
                SimConfig {
                    duration: SimDuration::from_secs(5),
                    warmup: SimDuration::ZERO,
                    max_events: 10_000_000,
                },
                seed,
            );
            for (i, n) in [(0usize, n1), (1usize, n2)] {
                let s = spec.sender(i);
                let r = spec.receiver(i);
                sim.add_flow(
                    s,
                    r,
                    Box::new(Blast { peer: r, n, acked: 0 }),
                    Box::new(Sink { peer: s, next: 0, report: EndpointReport::default() }),
                    SimTime::ZERO,
                );
            }
            let summary = sim.run();
            prop_check_eq!(summary.flows[0].receiver.delivered_segments, n1);
            prop_check_eq!(summary.flows[1].receiver.delivered_segments, n2);
            // Blasts fit comfortably in the big access FIFOs: zero drops.
            prop_check_eq!(summary.bottleneck.aqm.dropped_total(), 0);
            Ok(())
        });
    }
}
