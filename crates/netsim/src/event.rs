//! The event core: a hierarchical timer wheel with a heap overflow.
//!
//! A single flat `enum` keeps dispatch in the simulator hot loop free of
//! virtual calls (a Rust-performance-book idiom). Events with equal
//! timestamps are ordered by an insertion sequence number so that the
//! schedule is a *total* order and every run is reproducible.
//!
//! # Structure
//!
//! Near-future events go into a three-level timer wheel (256 slots per
//! level, ~1 µs / ~262 µs / ~67 ms per slot); events beyond the wheel
//! horizon (~17 s from the queue's current time) wait in a `BinaryHeap`
//! overflow. Insertion is O(1) for the wheel and pops are amortized O(1):
//! a 256-bit occupancy bitmap per level finds the next non-empty slot, and
//! each slot is sorted by `(time, seq)` once, when it becomes the active
//! drain slot. The pop path compares the wheel minimum against the
//! overflow top, so the exact `(time, seq)` total order of the old
//! pure-heap queue is preserved bit for bit.
//!
//! The queue also owns the [`PacketArena`] for in-flight packets, so
//! `Deliver` events carry a 4-byte [`PacketRef`] instead of a ~100-byte
//! packet: wheel and heap elements stay at 32 bytes and the delivery hot
//! path stops copying packet headers through the priority queue.

use crate::link::LinkId;
use crate::packet::{Dir, FlowId, NodeId, Packet, PacketArena, PacketRef};
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Kinds of per-flow timers. The protocol endpoints interpret these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Flow start (connection establishment is abstracted away).
    Start,
    /// Retransmission timeout.
    Rto,
    /// Pacing release: the endpoint may transmit more data now.
    Pace,
    /// Delayed-ACK timeout on the receiver.
    DelAck,
    /// Endpoint-defined auxiliary timer.
    Custom(u8),
}

/// A simulation event.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A link finished serializing a packet; its transmitter is free.
    LinkTxDone { link: LinkId },
    /// A packet arrives at `node` (after serialization + propagation).
    /// The packet body is parked in the queue's [`PacketArena`].
    Deliver { node: NodeId, pkt: PacketRef },
    /// A per-endpoint timer fires. `gen` is the arming generation: the
    /// simulator drops the event unless it matches the endpoint's current
    /// generation for `kind`, which is how re-arming a timer cancels the
    /// previously scheduled firing.
    Timer { flow: FlowId, dir: Dir, kind: TimerKind, gen: u32 },
    /// A scheduled fault fires on `link`: `idx` indexes the simulator's
    /// installed fault-action table. Routed through the same wheel/heap as
    /// every other event, so faulted runs keep the exact `(time, seq)`
    /// total order that makes fixed-seed runs byte-identical.
    Fault { link: LinkId, idx: u32 },
    /// A telemetry sample tick: the simulator reads flow/queue state into
    /// the installed [`crate::record::Recorder`] and re-arms the tick.
    /// Scheduled only when a recorder is installed, and excluded from the
    /// processed-event counter so recorded runs report identical metrics.
    Sample,
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    /// Fire time in raw nanoseconds (shift-friendly for slot indexing).
    at: u64,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

const SLOTS: usize = 256;
const WORDS: usize = SLOTS / 64;
/// Level-0 slot width: 2^10 ns ≈ 1.02 µs (sub-serialization-time at 25G).
const L0_SHIFT: u32 = 10;
/// Level-1 slot width: 2^18 ns ≈ 262 µs.
const L1_SHIFT: u32 = L0_SHIFT + 8;
/// Level-2 slot width: 2^26 ns ≈ 67 ms.
const L2_SHIFT: u32 = L1_SHIFT + 8;
/// Events at or beyond 2^34 ns (≈17.2 s) past the current window overflow
/// into the heap.
const HORIZON_SHIFT: u32 = L2_SHIFT + 8;
/// `active0` sentinel: no slot is currently the sorted drain slot.
const NO_ACTIVE: usize = SLOTS;

/// One wheel level: 256 slots plus an occupancy bitmap.
#[derive(Debug)]
struct Level {
    slots: Vec<Vec<Scheduled>>,
    bitmap: [u64; WORDS],
    count: usize,
}

impl Level {
    fn new() -> Self {
        Level { slots: (0..SLOTS).map(|_| Vec::new()).collect(), bitmap: [0; WORDS], count: 0 }
    }

    #[inline]
    fn push(&mut self, idx: usize, s: Scheduled) {
        self.slots[idx].push(s);
        self.bitmap[idx >> 6] |= 1 << (idx & 63);
        self.count += 1;
    }

    #[inline]
    fn clear_bit(&mut self, idx: usize) {
        self.bitmap[idx >> 6] &= !(1 << (idx & 63));
    }

    /// Index of the first non-empty slot at or after `from`, if any.
    #[inline]
    fn first_set(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        let mut mask = !0u64 << (from & 63);
        while w < WORDS {
            let bits = self.bitmap[w] & mask;
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            w += 1;
            mask = !0;
        }
        None
    }
}

/// Where `prepare_min` located the next event.
enum MinSrc {
    Slot(usize),
    Heap,
}

/// A deterministic priority queue of [`Event`]s.
///
/// Pops events in `(time, insertion order)` order.
#[derive(Debug)]
pub struct EventQueue {
    l0: Level,
    l1: Level,
    l2: Level,
    overflow: BinaryHeap<Reverse<Scheduled>>,
    arena: PacketArena,
    /// Wheel position: the time of the last popped event (or the start of
    /// the window most recently cascaded down). Slot placement is relative
    /// to this; it never decreases.
    cur: u64,
    /// The level-0 slot currently sorted and being drained.
    active0: usize,
    next_seq: u64,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            l0: Level::new(),
            l1: Level::new(),
            l2: Level::new(),
            overflow: BinaryHeap::new(),
            arena: PacketArena::new(),
            cur: 0,
            active0: NO_ACTIVE,
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedule `ev` to fire at `at`.
    ///
    /// Times before the last popped event are treated as "now": the event
    /// fires as early as possible while keeping pops monotone.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, ev: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Scheduled { at: at.as_nanos(), seq, ev });
    }

    /// Park `pkt` in the arena and schedule its delivery at `node`.
    #[inline]
    pub fn schedule_deliver(&mut self, at: SimTime, node: NodeId, pkt: Packet) {
        let pkt = self.arena.alloc(pkt);
        self.schedule(at, Event::Deliver { node, pkt });
    }

    /// Retrieve (and release) the packet behind a popped `Deliver` event.
    #[inline]
    pub fn take_packet(&mut self, r: PacketRef) -> Packet {
        self.arena.take(r)
    }

    /// Read a parked packet without releasing it.
    pub fn packet(&self, r: PacketRef) -> &Packet {
        self.arena.get(r)
    }

    /// Packets currently parked in the arena (i.e. scheduled `Deliver`
    /// events not yet popped) — the "in flight" term of the checker's
    /// packet-conservation equation.
    pub fn packets_live(&self) -> usize {
        self.arena.live()
    }

    #[inline]
    fn insert(&mut self, s: Scheduled) {
        self.len += 1;
        // Slot placement clamps to the wheel position; the true fire time
        // stays in `s.at` and decides order within the slot.
        let t = s.at.max(self.cur);
        if t >> L1_SHIFT == self.cur >> L1_SHIFT {
            let idx = ((t >> L0_SHIFT) & 0xff) as usize;
            if idx == self.active0 {
                // The drain slot is kept sorted descending by (at, seq);
                // insert in place so pops stay in total order.
                let slot = &mut self.l0.slots[idx];
                let pos = slot.partition_point(|x| (x.at, x.seq) > (s.at, s.seq));
                slot.insert(pos, s);
                self.l0.bitmap[idx >> 6] |= 1 << (idx & 63);
                self.l0.count += 1;
            } else {
                self.l0.push(idx, s);
            }
        } else if t >> L2_SHIFT == self.cur >> L2_SHIFT {
            self.l1.push(((t >> L1_SHIFT) & 0xff) as usize, s);
        } else if t >> HORIZON_SHIFT == self.cur >> HORIZON_SHIFT {
            self.l2.push(((t >> L2_SHIFT) & 0xff) as usize, s);
        } else {
            self.overflow.push(Reverse(s));
        }
    }

    /// Locate the globally minimal `(at, seq)` event, cascading wheel
    /// levels down as needed. Does not remove anything.
    fn prepare_min(&mut self) -> Option<(u64, MinSrc)> {
        loop {
            if self.l0.count > 0 {
                let from = ((self.cur >> L0_SHIFT) & 0xff) as usize;
                let idx = self.l0.first_set(from).expect("l0 events precede wheel position");
                if self.active0 != idx {
                    self.l0.slots[idx].sort_unstable_by_key(|s| Reverse((s.at, s.seq)));
                    self.active0 = idx;
                }
                let s = *self.l0.slots[idx].last().expect("occupancy bit set on empty slot");
                if let Some(Reverse(top)) = self.overflow.peek() {
                    if (top.at, top.seq) < (s.at, s.seq) {
                        return Some((top.at, MinSrc::Heap));
                    }
                }
                return Some((s.at, MinSrc::Slot(idx)));
            }
            if self.l1.count > 0 {
                let from = ((self.cur >> L1_SHIFT) & 0xff) as usize;
                let o = self.l1.first_set(from).expect("l1 events precede wheel position");
                let start = (((self.cur >> L1_SHIFT) & !0xff) | o as u64) << L1_SHIFT;
                if let Some(Reverse(top)) = self.overflow.peek() {
                    if top.at < start {
                        return Some((top.at, MinSrc::Heap));
                    }
                }
                self.cur = self.cur.max(start);
                self.active0 = NO_ACTIVE;
                let mut evs = std::mem::take(&mut self.l1.slots[o]);
                self.l1.count -= evs.len();
                self.l1.clear_bit(o);
                for s in evs.drain(..) {
                    debug_assert!(s.at >= self.cur);
                    self.l0.push(((s.at >> L0_SHIFT) & 0xff) as usize, s);
                }
                self.l1.slots[o] = evs; // keep the allocation
                continue;
            }
            if self.l2.count > 0 {
                let from = ((self.cur >> L2_SHIFT) & 0xff) as usize;
                let o = self.l2.first_set(from).expect("l2 events precede wheel position");
                let start = (((self.cur >> L2_SHIFT) & !0xff) | o as u64) << L2_SHIFT;
                if let Some(Reverse(top)) = self.overflow.peek() {
                    if top.at < start {
                        return Some((top.at, MinSrc::Heap));
                    }
                }
                self.cur = self.cur.max(start);
                let mut evs = std::mem::take(&mut self.l2.slots[o]);
                self.l2.count -= evs.len();
                self.l2.clear_bit(o);
                for s in evs.drain(..) {
                    debug_assert!(s.at >= self.cur);
                    self.l1.push(((s.at >> L1_SHIFT) & 0xff) as usize, s);
                }
                self.l2.slots[o] = evs;
                continue;
            }
            return self.overflow.peek().map(|Reverse(top)| (top.at, MinSrc::Heap));
        }
    }

    /// Pop the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let (_, src) = self.prepare_min()?;
        let s = match src {
            MinSrc::Slot(idx) => {
                let slot = &mut self.l0.slots[idx];
                let s = slot.pop().expect("prepared slot drained");
                self.l0.count -= 1;
                if slot.is_empty() {
                    self.l0.clear_bit(idx);
                    self.active0 = NO_ACTIVE;
                }
                s
            }
            MinSrc::Heap => self.overflow.pop().expect("prepared heap drained").0,
        };
        self.len -= 1;
        self.cur = self.cur.max(s.at);
        Some((SimTime::from_nanos(s.at), s.ev))
    }

    /// Timestamp of the earliest pending event.
    ///
    /// Takes `&mut self` because locating the minimum may cascade wheel
    /// levels down (observable order is unchanged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.prepare_min().map(|(at, _)| SimTime::from_nanos(at))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(flow: u32) -> Event {
        Event::Timer { flow: FlowId(flow), dir: Dir::Sender, kind: TimerKind::Rto, gen: 0 }
    }

    fn flow_of(ev: Event) -> u32 {
        match ev {
            Event::Timer { flow, .. } => flow.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), timer(3));
        q.schedule(SimTime::from_nanos(10), timer(1));
        q.schedule(SimTime::from_nanos(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, timer(i));
        }
        let flows: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, ev)| flow_of(ev)).collect();
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(7), timer(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn orders_across_all_wheel_levels_and_overflow() {
        // One event per time scale: same l0 slot, later l0 slot, l1, l2,
        // and past the ~17 s horizon (overflow heap).
        let times =
            [40u64, 900, 90_000, 40_000_000, 2_000_000_000, 30_000_000_000, 500_000_000_000];
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().rev().enumerate() {
            q.schedule(SimTime::from_nanos(t), timer(i as u32));
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| q.pop()).map(|(t, _)| t.as_nanos()).collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(order, want);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        // Mimic the simulator: after each pop, schedule new events at or
        // after the popped time, across slot and level boundaries.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(0), timer(0));
        let offsets = [1u64, 700, 3_000, 300_000, 70_000_000, 1_000];
        let mut last = 0u64;
        let mut popped = 0usize;
        let mut scheduled = 1usize;
        while let Some((t, _)) = q.pop() {
            assert!(t.as_nanos() >= last, "pop went backwards: {last} then {t:?}");
            last = t.as_nanos();
            popped += 1;
            if scheduled < 200 {
                for &off in &offsets[..(popped % offsets.len()).max(1)] {
                    q.schedule(SimTime::from_nanos(last + off), timer(scheduled as u32));
                    scheduled += 1;
                }
            }
        }
        assert_eq!(popped, scheduled);
    }

    #[test]
    fn same_slot_insert_during_drain_keeps_insertion_order() {
        // Two events at time t; while draining (after the first pop), a
        // third lands at the same time — it must pop last (highest seq).
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        q.schedule(t, timer(0));
        q.schedule(t, timer(1));
        assert_eq!(flow_of(q.pop().unwrap().1), 0);
        q.schedule(t, timer(2));
        assert_eq!(flow_of(q.pop().unwrap().1), 1);
        assert_eq!(flow_of(q.pop().unwrap().1), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn deliver_events_round_trip_through_arena() {
        let mut q = EventQueue::new();
        let pkt = Packet::data(FlowId(7), NodeId(0), NodeId(1), 42, 1500, SimTime::ZERO);
        q.schedule_deliver(SimTime::from_nanos(10), NodeId(1), pkt);
        let (t, ev) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(10));
        let Event::Deliver { node, pkt: r } = ev else { panic!("expected Deliver") };
        assert_eq!(node, NodeId(1));
        let got = q.take_packet(r);
        assert_eq!(got.seq, 42);
        assert_eq!(got.flow, FlowId(7));
    }

    #[test]
    fn scheduled_elements_stay_compact() {
        // The whole point of the arena: wheel/heap elements are 32 bytes.
        assert!(std::mem::size_of::<Scheduled>() <= 32);
    }
}
