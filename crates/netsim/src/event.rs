//! The event heap.
//!
//! A single flat `enum` keeps dispatch in the simulator hot loop free of
//! virtual calls (a Rust-performance-book idiom). Events with equal
//! timestamps are ordered by an insertion sequence number so that the
//! schedule is a *total* order and every run is reproducible.

use crate::link::LinkId;
use crate::packet::{Dir, FlowId, NodeId, Packet};
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Kinds of per-flow timers. The protocol endpoints interpret these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Flow start (connection establishment is abstracted away).
    Start,
    /// Retransmission timeout.
    Rto,
    /// Pacing release: the endpoint may transmit more data now.
    Pace,
    /// Delayed-ACK timeout on the receiver.
    DelAck,
    /// Endpoint-defined auxiliary timer.
    Custom(u8),
}

/// A simulation event.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A link finished serializing a packet; its transmitter is free.
    LinkTxDone { link: LinkId },
    /// A packet arrives at `node` (after serialization + propagation).
    Deliver { node: NodeId, pkt: Packet },
    /// A per-endpoint timer fires.
    Timer { flow: FlowId, dir: Dir, kind: TimerKind },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic priority queue of [`Event`]s.
///
/// Pops events in `(time, insertion order)` order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(1024), next_seq: 0 }
    }

    /// Schedule `ev` to fire at `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, ev: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, ev }));
    }

    /// Pop the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(flow: u32) -> Event {
        Event::Timer { flow: FlowId(flow), dir: Dir::Sender, kind: TimerKind::Rto }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), timer(3));
        q.schedule(SimTime::from_nanos(10), timer(1));
        q.schedule(SimTime::from_nanos(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, timer(i));
        }
        let flows: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                Event::Timer { flow, .. } => flow.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(7), timer(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 1);
    }
}
