//! # elephants-netsim
//!
//! A deterministic, packet-level discrete-event network simulator.
//!
//! This crate is the substrate on which the `elephants` TCP-fairness study is
//! reproduced. It models:
//!
//! * **Time** as integer nanoseconds ([`SimTime`], [`SimDuration`]) — no
//!   floating-point clock drift, total event order is reproducible.
//! * **Packets** as small `Copy` header structs ([`Packet`]) — payload bytes
//!   are virtual, so the hot loop performs no per-packet heap allocation.
//! * **Links** with a serialization rate, propagation delay, and a pluggable
//!   queue discipline ([`Aqm`]) on their egress.
//! * **Nodes** — hosts that terminate flows and routers that forward packets
//!   via static route tables.
//! * **Flows** — protocol endpoints supplied by the caller through the
//!   [`FlowEndpoint`] trait (the `elephants-tcp` crate provides TCP senders
//!   and receivers).
//!
//! The engine is single-threaded by design; parallelism in the study comes
//! from running many independent simulations concurrently (see
//! `elephants-experiments`), which keeps every individual run bit-for-bit
//! deterministic for a given `(config, seed)` pair.
//!
//! ## Quick example
//!
//! ```
//! use elephants_netsim::prelude::*;
//!
//! // Build a two-host, two-router dumbbell with a 100 Mbps bottleneck.
//! let spec = DumbbellSpec {
//!     n_pairs: 1,
//!     bottleneck: LinkSpec::new(Bandwidth::from_mbps(100), SimDuration::from_millis(28)),
//!     access: LinkSpec::new(Bandwidth::from_gbps(25), SimDuration::from_millis(1)),
//!     leaf: LinkSpec::new(Bandwidth::from_gbps(25), SimDuration::from_millis(2)),
//! };
//! let topo = spec.build();
//! assert_eq!(topo.base_rtt(), SimDuration::from_millis(62));
//! ```

pub mod check;
pub mod event;
pub mod fault;
pub mod link;
pub mod packet;
pub mod prop;
pub mod queue;
pub mod record;
pub mod rng;
pub mod sim;
pub mod time;
pub mod topology;
pub mod units;

pub use check::{
    CheckFailure, CheckMode, CheckReport, Checker, Violation, MAX_STORED_VIOLATIONS,
    SABOTAGE_ENV, SABOTAGE_INVARIANT,
};
pub use event::{Event, EventQueue, TimerKind};
pub use fault::{DuplicateModel, FaultAction, FaultEvent, FaultPlan, LossModel, ReorderModel};
pub use link::{Link, LinkId, LinkSpec, LinkStats};
pub use packet::{AckInfo, Dir, FlowId, NodeId, Packet, PacketArena, PacketKind, PacketRef, SACK_MAX};
pub use queue::{queue_accounting_failure, Aqm, AqmStats, DequeueResult, DropTail, Verdict};
pub use record::{
    EventRing, FlowProbe, FlowSample, NullRecorder, QueueSample, Recorder, RecorderConfig,
    RecorderHandle, TraceEvent, TraceEventKind, TRACE_NO_FLOW,
};
pub use rng::{Rng, RngExt, SeedableRng, SmallRng};
pub use sim::{
    BottleneckReport, Ctx, EndpointReport, FlowEndpoint, LinkReport, RunSummary, SimConfig,
    Simulator, TimerToken,
};
pub use time::{SimDuration, SimTime};
pub use topology::{
    DumbbellSpec, ExplicitSpec, GroupDef, LinkDef, MultiDumbbellSpec, ParkingLotSpec, Topology,
    TopologySpec,
};
pub use units::{bdp_bytes, Bandwidth};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::check::{CheckFailure, CheckMode, CheckReport};
    pub use crate::event::TimerKind;
    pub use crate::fault::{DuplicateModel, FaultAction, FaultEvent, FaultPlan, LossModel, ReorderModel};
    pub use crate::link::{LinkId, LinkSpec};
    pub use crate::packet::{AckInfo, Dir, FlowId, NodeId, Packet, PacketKind};
    pub use crate::queue::{Aqm, DequeueResult, DropTail, Verdict};
    pub use crate::record::{FlowProbe, FlowSample, NullRecorder, QueueSample, Recorder, RecorderConfig};
    pub use crate::sim::{Ctx, FlowEndpoint, SimConfig, Simulator};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{DumbbellSpec, Topology, TopologySpec};
    pub use crate::units::{bdp_bytes, Bandwidth};
    pub use crate::rng::{Rng, RngExt, SeedableRng, SmallRng};
}
