//! Packet, flow and node identifiers.
//!
//! Packets are small `Copy` structs carrying headers only; payload bytes are
//! virtual (`size` is the on-wire size used for serialization and queue
//! accounting). Data packets are sequenced in **MSS units**: one `seq` is one
//! maximum-size segment, which keeps the sender scoreboard and the receiver
//! reorder buffer simple and allocation-free without changing the dynamics
//! the study measures.

use crate::time::SimTime;
use elephants_json::{
    impl_json_newtype, impl_json_struct, impl_json_unit_enum, FromJson, JsonError, ToJson, Value,
};

/// Identifier of a flow (an independent TCP connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// Identifier of a node (host or router) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl_json_newtype!(FlowId);
impl_json_newtype!(NodeId);

/// Which endpoint of a flow a packet or timer is addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// The data sender (runs the congestion controller).
    Sender,
    /// The data receiver (generates ACKs).
    Receiver,
}

impl_json_unit_enum!(Dir { Sender, Receiver });

/// Maximum number of SACK ranges carried in one ACK (mirrors the common
/// 3-block limit of a real TCP header with timestamps).
pub const SACK_MAX: usize = 3;

/// Selective-acknowledgment information carried by ACK packets.
///
/// `cum` is the next expected sequence number (everything below `cum` has
/// been received in order). `sacks[..n_sacks]` are half-open `[start, end)`
/// ranges received above `cum`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AckInfo {
    /// Cumulative ACK: next expected in-order sequence number.
    pub cum: u64,
    /// Out-of-order received ranges, half-open, most recent first.
    pub sacks: [(u64, u64); SACK_MAX],
    /// How many entries of `sacks` are valid.
    pub n_sacks: u8,
    /// ECN echo: the receiver saw a Congestion Experienced mark.
    pub ecn_echo: bool,
}

impl_json_struct!(AckInfo { cum, sacks, n_sacks, ecn_echo });

impl AckInfo {
    /// An ACK with only a cumulative component.
    pub fn cumulative(cum: u64) -> Self {
        AckInfo { cum, ..Default::default() }
    }

    /// Iterate over the valid SACK ranges.
    pub fn sack_ranges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.sacks.iter().copied().take(self.n_sacks as usize)
    }

    /// Whether `seq` is covered by the cumulative ACK or any SACK range.
    pub fn covers(&self, seq: u64) -> bool {
        seq < self.cum || self.sack_ranges().any(|(s, e)| seq >= s && seq < e)
    }
}

/// What kind of segment a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment of one MSS (identified by `Packet::seq`).
    Data,
    /// A pure acknowledgment.
    Ack(AckInfo),
}

impl ToJson for PacketKind {
    fn to_json(&self) -> Value {
        match self {
            PacketKind::Data => Value::Str("Data".to_string()),
            PacketKind::Ack(info) => Value::Object(vec![("Ack".to_string(), info.to_json())]),
        }
    }
}

impl FromJson for PacketKind {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) if s == "Data" => Ok(PacketKind::Data),
            Value::Object(_) => Ok(PacketKind::Ack(AckInfo::from_json(v.get_field("Ack")?)?)),
            other => Err(JsonError::new(format!(
                "expected PacketKind, got {}",
                other.kind_name()
            ))),
        }
    }
}

/// A packet on the wire. `Copy`, header-only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Origin node.
    pub src: NodeId,
    /// Destination node (used by routers for next-hop lookup).
    pub dst: NodeId,
    /// Sequence number in MSS units (data) or ACK serial number (acks).
    pub seq: u64,
    /// On-wire size in bytes, including headers.
    pub size: u32,
    /// Data or ACK.
    pub kind: PacketKind,
    /// Time the segment was (re)transmitted by the sender host.
    pub sent_at: SimTime,
    /// Time the packet entered the most recent queue (set by the AQM; used
    /// for sojourn-time disciplines like CoDel).
    pub enqueued_at: SimTime,
    /// Whether the sender negotiated ECN for this packet (ECT(0)).
    pub ecn_capable: bool,
    /// Congestion Experienced mark applied by an AQM.
    pub ecn_ce: bool,
    /// Whether this is a retransmission (diagnostic only).
    pub retx: bool,
}

impl_json_struct!(Packet {
    flow,
    src,
    dst,
    seq,
    size,
    kind,
    sent_at,
    enqueued_at,
    ecn_capable,
    ecn_ce,
    retx,
});

impl Packet {
    /// Construct a data segment.
    pub fn data(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, size: u32, now: SimTime) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq,
            size,
            kind: PacketKind::Data,
            sent_at: now,
            enqueued_at: now,
            ecn_capable: false,
            ecn_ce: false,
            retx: false,
        }
    }

    /// Construct a pure ACK.
    pub fn ack(flow: FlowId, src: NodeId, dst: NodeId, serial: u64, info: AckInfo, now: SimTime) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq: serial,
            size: ACK_SIZE,
            kind: PacketKind::Ack(info),
            sent_at: now,
            enqueued_at: now,
            ecn_capable: false,
            ecn_ce: false,
            retx: false,
        }
    }

    /// `true` for data segments.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data)
    }

    /// `true` for pure ACKs.
    #[inline]
    pub fn is_ack(&self) -> bool {
        matches!(self.kind, PacketKind::Ack(_))
    }
}

/// On-wire size of a pure ACK (bytes): IP + TCP headers with options.
pub const ACK_SIZE: u32 = 72;

/// Handle to a [`Packet`] parked in a [`PacketArena`].
///
/// In-flight packets (scheduled `Deliver` events) live in the arena and the
/// event queue carries only this 4-byte handle, keeping heap/wheel elements
/// small. A handle is valid until `take` is called on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

/// A free-list arena of in-flight packets.
///
/// `alloc` parks a packet and returns a [`PacketRef`]; `take` retrieves it
/// and recycles the slot. Steady-state simulation allocates nothing: the
/// slot vector grows to the peak number of concurrently in-flight packets
/// and is reused from then on. Each handle must be `take`n at most once —
/// the delivery path consumes every `Deliver` event exactly once.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Park `pkt`, returning its handle.
    #[inline]
    pub fn alloc(&mut self, pkt: Packet) -> PacketRef {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = pkt;
                PacketRef(i)
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(pkt);
                PacketRef(i)
            }
        }
    }

    /// Read a parked packet.
    #[inline]
    pub fn get(&self, r: PacketRef) -> &Packet {
        &self.slots[r.0 as usize]
    }

    /// Retrieve a parked packet and recycle its slot.
    #[inline]
    pub fn take(&mut self, r: PacketRef) -> Packet {
        self.live -= 1;
        self.free.push(r.0);
        self.slots[r.0 as usize]
    }

    /// Number of currently parked packets.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of concurrently parked packets (slot count).
    pub fn high_water(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ackinfo_covers() {
        let mut a = AckInfo::cumulative(10);
        a.sacks[0] = (15, 18);
        a.n_sacks = 1;
        assert!(a.covers(0));
        assert!(a.covers(9));
        assert!(!a.covers(10));
        assert!(!a.covers(14));
        assert!(a.covers(15));
        assert!(a.covers(17));
        assert!(!a.covers(18));
    }

    #[test]
    fn ackinfo_iterates_only_valid_ranges() {
        let mut a = AckInfo::cumulative(0);
        a.sacks = [(1, 2), (3, 4), (5, 6)];
        a.n_sacks = 2;
        let v: Vec<_> = a.sack_ranges().collect();
        assert_eq!(v, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn packet_constructors() {
        let now = SimTime::from_nanos(42);
        let d = Packet::data(FlowId(1), NodeId(0), NodeId(5), 7, 8900, now);
        assert!(d.is_data() && !d.is_ack());
        assert_eq!(d.size, 8900);
        assert_eq!(d.sent_at, now);

        let a = Packet::ack(FlowId(1), NodeId(5), NodeId(0), 3, AckInfo::cumulative(8), now);
        assert!(a.is_ack());
        assert_eq!(a.size, ACK_SIZE);
        match a.kind {
            PacketKind::Ack(info) => assert_eq!(info.cum, 8),
            _ => unreachable!(),
        }
    }

    #[test]
    fn packet_is_small_and_copy() {
        // Keep the hot-loop struct compact; the arena stores these inline.
        assert!(std::mem::size_of::<Packet>() <= 128);
        fn assert_copy<T: Copy>() {}
        assert_copy::<Packet>();
    }

    #[test]
    fn arena_recycles_slots() {
        let now = SimTime::ZERO;
        let mut arena = PacketArena::new();
        let a = arena.alloc(Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, 100, now));
        let b = arena.alloc(Packet::data(FlowId(0), NodeId(0), NodeId(1), 1, 100, now));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).seq, 0);
        assert_eq!(arena.take(a).seq, 0);
        assert_eq!(arena.live(), 1);
        // The freed slot is reused before the arena grows.
        let c = arena.alloc(Packet::data(FlowId(0), NodeId(0), NodeId(1), 2, 100, now));
        assert_eq!(arena.high_water(), 2);
        assert_eq!(arena.take(c).seq, 2);
        assert_eq!(arena.take(b).seq, 1);
        assert_eq!(arena.live(), 0);
    }
}
