//! Deterministic pseudo-randomness for the simulator.
//!
//! The workspace is hermetic (no external crates), so this module provides
//! the small slice of the `rand` API the study actually uses: a seedable
//! non-cryptographic generator ([`SmallRng`], xoshiro256++ seeded through
//! SplitMix64) and the [`Rng`]/[`RngExt`]/[`SeedableRng`] traits whose
//! names downstream code already imports via [`crate::prelude`].
//!
//! Determinism is the whole point: a `(config, seed)` pair must reproduce
//! a simulation bit-for-bit, on any host, forever. xoshiro256++ is a pure
//! integer recurrence with no platform-dependent behaviour, and every
//! derived sample (floats, ranges, Bernoulli draws) is defined exactly in
//! terms of `next_u64`, so outputs can never drift with a library upgrade.

/// SplitMix64 step — used to spread a 64-bit seed over the 256-bit state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core uniform-bits source.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of `next_u64`,
    /// which are the strongest bits of xoshiro256++).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// The workspace's default generator: xoshiro256++.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; the same
/// algorithm `rand`'s `SmallRng` used on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be drawn uniformly from a generator.
pub trait Sample: Sized {
    /// Draw one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24-bit resolution.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a uniform element of the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform draw in `[0, span)` via rejection sampling
/// (Lemire-style threshold on the plain modulo reduction).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Values above `zone` would make some residues appear once more than
    // others; reject and redraw (at most one extra draw in expectation).
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),+) => {
        $(
            impl SampleRange for std::ops::Range<$ty> {
                type Output = $ty;
                #[inline]
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty random_range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = uniform_below(rng, span);
                    (self.start as i128 + off as i128) as $ty
                }
            }
            impl SampleRange for std::ops::RangeInclusive<$ty> {
                type Output = $ty;
                #[inline]
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty random_range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Only reachable for the full u64/i64 domain.
                        return rng.next_u64() as $ty;
                    }
                    let off = uniform_below(rng, span as u64);
                    (start as i128 + off as i128) as $ty
                }
            }
        )+
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        let u: f64 = Sample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring the `rand` names downstream
/// code uses (`random`, `random_range`, `random_bool`).
pub trait RngExt: Rng {
    /// A uniform value of `T` (`rng.random::<f64>()` gives `[0, 1)`).
    #[inline]
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer ranges,
    /// half-open float ranges).
    #[inline]
    fn random_range<Rge: SampleRange>(&mut self, range: Rge) -> Rge::Output {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256pp() {
        // State {1,2,3,4}: first outputs of the canonical C implementation.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expect: [u64; 5] =
            [41943041, 58720359, 3588806011781223, 3591011842654386, 9228616714210784205];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_state_is_nonzero() {
        // xoshiro's all-zero state is a fixed point; SplitMix64 must avoid it.
        let rng = SmallRng::seed_from_u64(0);
        assert_ne!(rng.s, [0, 0, 0, 0]);
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_covers_and_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(5u64..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        for _ in 0..1000 {
            let v = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
        let f = rng.random_range(2.0..3.0);
        assert!((2.0..3.0).contains(&f));
    }

    #[test]
    fn range_sampling_is_unbiased_across_modulus() {
        // A span that does not divide 2^64: frequencies must stay flat.
        let mut rng = SmallRng::seed_from_u64(3);
        let span = 3u64;
        let n = 90_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[rng.random_range(0..span) as usize] += 1;
        }
        for c in counts {
            let dev = (c as f64 - n as f64 / 3.0).abs() / (n as f64 / 3.0);
            assert!(dev < 0.03, "count {c} deviates {dev}");
        }
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
