//! Runtime invariant checking (`elephants-check`).
//!
//! The simulator's results are quantitative: a silent accounting bug in the
//! scoreboard, a queue, or a CCA shifts Jain's index without failing any
//! test. This module makes such drift loud. A [`Checker`] rides the event
//! loop as an optional hook — off by default and zero-cost when disabled
//! (one `Option` branch per event, the same discipline as the flight
//! recorder) — and enforces, per event and at finalize:
//!
//! * **Packet conservation** — every packet injected by a host (plus every
//!   duplicate copy a fault model created) is, at finalize, exactly one of:
//!   delivered to a host, dropped (AQM, down link, fault loss), resident in
//!   a queue, or parked in the arena awaiting delivery.
//! * **Scoreboard conservation** — via [`crate::sim::FlowEndpoint::check_invariants`],
//!   which TCP senders implement over their SACK scoreboard.
//! * **CCA sanity** — delegated through the same endpoint hook (cwnd floor,
//!   gain-cycle bounds, filter monotonicity).
//! * **AQM byte/packet accounting** — via [`crate::queue::Aqm::check_invariants`]:
//!   `enqueued == dequeued + dropped_dequeue + resident` per queue, plus
//!   discipline-specific control-law bounds.
//! * **Time monotonicity** — event timestamps never decrease across the
//!   timer wheel, including level spillover and cancelled-timer lazy pops.
//!
//! Violations become structured [`Violation`]s inside a [`CheckReport`]
//! (serializable through `elephants-json`). In [`CheckMode::Strict`] the
//! first violation panics with the full context; in [`CheckMode::Audit`]
//! violations are counted and the bounded report is surfaced to the caller.

use crate::time::SimTime;
use elephants_json::{impl_json_struct, impl_json_unit_enum};

/// How much invariant checking a run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// No checking; the hot loop pays one untaken branch per event.
    #[default]
    Off,
    /// Check every invariant; count violations into a [`CheckReport`].
    Audit,
    /// Check every invariant; panic on the first violation.
    Strict,
}

impl_json_unit_enum!(CheckMode { Off, Audit, Strict });

impl std::str::FromStr for CheckMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(CheckMode::Off),
            "audit" => Ok(CheckMode::Audit),
            "strict" => Ok(CheckMode::Strict),
            other => Err(format!("unknown check mode '{other}' (expected off, audit, strict)")),
        }
    }
}

/// One failed invariant, as reported by a component probe.
///
/// Component hooks ([`crate::queue::Aqm::check_invariants`],
/// [`crate::sim::FlowEndpoint::check_invariants`]) return a
/// `Vec<CheckFailure>`; the empty vector — the overwhelmingly common case —
/// never allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckFailure {
    /// Stable invariant name (e.g. `"scoreboard_conservation"`).
    pub invariant: &'static str,
    /// Human-readable detail: the numbers that failed to balance.
    pub detail: String,
}

impl CheckFailure {
    /// Construct a failure.
    pub fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        CheckFailure { invariant, detail: detail.into() }
    }
}

/// One recorded invariant violation, with full event context.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable invariant name.
    pub invariant: String,
    /// Flow the violation is attributed to, if any.
    pub flow: Option<u64>,
    /// Link/queue the violation is attributed to, if any.
    pub link: Option<u64>,
    /// Processed-event sequence number at detection time.
    pub event_seq: u64,
    /// Simulated time at detection.
    pub t: SimTime,
    /// The numbers that failed to balance.
    pub detail: String,
}

impl_json_struct!(Violation { invariant, flow, link, event_seq, t, detail });

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {} (event {})", self.invariant, self.t, self.event_seq)?;
        if let Some(flow) = self.flow {
            write!(f, " flow {flow}")?;
        }
        if let Some(link) = self.link {
            write!(f, " link {link}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// At most this many violations are stored verbatim (keep-first, like the
/// event-trace ring); the total count keeps rising past the cap.
pub const MAX_STORED_VIOLATIONS: usize = 64;

/// The structured outcome of a checked run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckReport {
    /// Mode the run was checked under.
    pub mode: CheckMode,
    /// Events that went through the per-event checks.
    pub events_checked: u64,
    /// Total violations detected (may exceed `violations.len()`).
    pub violations_total: u64,
    /// The first [`MAX_STORED_VIOLATIONS`] violations, in detection order.
    pub violations: Vec<Violation>,
}

impl_json_struct!(CheckReport { mode, events_checked, violations_total, violations });

impl CheckReport {
    /// Whether the run was clean.
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0
    }

    /// One-line summary for CLI output.
    pub fn summary_line(&self) -> String {
        format!(
            "mode={:?} events_checked={} violations={}",
            self.mode, self.events_checked, self.violations_total
        )
    }
}

/// Name of the deliberately-injected mutation-test violation (see
/// [`sabotage_threshold`]). The chaos harness's mutation test greps for it.
pub const SABOTAGE_INVARIANT: &str = "sabotage_conservation";

/// Environment variable enabling the mutation-test sabotage hook.
pub const SABOTAGE_ENV: &str = "ELEPHANTS_CHECK_SABOTAGE";

/// Mutation-test hook: when `ELEPHANTS_CHECK_SABOTAGE` is set to a packet
/// count `N`, every checker built afterwards reports a fake
/// [`SABOTAGE_INVARIANT`] violation at finalize whenever the run delivered
/// at least `N` packets to host endpoints.
///
/// This exists for exactly one purpose: proving that the chaos harness's
/// oracle stack *detects* invariant violations and that its shrinker
/// minimizes the triggering case deterministically (the failure depends
/// monotonically on run size, so shrinking has real work to do). The hook
/// is inert unless the variable is set — production runs and the ordinary
/// test suite never pay more than one env lookup per checker construction.
fn sabotage_threshold() -> Option<u64> {
    std::env::var(SABOTAGE_ENV).ok()?.parse().ok()
}

/// The runtime checker the simulator drives.
///
/// Owns the conservation counters and the accumulating report. Installed
/// into the simulator behind an `Option`, so a run without checking pays
/// one predictable branch per event.
#[derive(Debug)]
pub struct Checker {
    mode: CheckMode,
    /// Timestamp of the previous event (monotonicity witness).
    last_event_at: SimTime,
    /// Packets emitted by host endpoints and accepted onto a first link.
    injected: u64,
    /// Packets delivered to a host endpoint.
    delivered: u64,
    /// Mutation-test hook: deliver-count threshold past which a fake
    /// violation is reported (see [`sabotage_threshold`]; `None` always).
    sabotage: Option<u64>,
    report: CheckReport,
}

impl Checker {
    /// A checker in `mode` (which must not be `Off`).
    pub fn new(mode: CheckMode) -> Self {
        assert!(mode != CheckMode::Off, "a Checker is only built for Audit or Strict");
        Checker {
            mode,
            last_event_at: SimTime::ZERO,
            injected: 0,
            delivered: 0,
            sabotage: sabotage_threshold(),
            report: CheckReport { mode, ..CheckReport::default() },
        }
    }

    /// Test-only constructor arming the sabotage hook directly, so the
    /// unit test below needs no process-global environment mutation (the
    /// env-gated path is exercised end-to-end by the chaos crate's
    /// mutation test, which owns its whole test process).
    #[cfg(test)]
    fn sabotaged(mode: CheckMode, threshold: u64) -> Self {
        Checker { sabotage: Some(threshold), ..Checker::new(mode) }
    }

    /// The mode this checker runs in.
    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// Count a host-emitted packet accepted onto its first link.
    #[inline]
    pub fn note_injected(&mut self) {
        self.injected += 1;
    }

    /// Count a packet delivered to a host endpoint.
    #[inline]
    pub fn note_delivered(&mut self) {
        self.delivered += 1;
    }

    /// Packets injected so far (test hook).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Packets delivered so far (test hook).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Per-event preamble: time monotonicity across the wheel (including
    /// level spillover and cancelled-timer lazy pops, which still pop in
    /// `(time, seq)` order) and the checked-event counter.
    #[inline]
    pub fn on_event(&mut self, at: SimTime, event_seq: u64) {
        self.report.events_checked += 1;
        if at < self.last_event_at {
            let last = self.last_event_at;
            self.fail(
                CheckFailure::new(
                    "time_monotonicity",
                    format!("event at {at} popped after {last}"),
                ),
                None,
                None,
                event_seq,
                at,
            );
        }
        self.last_event_at = at;
    }

    /// Record one failure (panic in strict mode).
    pub fn fail(
        &mut self,
        failure: CheckFailure,
        flow: Option<u64>,
        link: Option<u64>,
        event_seq: u64,
        t: SimTime,
    ) {
        let v = Violation {
            invariant: failure.invariant.to_string(),
            flow,
            link,
            event_seq,
            t,
            detail: failure.detail,
        };
        if self.mode == CheckMode::Strict {
            panic!("invariant violated: {v}");
        }
        self.report.violations_total += 1;
        if self.report.violations.len() < MAX_STORED_VIOLATIONS {
            self.report.violations.push(v);
        }
    }

    /// Record a batch of component failures against one flow/link.
    pub fn record(
        &mut self,
        failures: Vec<CheckFailure>,
        flow: Option<u64>,
        link: Option<u64>,
        event_seq: u64,
        t: SimTime,
    ) {
        for f in failures {
            self.fail(f, flow, link, event_seq, t);
        }
    }

    /// Finalize-time global packet conservation:
    ///
    /// `injected + duplicated == delivered + dropped + resident + in_flight`
    ///
    /// where `dropped` sums every terminal drop class over all links,
    /// `resident` sums queue backlogs, and `in_flight` is the arena's live
    /// count (packets whose `Deliver` event is still pending).
    #[allow(clippy::too_many_arguments)]
    pub fn check_packet_conservation(
        &mut self,
        duplicated: u64,
        dropped: u64,
        resident: u64,
        in_flight: u64,
        event_seq: u64,
        t: SimTime,
    ) {
        if let Some(n) = self.sabotage {
            if self.delivered >= n {
                let delivered = self.delivered;
                self.fail(
                    CheckFailure::new(
                        SABOTAGE_INVARIANT,
                        format!(
                            "mutation-test sabotage: delivered {delivered} >= \
                             threshold {n} ({SABOTAGE_ENV} is set)"
                        ),
                    ),
                    None,
                    None,
                    event_seq,
                    t,
                );
            }
        }
        let created = self.injected + duplicated;
        let accounted = self.delivered + dropped + resident + in_flight;
        if created != accounted {
            let (injected, delivered) = (self.injected, self.delivered);
            self.fail(
                CheckFailure::new(
                    "packet_conservation",
                    format!(
                        "injected {injected} + duplicated {duplicated} != \
                         delivered {delivered} + dropped {dropped} + \
                         resident {resident} + in_flight {in_flight}"
                    ),
                ),
                None,
                None,
                event_seq,
                t,
            );
        }
    }

    /// Consume the checker into its report.
    pub fn into_report(self) -> CheckReport {
        self.report
    }

    /// The report so far.
    pub fn report(&self) -> &CheckReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_json::{FromJson, ToJson};

    #[test]
    fn mode_parses_and_round_trips() {
        assert_eq!("strict".parse::<CheckMode>().unwrap(), CheckMode::Strict);
        assert_eq!("AUDIT".parse::<CheckMode>().unwrap(), CheckMode::Audit);
        assert_eq!("off".parse::<CheckMode>().unwrap(), CheckMode::Off);
        assert!("loose".parse::<CheckMode>().is_err());
    }

    #[test]
    fn audit_counts_instead_of_panicking() {
        let mut ck = Checker::new(CheckMode::Audit);
        ck.fail(CheckFailure::new("test_invariant", "a != b"), Some(3), None, 17, SimTime::ZERO);
        assert_eq!(ck.report().violations_total, 1);
        let v = &ck.report().violations[0];
        assert_eq!(v.invariant, "test_invariant");
        assert_eq!(v.flow, Some(3));
        assert_eq!(v.link, None);
        assert_eq!(v.event_seq, 17);
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn strict_panics_on_first_violation() {
        let mut ck = Checker::new(CheckMode::Strict);
        ck.fail(CheckFailure::new("test_invariant", "boom"), None, Some(1), 1, SimTime::ZERO);
    }

    #[test]
    fn stored_violations_are_bounded_but_counted() {
        let mut ck = Checker::new(CheckMode::Audit);
        for i in 0..(MAX_STORED_VIOLATIONS as u64 + 10) {
            ck.fail(CheckFailure::new("x", "y"), None, None, i, SimTime::ZERO);
        }
        let r = ck.report();
        assert_eq!(r.violations.len(), MAX_STORED_VIOLATIONS);
        assert_eq!(r.violations_total, MAX_STORED_VIOLATIONS as u64 + 10);
    }

    #[test]
    fn time_monotonicity_flags_regressions_only() {
        let mut ck = Checker::new(CheckMode::Audit);
        ck.on_event(SimTime::from_nanos(10), 1);
        ck.on_event(SimTime::from_nanos(10), 2); // equal is fine
        ck.on_event(SimTime::from_nanos(20), 3);
        assert!(ck.report().is_clean());
        ck.on_event(SimTime::from_nanos(5), 4);
        assert_eq!(ck.report().violations_total, 1);
        assert_eq!(ck.report().violations[0].invariant, "time_monotonicity");
    }

    #[test]
    fn packet_conservation_balances() {
        let mut ck = Checker::new(CheckMode::Audit);
        for _ in 0..10 {
            ck.note_injected();
        }
        for _ in 0..6 {
            ck.note_delivered();
        }
        // 10 injected + 1 dup = 6 delivered + 2 dropped + 2 resident + 1 in flight.
        ck.check_packet_conservation(1, 2, 2, 1, 100, SimTime::ZERO);
        assert!(ck.report().is_clean());
        ck.check_packet_conservation(0, 2, 2, 1, 101, SimTime::ZERO);
        assert_eq!(ck.report().violations_total, 1);
        assert_eq!(ck.report().violations[0].invariant, "packet_conservation");
    }

    #[test]
    fn sabotage_hook_fires_only_at_or_past_the_threshold() {
        let mut ck = Checker::sabotaged(CheckMode::Audit, 5);
        for _ in 0..5 {
            ck.note_injected();
        }
        for _ in 0..4 {
            ck.note_delivered();
        }
        // 5 injected = 4 delivered + 1 in flight; below threshold: clean.
        ck.check_packet_conservation(0, 0, 0, 1, 10, SimTime::ZERO);
        assert!(ck.report().is_clean(), "{:?}", ck.report().violations);
        ck.note_delivered();
        ck.check_packet_conservation(0, 0, 0, 0, 11, SimTime::ZERO);
        assert_eq!(ck.report().violations_total, 1);
        assert_eq!(ck.report().violations[0].invariant, SABOTAGE_INVARIANT);
    }

    #[test]
    fn unarmed_checker_ignores_the_sabotage_invariant() {
        // The ordinary constructor in a clean environment: a perfectly
        // balanced run past any plausible threshold stays clean.
        let mut ck = Checker::new(CheckMode::Audit);
        assert!(
            ck.sabotage.is_none() || std::env::var(SABOTAGE_ENV).is_ok(),
            "sabotage must only arm via the environment hook"
        );
        ck.sabotage = None;
        for _ in 0..100 {
            ck.note_injected();
            ck.note_delivered();
        }
        ck.check_packet_conservation(0, 0, 0, 0, 1, SimTime::ZERO);
        assert!(ck.report().is_clean());
    }

    #[test]
    fn report_serializes_and_parses_back() {
        let mut ck = Checker::new(CheckMode::Audit);
        ck.on_event(SimTime::from_nanos(7), 1);
        ck.fail(
            CheckFailure::new("queue_accounting", "1 != 2"),
            None,
            Some(4),
            2,
            SimTime::from_nanos(7),
        );
        let report = ck.into_report();
        let json = report.to_json_string();
        let back = CheckReport::from_json_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(json.contains("queue_accounting"), "{json}");
    }
}
