//! The queue-discipline (AQM) interface and the basic droptail queue.
//!
//! Concrete disciplines — RED, CoDel, FQ-CoDel — live in the
//! `elephants-aqm` crate; the trait lives here so that [`crate::link::Link`]
//! can own a `Box<dyn Aqm>` without a dependency cycle.

use crate::check::CheckFailure;
use crate::packet::Packet;
use crate::time::SimTime;
use crate::rng::SmallRng;
use std::collections::VecDeque;

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Packet accepted.
    Enqueued,
    /// Packet accepted and ECN-marked (Congestion Experienced).
    Marked,
    /// Packet dropped.
    Dropped,
}

/// Outcome of a dequeue attempt.
///
/// Disciplines like CoDel drop *at dequeue time*; `dropped` reports how many
/// packets were discarded while finding `pkt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DequeueResult {
    /// The packet to transmit next, if the queue is non-empty.
    pub pkt: Option<Packet>,
    /// Packets dropped during this dequeue operation.
    pub dropped: u32,
}

impl DequeueResult {
    /// An empty result (queue empty, nothing dropped).
    pub const EMPTY: DequeueResult = DequeueResult { pkt: None, dropped: 0 };
}

/// Aggregate counters every discipline maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AqmStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped on enqueue (taildrop / RED early drop / overflow).
    pub dropped_enqueue: u64,
    /// Packets dropped at dequeue (CoDel-style).
    pub dropped_dequeue: u64,
    /// Packets ECN-marked instead of dropped.
    pub marked: u64,
    /// Packets handed to the link for transmission.
    pub dequeued: u64,
}

impl AqmStats {
    /// Total packets dropped by the discipline.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_enqueue + self.dropped_dequeue
    }
}

/// The O(1) accounting balance every discipline must satisfy: each packet
/// accepted is eventually dequeued, dropped at dequeue, or still resident.
/// Returns `None` when the books balance.
pub fn queue_accounting_failure(s: AqmStats, resident_pkts: u64) -> Option<CheckFailure> {
    if s.enqueued != s.dequeued + s.dropped_dequeue + resident_pkts {
        let (e, d, dd) = (s.enqueued, s.dequeued, s.dropped_dequeue);
        Some(CheckFailure::new(
            "queue_accounting",
            format!(
                "enqueued {e} != dequeued {d} + dropped_dequeue {dd} + resident {resident_pkts}"
            ),
        ))
    } else {
        None
    }
}

/// A queue discipline on a link's egress.
///
/// Implementations must be deterministic given the same call sequence and
/// RNG state; all randomness must come from the supplied `SmallRng`.
pub trait Aqm: Send {
    /// Offer `pkt` to the queue at time `now`.
    fn enqueue(&mut self, pkt: Packet, now: SimTime, rng: &mut SmallRng) -> Verdict;

    /// Remove the next packet to transmit at time `now`.
    fn dequeue(&mut self, now: SimTime, rng: &mut SmallRng) -> DequeueResult;

    /// Bytes currently queued.
    fn backlog_bytes(&self) -> u64;

    /// Packets currently queued.
    fn backlog_pkts(&self) -> usize;

    /// Counters.
    fn stats(&self) -> AqmStats;

    /// Discipline name for reports (e.g. `"fifo"`, `"red"`, `"fq_codel"`).
    fn name(&self) -> &'static str;

    /// The discipline's internal control variable, for telemetry: RED
    /// reports its average queue (bytes), PIE its drop probability.
    /// Disciplines whose drop law has no single scalar (FIFO, CoDel's
    /// interval state machine) return `None` — the default.
    fn control_state(&self) -> Option<f64> {
        None
    }

    /// Invariant probe for the strict-mode checker. Read-only — must not
    /// mutate state or draw randomness. The default enforces the O(1)
    /// packet-accounting balance ([`queue_accounting_failure`]);
    /// disciplines add their own control-law bounds (RED's average within
    /// `[0, limit]`, PIE's probability in `[0, 1]`, CoDel sojourn stamps
    /// not in the future). `deep` enables O(n) scans (per-packet byte
    /// sums) that are affordable only at finalize.
    fn check_invariants(&self, _now: SimTime, _deep: bool) -> Vec<CheckFailure> {
        match queue_accounting_failure(self.stats(), self.backlog_pkts() as u64) {
            Some(f) => vec![f],
            None => Vec::new(),
        }
    }
}

/// Plain droptail FIFO with a byte limit (`pfifo`/`bfifo` semantics).
///
/// This is both the paper's "FIFO" AQM and the default queue on
/// non-bottleneck links.
#[derive(Debug)]
pub struct DropTail {
    queue: VecDeque<Packet>,
    limit_bytes: u64,
    backlog: u64,
    stats: AqmStats,
}

impl DropTail {
    /// A droptail queue holding at most `limit_bytes` of packets.
    pub fn new(limit_bytes: u64) -> Self {
        assert!(limit_bytes > 0, "droptail limit must be positive");
        DropTail { queue: VecDeque::new(), limit_bytes, backlog: 0, stats: AqmStats::default() }
    }

    /// The configured byte limit.
    pub fn limit_bytes(&self) -> u64 {
        self.limit_bytes
    }
}

impl Aqm for DropTail {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime, _rng: &mut SmallRng) -> Verdict {
        if self.backlog + pkt.size as u64 > self.limit_bytes {
            self.stats.dropped_enqueue += 1;
            return Verdict::Dropped;
        }
        pkt.enqueued_at = now;
        self.backlog += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued += 1;
        Verdict::Enqueued
    }

    fn dequeue(&mut self, _now: SimTime, _rng: &mut SmallRng) -> DequeueResult {
        match self.queue.pop_front() {
            Some(pkt) => {
                self.backlog -= pkt.size as u64;
                self.stats.dequeued += 1;
                DequeueResult { pkt: Some(pkt), dropped: 0 }
            }
            None => DequeueResult::EMPTY,
        }
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn backlog_pkts(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> AqmStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "fifo"
    }

    fn check_invariants(&self, now: SimTime, deep: bool) -> Vec<CheckFailure> {
        let mut fails = Vec::new();
        if let Some(f) = queue_accounting_failure(self.stats, self.queue.len() as u64) {
            fails.push(f);
        }
        if deep {
            let sum: u64 = self.queue.iter().map(|p| p.size as u64).sum();
            if sum != self.backlog {
                let backlog = self.backlog;
                fails.push(CheckFailure::new(
                    "queue_byte_accounting",
                    format!("backlog counter {backlog} != sum of resident sizes {sum}"),
                ));
            }
            if let Some(p) = self.queue.iter().find(|p| p.enqueued_at > now) {
                let at = p.enqueued_at;
                fails.push(CheckFailure::new(
                    "queue_sojourn",
                    format!("resident packet enqueued in the future ({at} > {now})"),
                ));
            }
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId};
    use crate::rng::SeedableRng;

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet::data(FlowId(0), NodeId(0), NodeId(1), seq, size, SimTime::ZERO)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTail::new(1_000_000);
        let mut r = rng();
        for i in 0..5 {
            assert_eq!(q.enqueue(pkt(i, 100), SimTime::ZERO, &mut r), Verdict::Enqueued);
        }
        for i in 0..5 {
            let got = q.dequeue(SimTime::ZERO, &mut r).pkt.unwrap();
            assert_eq!(got.seq, i);
        }
        assert!(q.dequeue(SimTime::ZERO, &mut r).pkt.is_none());
    }

    #[test]
    fn drops_when_full() {
        let mut q = DropTail::new(250);
        let mut r = rng();
        assert_eq!(q.enqueue(pkt(0, 100), SimTime::ZERO, &mut r), Verdict::Enqueued);
        assert_eq!(q.enqueue(pkt(1, 100), SimTime::ZERO, &mut r), Verdict::Enqueued);
        // Third packet would exceed 250 bytes.
        assert_eq!(q.enqueue(pkt(2, 100), SimTime::ZERO, &mut r), Verdict::Dropped);
        assert_eq!(q.stats().dropped_enqueue, 1);
        assert_eq!(q.backlog_bytes(), 200);
        assert_eq!(q.backlog_pkts(), 2);
    }

    #[test]
    fn backlog_accounting_exact() {
        let mut q = DropTail::new(10_000);
        let mut r = rng();
        q.enqueue(pkt(0, 1500), SimTime::ZERO, &mut r);
        q.enqueue(pkt(1, 72), SimTime::ZERO, &mut r);
        assert_eq!(q.backlog_bytes(), 1572);
        q.dequeue(SimTime::ZERO, &mut r);
        assert_eq!(q.backlog_bytes(), 72);
        q.dequeue(SimTime::ZERO, &mut r);
        assert_eq!(q.backlog_bytes(), 0);
    }

    #[test]
    fn enqueue_stamps_time() {
        let mut q = DropTail::new(10_000);
        let mut r = rng();
        let t = SimTime::from_nanos(999);
        q.enqueue(pkt(0, 100), t, &mut r);
        let got = q.dequeue(t, &mut r).pkt.unwrap();
        assert_eq!(got.enqueued_at, t);
    }
}
