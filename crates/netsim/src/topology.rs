//! Topologies: nodes, static routing, and the paper's dumbbell builder.
//!
//! The study's network (paper Fig. 1) is a dumbbell: sender hosts at Clemson,
//! router 1 (WASH), router 2 (NCSA), receiver hosts at TACC, with the
//! bottleneck — rate limit, queue length, AQM — configured on the
//! router 1 → router 2 interface, and a measured RTT of 62 ms.

use crate::link::{Link, LinkId, LinkSpec};
use crate::packet::NodeId;
use crate::queue::Aqm;
use crate::time::SimDuration;
use elephants_json::{impl_json_struct, impl_json_unit_enum};

/// What role a node plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Terminates flows (runs protocol endpoints).
    Host,
    /// Forwards packets by static routes.
    Router,
}

impl_json_unit_enum!(NodeKind { Host, Router });

/// A static-routed network: links plus per-node next-hop tables.
pub struct Topology {
    kinds: Vec<NodeKind>,
    links: Vec<Link>,
    /// `routes[node][dst]` = outgoing link towards `dst`.
    routes: Vec<Vec<Option<LinkId>>>,
    sender_hosts: Vec<NodeId>,
    receiver_hosts: Vec<NodeId>,
    bottleneck: Option<LinkId>,
    rtt: SimDuration,
}

impl Topology {
    /// Create an empty topology with `n` nodes of the given kinds.
    pub fn new(kinds: Vec<NodeKind>) -> Self {
        let n = kinds.len();
        Topology {
            kinds,
            links: Vec::new(),
            routes: vec![vec![None; n]; n],
            sender_hosts: Vec::new(),
            receiver_hosts: Vec::new(),
            bottleneck: None,
            rtt: SimDuration::ZERO,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0 as usize]
    }

    /// Add a link and return its id. Routing entries are added separately.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, spec: LinkSpec, aqm: Box<dyn Aqm>) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, src, dst, spec, aqm));
        id
    }

    /// Add a link with a large droptail queue (non-bottleneck default).
    pub fn add_link_big_fifo(&mut self, src: NodeId, dst: NodeId, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::with_big_fifo(id, src, dst, spec));
        id
    }

    /// Install a route: packets at `node` destined to `dst` leave via `link`.
    pub fn set_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        debug_assert_eq!(self.links[link.0 as usize].src, node, "route link must originate at node");
        self.routes[node.0 as usize][dst.0 as usize] = Some(link);
    }

    /// Next-hop link for a packet at `node` heading to `dst`.
    #[inline]
    pub fn route(&self, node: NodeId, dst: NodeId) -> Option<LinkId> {
        self.routes[node.0 as usize][dst.0 as usize]
    }

    /// Mutable access to a link.
    #[inline]
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// Shared access to a link.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The designated bottleneck link (set by the dumbbell builder).
    pub fn bottleneck_link(&self) -> Option<LinkId> {
        self.bottleneck
    }

    /// Replace the queue discipline on the bottleneck link.
    pub fn set_bottleneck_aqm(&mut self, aqm: Box<dyn Aqm>) {
        let id = self.bottleneck.expect("topology has no designated bottleneck");
        self.links[id.0 as usize].aqm = aqm;
    }

    /// Sender-side host nodes (traffic sources).
    pub fn sender_hosts(&self) -> &[NodeId] {
        &self.sender_hosts
    }

    /// Receiver-side host nodes (traffic sinks).
    pub fn receiver_hosts(&self) -> &[NodeId] {
        &self.receiver_hosts
    }

    /// The designed round-trip propagation + minimum path time between a
    /// sender host and its receiver host.
    pub fn rtt(&self) -> SimDuration {
        self.rtt
    }
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field("nodes", &self.kinds.len())
            .field("links", &self.links.len())
            .field("senders", &self.sender_hosts)
            .field("receivers", &self.receiver_hosts)
            .field("bottleneck", &self.bottleneck)
            .finish()
    }
}

/// Builder for the paper's dumbbell (Fig. 1).
///
/// `n_pairs` sender hosts connect through router 1 → router 2 to `n_pairs`
/// receiver hosts. Propagation delays of access (sender↔router1), bottleneck
/// (router1↔router2) and leaf (router2↔receiver) links sum to half the RTT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumbbellSpec {
    /// Number of sender/receiver host pairs (the paper uses 2).
    pub n_pairs: usize,
    /// Router1 → router2 link (rate = bottleneck BW under test).
    pub bottleneck: LinkSpec,
    /// Sender host ↔ router1 links (25 GbE NICs in the paper).
    pub access: LinkSpec,
    /// Router2 ↔ receiver host links.
    pub leaf: LinkSpec,
}

impl_json_struct!(DumbbellSpec { n_pairs, bottleneck, access, leaf });

impl DumbbellSpec {
    /// The paper's topology: 2 host pairs, 25 Gbps access/leaf NICs, and a
    /// bottleneck of `bw` shaped on router 1, with one-way delays
    /// 1 + 28 + 2 ms so the end-to-end RTT is 62 ms.
    pub fn paper(bw: crate::units::Bandwidth) -> Self {
        Self::paper_with_rtt(bw, SimDuration::from_millis(62))
    }

    /// The paper's topology with a custom end-to-end RTT (the paper's
    /// future-work "different RTTs" extension). Access/leaf one-way delays
    /// keep the paper's 1 + 2 ms; the trunk absorbs the rest.
    pub fn paper_with_rtt(bw: crate::units::Bandwidth, rtt: SimDuration) -> Self {
        let edge = SimDuration::from_millis(3); // 1 ms access + 2 ms leaf, one way
        assert!(
            rtt > edge * 2,
            "RTT must exceed the 6 ms the access/leaf links contribute"
        );
        let trunk_one_way = (rtt / 2).saturating_sub(edge);
        DumbbellSpec {
            n_pairs: 2,
            bottleneck: LinkSpec::new(bw, trunk_one_way),
            access: LinkSpec::new(crate::units::Bandwidth::from_gbps(25), SimDuration::from_millis(1)),
            leaf: LinkSpec::new(crate::units::Bandwidth::from_gbps(25), SimDuration::from_millis(2)),
        }
    }

    /// Node id of sender host `i`.
    pub fn sender(&self, i: usize) -> NodeId {
        assert!(i < self.n_pairs);
        NodeId(i as u32)
    }

    /// Node id of router 1 (owns the bottleneck egress queue).
    pub fn router1(&self) -> NodeId {
        NodeId(self.n_pairs as u32)
    }

    /// Node id of router 2.
    pub fn router2(&self) -> NodeId {
        NodeId(self.n_pairs as u32 + 1)
    }

    /// Node id of receiver host `i`.
    pub fn receiver(&self, i: usize) -> NodeId {
        assert!(i < self.n_pairs);
        NodeId((self.n_pairs + 2 + i) as u32)
    }

    /// Materialize the topology. The bottleneck link gets a large droptail
    /// queue by default; install the AQM under test with
    /// [`Topology::set_bottleneck_aqm`].
    pub fn build(&self) -> Topology {
        assert!(self.n_pairs >= 1, "dumbbell needs at least one host pair");
        let n = self.n_pairs;
        let mut kinds = Vec::with_capacity(2 * n + 2);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n));
        kinds.push(NodeKind::Router);
        kinds.push(NodeKind::Router);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n));
        let mut topo = Topology::new(kinds);

        let r1 = self.router1();
        let r2 = self.router2();

        // Forward direction: senders -> r1 -> r2 -> receivers.
        let mut fwd_access = Vec::new();
        for i in 0..n {
            fwd_access.push(topo.add_link_big_fifo(self.sender(i), r1, self.access));
        }
        let bottleneck = topo.add_link_big_fifo(r1, r2, self.bottleneck);
        topo.bottleneck = Some(bottleneck);
        let mut fwd_leaf = Vec::new();
        for i in 0..n {
            fwd_leaf.push(topo.add_link_big_fifo(r2, self.receiver(i), self.leaf));
        }

        // Reverse direction: receivers -> r2 -> r1 -> senders. The reverse
        // bottleneck segment runs at the raw 100 Gbps router interconnect
        // (the paper shapes only the forward direction with `tc`).
        let mut rev_leaf = Vec::new();
        for i in 0..n {
            rev_leaf.push(topo.add_link_big_fifo(self.receiver(i), r2, self.leaf));
        }
        let rev_spec = LinkSpec::new(crate::units::Bandwidth::from_gbps(100), self.bottleneck.prop);
        let rev_bottleneck = topo.add_link_big_fifo(r2, r1, rev_spec);
        let mut rev_access = Vec::new();
        for i in 0..n {
            rev_access.push(topo.add_link_big_fifo(r1, self.sender(i), self.access));
        }

        // Routes: everything from sender i to any receiver goes via its
        // access link, r1 routes all receivers over the bottleneck, etc.
        for i in 0..n {
            let s = self.sender(i);
            let r = self.receiver(i);
            topo.sender_hosts.push(s);
            topo.receiver_hosts.push(r);
            for j in 0..n {
                let rj = self.receiver(j);
                topo.set_route(s, rj, fwd_access[i]);
                topo.set_route(r1, rj, bottleneck);
                topo.set_route(r2, rj, fwd_leaf[j]);
                let sj = self.sender(j);
                topo.set_route(r, sj, rev_leaf[i]);
                topo.set_route(r2, sj, rev_bottleneck);
                topo.set_route(r1, sj, rev_access[j]);
            }
        }

        topo.rtt = (self.access.prop + self.bottleneck.prop + self.leaf.prop) * 2;
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn spec() -> DumbbellSpec {
        DumbbellSpec::paper(Bandwidth::from_mbps(100))
    }

    #[test]
    fn paper_dumbbell_shape() {
        let s = spec();
        let topo = s.build();
        assert_eq!(topo.n_nodes(), 6);
        // 2 fwd access + bottleneck + 2 fwd leaf + 2 rev leaf + rev bottleneck + 2 rev access
        assert_eq!(topo.links().len(), 10);
        assert_eq!(topo.rtt(), SimDuration::from_millis(62));
        assert_eq!(topo.sender_hosts(), &[NodeId(0), NodeId(1)]);
        assert_eq!(topo.receiver_hosts(), &[NodeId(4), NodeId(5)]);
        assert_eq!(topo.kind(s.router1()), NodeKind::Router);
        assert_eq!(topo.kind(s.sender(0)), NodeKind::Host);
    }

    #[test]
    fn forward_path_routes_through_bottleneck() {
        let s = spec();
        let topo = s.build();
        let bn = topo.bottleneck_link().unwrap();
        // sender0 -> receiver0: access, bottleneck, leaf.
        let l1 = topo.route(s.sender(0), s.receiver(0)).unwrap();
        assert_eq!(topo.link(l1).dst, s.router1());
        let l2 = topo.route(s.router1(), s.receiver(0)).unwrap();
        assert_eq!(l2, bn);
        let l3 = topo.route(s.router2(), s.receiver(0)).unwrap();
        assert_eq!(topo.link(l3).dst, s.receiver(0));
    }

    #[test]
    fn reverse_path_avoids_bottleneck() {
        let s = spec();
        let topo = s.build();
        let bn = topo.bottleneck_link().unwrap();
        let l1 = topo.route(s.receiver(1), s.sender(1)).unwrap();
        assert_eq!(topo.link(l1).dst, s.router2());
        let l2 = topo.route(s.router2(), s.sender(1)).unwrap();
        assert_ne!(l2, bn);
        assert_eq!(topo.link(l2).dst, s.router1());
        // Reverse trunk is the unshaped 100G interconnect.
        assert_eq!(topo.link(l2).rate, Bandwidth::from_gbps(100));
    }

    #[test]
    fn bottleneck_rate_matches_spec() {
        let s = DumbbellSpec::paper(Bandwidth::from_gbps(10));
        let topo = s.build();
        let bn = topo.bottleneck_link().unwrap();
        assert_eq!(topo.link(bn).rate, Bandwidth::from_gbps(10));
        assert_eq!(topo.link(bn).prop, SimDuration::from_millis(28));
    }

    #[test]
    fn cross_pair_routes_exist() {
        // sender0 can reach receiver1 (needed for arbitrary flow placement).
        let s = spec();
        let topo = s.build();
        assert!(topo.route(s.sender(0), s.receiver(1)).is_some());
        assert!(topo.route(s.router1(), s.receiver(1)).is_some());
    }
}
