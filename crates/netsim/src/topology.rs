//! Topologies: nodes, static routing, and the experiment shape builders.
//!
//! The study's network (paper Fig. 1) is a dumbbell: sender hosts at Clemson,
//! router 1 (WASH), router 2 (NCSA), receiver hosts at TACC, with the
//! bottleneck — rate limit, queue length, AQM — configured on the
//! router 1 → router 2 interface, and a measured RTT of 62 ms.
//!
//! Beyond the dumbbell, [`TopologySpec`] names the shapes the experiment
//! layer can request: `parking-lot:K` (one long flow crossing K shaped
//! hops, each also loaded by a one-hop cross flow) and `multi-dumbbell`
//! (one shared bottleneck, per-group access delays realizing
//! heterogeneous RTTs — the FaiRTT-style BBR unfairness setup), plus an
//! explicit link-list escape hatch. Every built topology designates one
//! or more *bottleneck links*; the simulator instruments and checks each.

use crate::link::{Link, LinkId, LinkSpec};
use crate::packet::NodeId;
use crate::queue::Aqm;
use crate::time::SimDuration;
use crate::units::Bandwidth;
use elephants_json::{
    impl_json_struct, impl_json_unit_enum, FromJson, JsonError, ToJson, Value,
};

/// What role a node plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Terminates flows (runs protocol endpoints).
    Host,
    /// Forwards packets by static routes.
    Router,
}

impl_json_unit_enum!(NodeKind { Host, Router });

/// A static-routed network: links plus per-node next-hop tables.
pub struct Topology {
    kinds: Vec<NodeKind>,
    links: Vec<Link>,
    /// `routes[node][dst]` = outgoing link towards `dst`.
    routes: Vec<Vec<Option<LinkId>>>,
    sender_hosts: Vec<NodeId>,
    receiver_hosts: Vec<NodeId>,
    /// Designated bottleneck links, in builder order; the first is the
    /// primary (the dumbbell's single shaped trunk).
    bottlenecks: Vec<LinkId>,
    base_rtt: SimDuration,
}

impl Topology {
    /// Create an empty topology with `n` nodes of the given kinds.
    pub fn new(kinds: Vec<NodeKind>) -> Self {
        let n = kinds.len();
        Topology {
            kinds,
            links: Vec::new(),
            routes: vec![vec![None; n]; n],
            sender_hosts: Vec::new(),
            receiver_hosts: Vec::new(),
            bottlenecks: Vec::new(),
            base_rtt: SimDuration::ZERO,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0 as usize]
    }

    /// Add a link and return its id. Routing entries are added separately.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, spec: LinkSpec, aqm: Box<dyn Aqm>) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, src, dst, spec, aqm));
        id
    }

    /// Add a link with a large droptail queue (non-bottleneck default).
    pub fn add_link_big_fifo(&mut self, src: NodeId, dst: NodeId, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::with_big_fifo(id, src, dst, spec));
        id
    }

    /// Install a route: packets at `node` destined to `dst` leave via `link`.
    pub fn set_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        debug_assert_eq!(self.links[link.0 as usize].src, node, "route link must originate at node");
        self.routes[node.0 as usize][dst.0 as usize] = Some(link);
    }

    /// Next-hop link for a packet at `node` heading to `dst`.
    #[inline]
    pub fn route(&self, node: NodeId, dst: NodeId) -> Option<LinkId> {
        self.routes[node.0 as usize][dst.0 as usize]
    }

    /// Mutable access to a link.
    #[inline]
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// Shared access to a link.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The primary designated bottleneck link (set by the builders).
    pub fn bottleneck_link(&self) -> Option<LinkId> {
        self.bottlenecks.first().copied()
    }

    /// All designated bottleneck links, in builder order. The dumbbell has
    /// one; a parking lot has one per shaped hop.
    pub fn bottleneck_links(&self) -> &[LinkId] {
        &self.bottlenecks
    }

    /// Replace the queue discipline on the primary bottleneck link.
    pub fn set_bottleneck_aqm(&mut self, aqm: Box<dyn Aqm>) {
        let id = self.bottleneck_link().expect("topology has no designated bottleneck");
        self.links[id.0 as usize].aqm = aqm;
    }

    /// Replace the queue discipline on an arbitrary link (multi-bottleneck
    /// topologies install one AQM instance per shaped hop).
    pub fn set_aqm_on(&mut self, id: LinkId, aqm: Box<dyn Aqm>) {
        self.links[id.0 as usize].aqm = aqm;
    }

    /// Sender-side host nodes (traffic sources).
    pub fn sender_hosts(&self) -> &[NodeId] {
        &self.sender_hosts
    }

    /// Receiver-side host nodes (traffic sinks).
    pub fn receiver_hosts(&self) -> &[NodeId] {
        &self.receiver_hosts
    }

    /// The designed round-trip propagation time of the reference path: the
    /// common RTT on a dumbbell, the long (all-hops) path on a parking
    /// lot, the shortest group RTT on a multi-dumbbell. Per-pair RTTs come
    /// from [`Topology::path_rtt`].
    pub fn base_rtt(&self) -> SimDuration {
        self.base_rtt
    }

    /// Round-trip propagation delay between two nodes, following the
    /// installed routes there and back. `None` when either direction has
    /// no route (or the route tables loop).
    pub fn path_rtt(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        Some(self.one_way_prop(a, b)? + self.one_way_prop(b, a)?)
    }

    /// Sum of link propagation delays along the routed path `from → to`.
    fn one_way_prop(&self, from: NodeId, to: NodeId) -> Option<SimDuration> {
        let mut cur = from;
        let mut sum = SimDuration::ZERO;
        let mut hops = 0usize;
        while cur != to {
            let link = self.link(self.route(cur, to)?);
            sum += link.prop;
            cur = link.dst;
            hops += 1;
            if hops > self.n_nodes() {
                return None;
            }
        }
        Some(sum)
    }
}

/// Populate `topo`'s route tables towards every host by shortest hop
/// count over the directed links, breaking ties by lowest link id (so
/// routing is a deterministic function of the link list). The dumbbell
/// builder keeps its hand-written routes; the parking-lot, multi-dumbbell
/// and explicit builders all route through this.
fn auto_route(topo: &mut Topology) {
    let n = topo.n_nodes();
    let hosts: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|&nd| topo.kind(nd) == NodeKind::Host)
        .collect();
    for &dst in &hosts {
        // Hop distance from every node to `dst`; the graphs are tiny, so
        // iterate-to-fixpoint relaxation is plenty and fully deterministic.
        let mut dist = vec![u32::MAX; n];
        dist[dst.0 as usize] = 0;
        loop {
            let mut changed = false;
            for link in &topo.links {
                let (s, d) = (link.src.0 as usize, link.dst.0 as usize);
                if dist[d] != u32::MAX && dist[d] + 1 < dist[s] {
                    dist[s] = dist[d] + 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for node in 0..n {
            if node == dst.0 as usize || dist[node] == u32::MAX {
                continue;
            }
            for (l, link) in topo.links.iter().enumerate() {
                let d = link.dst.0 as usize;
                if link.src.0 as usize == node && dist[d] != u32::MAX && dist[d] + 1 == dist[node] {
                    topo.routes[node][dst.0 as usize] = Some(LinkId(l as u32));
                    break;
                }
            }
        }
    }
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field("nodes", &self.kinds.len())
            .field("links", &self.links.len())
            .field("senders", &self.sender_hosts)
            .field("receivers", &self.receiver_hosts)
            .field("bottlenecks", &self.bottlenecks)
            .finish()
    }
}

/// Builder for the paper's dumbbell (Fig. 1).
///
/// `n_pairs` sender hosts connect through router 1 → router 2 to `n_pairs`
/// receiver hosts. Propagation delays of access (sender↔router1), bottleneck
/// (router1↔router2) and leaf (router2↔receiver) links sum to half the RTT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumbbellSpec {
    /// Number of sender/receiver host pairs (the paper uses 2).
    pub n_pairs: usize,
    /// Router1 → router2 link (rate = bottleneck BW under test).
    pub bottleneck: LinkSpec,
    /// Sender host ↔ router1 links (25 GbE NICs in the paper).
    pub access: LinkSpec,
    /// Router2 ↔ receiver host links.
    pub leaf: LinkSpec,
}

impl_json_struct!(DumbbellSpec { n_pairs, bottleneck, access, leaf });

impl DumbbellSpec {
    /// The paper's topology: 2 host pairs, 25 Gbps access/leaf NICs, and a
    /// bottleneck of `bw` shaped on router 1, with one-way delays
    /// 1 + 28 + 2 ms so the end-to-end RTT is 62 ms.
    pub fn paper(bw: crate::units::Bandwidth) -> Self {
        Self::paper_with_rtt(bw, SimDuration::from_millis(62))
    }

    /// The paper's topology with a custom end-to-end RTT (the paper's
    /// future-work "different RTTs" extension). Access/leaf one-way delays
    /// keep the paper's 1 + 2 ms; the trunk absorbs the rest.
    pub fn paper_with_rtt(bw: crate::units::Bandwidth, rtt: SimDuration) -> Self {
        let edge = SimDuration::from_millis(3); // 1 ms access + 2 ms leaf, one way
        assert!(
            rtt > edge * 2,
            "RTT must exceed the 6 ms the access/leaf links contribute"
        );
        let trunk_one_way = (rtt / 2).saturating_sub(edge);
        DumbbellSpec {
            n_pairs: 2,
            bottleneck: LinkSpec::new(bw, trunk_one_way),
            access: LinkSpec::new(crate::units::Bandwidth::from_gbps(25), SimDuration::from_millis(1)),
            leaf: LinkSpec::new(crate::units::Bandwidth::from_gbps(25), SimDuration::from_millis(2)),
        }
    }

    /// Node id of sender host `i`.
    pub fn sender(&self, i: usize) -> NodeId {
        assert!(i < self.n_pairs);
        NodeId(i as u32)
    }

    /// Node id of router 1 (owns the bottleneck egress queue).
    pub fn router1(&self) -> NodeId {
        NodeId(self.n_pairs as u32)
    }

    /// Node id of router 2.
    pub fn router2(&self) -> NodeId {
        NodeId(self.n_pairs as u32 + 1)
    }

    /// Node id of receiver host `i`.
    pub fn receiver(&self, i: usize) -> NodeId {
        assert!(i < self.n_pairs);
        NodeId((self.n_pairs + 2 + i) as u32)
    }

    /// Materialize the topology. The bottleneck link gets a large droptail
    /// queue by default; install the AQM under test with
    /// [`Topology::set_bottleneck_aqm`].
    pub fn build(&self) -> Topology {
        assert!(self.n_pairs >= 1, "dumbbell needs at least one host pair");
        let n = self.n_pairs;
        let mut kinds = Vec::with_capacity(2 * n + 2);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n));
        kinds.push(NodeKind::Router);
        kinds.push(NodeKind::Router);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n));
        let mut topo = Topology::new(kinds);

        let r1 = self.router1();
        let r2 = self.router2();

        // Forward direction: senders -> r1 -> r2 -> receivers.
        let mut fwd_access = Vec::new();
        for i in 0..n {
            fwd_access.push(topo.add_link_big_fifo(self.sender(i), r1, self.access));
        }
        let bottleneck = topo.add_link_big_fifo(r1, r2, self.bottleneck);
        topo.bottlenecks.push(bottleneck);
        let mut fwd_leaf = Vec::new();
        for i in 0..n {
            fwd_leaf.push(topo.add_link_big_fifo(r2, self.receiver(i), self.leaf));
        }

        // Reverse direction: receivers -> r2 -> r1 -> senders. The reverse
        // bottleneck segment runs at the raw 100 Gbps router interconnect
        // (the paper shapes only the forward direction with `tc`).
        let mut rev_leaf = Vec::new();
        for i in 0..n {
            rev_leaf.push(topo.add_link_big_fifo(self.receiver(i), r2, self.leaf));
        }
        let rev_spec = LinkSpec::new(crate::units::Bandwidth::from_gbps(100), self.bottleneck.prop);
        let rev_bottleneck = topo.add_link_big_fifo(r2, r1, rev_spec);
        let mut rev_access = Vec::new();
        for i in 0..n {
            rev_access.push(topo.add_link_big_fifo(r1, self.sender(i), self.access));
        }

        // Routes: everything from sender i to any receiver goes via its
        // access link, r1 routes all receivers over the bottleneck, etc.
        for i in 0..n {
            let s = self.sender(i);
            let r = self.receiver(i);
            topo.sender_hosts.push(s);
            topo.receiver_hosts.push(r);
            for j in 0..n {
                let rj = self.receiver(j);
                topo.set_route(s, rj, fwd_access[i]);
                topo.set_route(r1, rj, bottleneck);
                topo.set_route(r2, rj, fwd_leaf[j]);
                let sj = self.sender(j);
                topo.set_route(r, sj, rev_leaf[i]);
                topo.set_route(r2, sj, rev_bottleneck);
                topo.set_route(r1, sj, rev_access[j]);
            }
        }

        topo.base_rtt = (self.access.prop + self.bottleneck.prop + self.leaf.prop) * 2;
        topo
    }
}

/// Builder for a K-hop parking-lot chain.
///
/// Routers `R0..RK` are joined by `K` shaped hop links (each its own
/// bottleneck with its own queue). Flow group 0 runs the long path
/// `S0 → R0 → … → RK → T0` across every hop; group `g` (1-based) is a
/// one-hop cross flow loading only hop `g-1`. Reverse paths run on an
/// unshaped 100 Gbps chain, mirroring the dumbbell's `tc`-shaped-forward
/// convention. Per-hop propagation splits the long path's trunk budget
/// evenly so the long flow keeps the configured end-to-end RTT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParkingLotSpec {
    /// Number of shaped hops (≥ 2; 1 would be a dumbbell).
    pub hops: usize,
    /// Rate of each shaped hop.
    pub bw: Bandwidth,
    /// End-to-end RTT of the long (all-hops) path.
    pub rtt: SimDuration,
}

impl ParkingLotSpec {
    /// Paper-style edges (25 Gbps access at 1 ms, leaf at 2 ms) around
    /// `hops` shaped trunk segments.
    pub fn paper_with_rtt(bw: Bandwidth, rtt: SimDuration, hops: usize) -> Self {
        ParkingLotSpec { hops, bw, rtt }
    }

    /// Node id of sender host `g` (group `g`'s source).
    pub fn sender(&self, g: usize) -> NodeId {
        assert!(g <= self.hops);
        NodeId(g as u32)
    }

    /// Node id of router `i` (`0..=hops`).
    pub fn router(&self, i: usize) -> NodeId {
        assert!(i <= self.hops);
        NodeId((self.hops + 1 + i) as u32)
    }

    /// Node id of receiver host `g` (group `g`'s sink).
    pub fn receiver(&self, g: usize) -> NodeId {
        assert!(g <= self.hops);
        NodeId((2 * (self.hops + 1) + g) as u32)
    }

    /// Router the group-`g` sender attaches to.
    fn attach_src(&self, g: usize) -> NodeId {
        if g == 0 { self.router(0) } else { self.router(g - 1) }
    }

    /// Router the group-`g` receiver attaches to.
    fn attach_dst(&self, g: usize) -> NodeId {
        if g == 0 { self.router(self.hops) } else { self.router(g) }
    }

    /// Materialize the chain. Every shaped hop starts as a big droptail
    /// queue; install the AQM under test per hop with
    /// [`Topology::set_aqm_on`].
    pub fn build(&self) -> Result<Topology, String> {
        if self.hops < 2 {
            return Err(format!("parking lot needs >= 2 hops, got {}", self.hops));
        }
        let edge = SimDuration::from_millis(3); // 1 ms access + 2 ms leaf, one way
        if self.rtt <= edge * 2 {
            return Err(format!(
                "parking-lot RTT {:?} must exceed the 6 ms edge budget",
                self.rtt
            ));
        }
        let k = self.hops;
        let trunk_one_way = (self.rtt / 2).saturating_sub(edge);
        let hop_prop = trunk_one_way / (k as u64);
        if hop_prop.is_zero() {
            return Err("parking-lot RTT too small to split across hops".to_string());
        }
        // The integer division above can truncate; park the remainder on the
        // last hop so the hop delays sum to exactly `trunk_one_way` and the
        // long path realizes the configured RTT to the nanosecond.
        let last_hop_prop = trunk_one_way - hop_prop * (k as u64 - 1);
        let hop_prop_of = |i: usize| if i + 1 == k { last_hop_prop } else { hop_prop };
        let groups = k + 1;
        let access = LinkSpec::new(Bandwidth::from_gbps(25), SimDuration::from_millis(1));
        let leaf = LinkSpec::new(Bandwidth::from_gbps(25), SimDuration::from_millis(2));

        let mut kinds = Vec::with_capacity(3 * groups);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, groups));
        kinds.extend(std::iter::repeat_n(NodeKind::Router, k + 1));
        kinds.extend(std::iter::repeat_n(NodeKind::Host, groups));
        let mut topo = Topology::new(kinds);

        for g in 0..groups {
            topo.add_link_big_fifo(self.sender(g), self.attach_src(g), access);
        }
        for i in 0..k {
            let hop = LinkSpec::new(self.bw, hop_prop_of(i));
            let id = topo.add_link_big_fifo(self.router(i), self.router(i + 1), hop);
            topo.bottlenecks.push(id);
        }
        for g in 0..groups {
            topo.add_link_big_fifo(self.attach_dst(g), self.receiver(g), leaf);
        }
        for g in 0..groups {
            topo.add_link_big_fifo(self.receiver(g), self.attach_dst(g), leaf);
        }
        for i in 0..k {
            let rev_hop = LinkSpec::new(Bandwidth::from_gbps(100), hop_prop_of(i));
            topo.add_link_big_fifo(self.router(i + 1), self.router(i), rev_hop);
        }
        for g in 0..groups {
            topo.add_link_big_fifo(self.attach_src(g), self.sender(g), access);
        }

        for g in 0..groups {
            topo.sender_hosts.push(self.sender(g));
            topo.receiver_hosts.push(self.receiver(g));
        }
        auto_route(&mut topo);
        topo.base_rtt = (access.prop + trunk_one_way + leaf.prop) * 2;
        Ok(topo)
    }
}

/// Builder for a heterogeneous-RTT dumbbell: one shared shaped bottleneck,
/// one sender/receiver pair per flow group, and per-group access delays
/// chosen so group `g`'s end-to-end RTT equals `rtts[g]`.
///
/// This is the FaiRTT-style shape: a short-RTT BBR group competing with a
/// long-RTT group through the same queue.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDumbbellSpec {
    /// Shared bottleneck rate.
    pub bw: Bandwidth,
    /// Per-group end-to-end RTTs; `rtts.len()` is the number of groups.
    pub rtts: Vec<SimDuration>,
}

impl MultiDumbbellSpec {
    /// Node id of sender host `g`.
    pub fn sender(&self, g: usize) -> NodeId {
        assert!(g < self.rtts.len());
        NodeId(g as u32)
    }

    /// Node id of router 1 (owns the shared bottleneck queue).
    pub fn router1(&self) -> NodeId {
        NodeId(self.rtts.len() as u32)
    }

    /// Node id of router 2.
    pub fn router2(&self) -> NodeId {
        NodeId(self.rtts.len() as u32 + 1)
    }

    /// Node id of receiver host `g`.
    pub fn receiver(&self, g: usize) -> NodeId {
        assert!(g < self.rtts.len());
        NodeId((self.rtts.len() + 2 + g) as u32)
    }

    /// Materialize the topology; the shared bottleneck starts as a big
    /// droptail queue (install the AQM under test on
    /// [`Topology::bottleneck_link`]).
    pub fn build(&self) -> Result<Topology, String> {
        let n = self.rtts.len();
        if n < 2 {
            return Err(format!("multi-dumbbell needs >= 2 groups, got {n}"));
        }
        let leaf_prop = SimDuration::from_millis(2);
        let min_rtt = *self.rtts.iter().min().unwrap();
        // The shortest group keeps the dumbbell's 1 ms access delay; the
        // trunk absorbs the rest of its RTT, and longer groups stretch
        // only their own access links.
        let edge = SimDuration::from_millis(3);
        if min_rtt <= edge * 2 {
            return Err(format!(
                "multi-dumbbell min RTT {min_rtt:?} must exceed the 6 ms edge budget"
            ));
        }
        let trunk = (min_rtt / 2).saturating_sub(edge);

        let mut kinds = Vec::with_capacity(2 * n + 2);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n));
        kinds.push(NodeKind::Router);
        kinds.push(NodeKind::Router);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n));
        let mut topo = Topology::new(kinds);

        let r1 = self.router1();
        let r2 = self.router2();
        let access_prop = |rtt: SimDuration| (rtt / 2).saturating_sub(trunk + leaf_prop);
        let nic = Bandwidth::from_gbps(25);

        for g in 0..n {
            let spec = LinkSpec::new(nic, access_prop(self.rtts[g]));
            topo.add_link_big_fifo(self.sender(g), r1, spec);
        }
        let bn = topo.add_link_big_fifo(r1, r2, LinkSpec::new(self.bw, trunk));
        topo.bottlenecks.push(bn);
        for g in 0..n {
            topo.add_link_big_fifo(r2, self.receiver(g), LinkSpec::new(nic, leaf_prop));
        }
        for g in 0..n {
            topo.add_link_big_fifo(self.receiver(g), r2, LinkSpec::new(nic, leaf_prop));
        }
        topo.add_link_big_fifo(r2, r1, LinkSpec::new(Bandwidth::from_gbps(100), trunk));
        for g in 0..n {
            let spec = LinkSpec::new(nic, access_prop(self.rtts[g]));
            topo.add_link_big_fifo(r1, self.sender(g), spec);
        }

        for g in 0..n {
            topo.sender_hosts.push(self.sender(g));
            topo.receiver_hosts.push(self.receiver(g));
        }
        auto_route(&mut topo);
        topo.base_rtt = min_rtt;
        Ok(topo)
    }
}

/// One directed link in an [`ExplicitSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDef {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// Serialization rate in bits/s.
    pub bw_bps: u64,
    /// One-way propagation delay in microseconds.
    pub delay_us: u64,
    /// True for links the experiment layer should treat as bottlenecks
    /// (instrumented, AQM-under-test installed, checked per link).
    pub shaped: bool,
}

impl_json_struct!(LinkDef { src, dst, bw_bps, delay_us, shaped });

/// One flow group (sender → receiver pair) in an [`ExplicitSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupDef {
    /// Sender host node id.
    pub sender: u32,
    /// Receiver host node id.
    pub receiver: u32,
}

impl_json_struct!(GroupDef { sender, receiver });

/// An explicit link-list topology: the JSON-only escape hatch for shapes
/// the named presets don't cover. Nodes referenced by a group are hosts;
/// every other node is a router. Routing is shortest-hop ([`auto_route`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplicitSpec {
    /// Total node count (ids `0..n_nodes`).
    pub n_nodes: u32,
    /// Directed links, in id order.
    pub links: Vec<LinkDef>,
    /// Flow groups; group order fixes sender/receiver host order.
    pub groups: Vec<GroupDef>,
}

impl_json_struct!(ExplicitSpec { n_nodes, links, groups });

impl ExplicitSpec {
    /// Structural validation (cheap, no build).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_nodes < 2 {
            return Err("explicit topology needs >= 2 nodes".to_string());
        }
        if self.groups.is_empty() {
            return Err("explicit topology needs >= 1 flow group".to_string());
        }
        if !self.links.iter().any(|l| l.shaped) {
            return Err("explicit topology needs >= 1 shaped (bottleneck) link".to_string());
        }
        for l in &self.links {
            if l.src >= self.n_nodes || l.dst >= self.n_nodes || l.src == l.dst {
                return Err(format!("bad link endpoints {} -> {}", l.src, l.dst));
            }
            if l.bw_bps == 0 {
                return Err("explicit link rate must be positive".to_string());
            }
        }
        for g in &self.groups {
            if g.sender >= self.n_nodes || g.receiver >= self.n_nodes || g.sender == g.receiver {
                return Err(format!("bad group endpoints {} -> {}", g.sender, g.receiver));
            }
        }
        Ok(())
    }

    /// Materialize the topology; errors if any group's forward or reverse
    /// path is unroutable.
    pub fn build(&self) -> Result<Topology, String> {
        self.validate()?;
        let mut kinds = vec![NodeKind::Router; self.n_nodes as usize];
        for g in &self.groups {
            kinds[g.sender as usize] = NodeKind::Host;
            kinds[g.receiver as usize] = NodeKind::Host;
        }
        let mut topo = Topology::new(kinds);
        for l in &self.links {
            let spec = LinkSpec::new(
                Bandwidth::from_bps(l.bw_bps),
                SimDuration::from_micros(l.delay_us),
            );
            let id = topo.add_link_big_fifo(NodeId(l.src), NodeId(l.dst), spec);
            if l.shaped {
                topo.bottlenecks.push(id);
            }
        }
        for g in &self.groups {
            topo.sender_hosts.push(NodeId(g.sender));
            topo.receiver_hosts.push(NodeId(g.receiver));
        }
        auto_route(&mut topo);
        for g in &self.groups {
            if topo.path_rtt(NodeId(g.sender), NodeId(g.receiver)).is_none() {
                return Err(format!(
                    "group {} -> {} has no round-trip route",
                    g.sender, g.receiver
                ));
            }
        }
        topo.base_rtt = topo
            .path_rtt(NodeId(self.groups[0].sender), NodeId(self.groups[0].receiver))
            .unwrap_or(SimDuration::ZERO);
        Ok(topo)
    }
}

/// FNV-1a over a byte string (cache-tag fingerprint for explicit specs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The shape of the network a scenario runs on.
///
/// `Dumbbell` is the default and routes through the exact pre-existing
/// [`DumbbellSpec::paper_with_rtt`] path, so default-topology runs stay
/// byte-identical to the single-bottleneck engine. The other variants
/// build multi-bottleneck / heterogeneous-RTT shapes parameterized by the
/// scenario's bandwidth and base RTT.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TopologySpec {
    /// The paper's 2-pair dumbbell (Fig. 1); one shaped bottleneck.
    #[default]
    Dumbbell,
    /// A `hops`-hop parking lot: one long flow group crossing every
    /// shaped hop plus one cross-flow group per hop.
    ParkingLot {
        /// Number of shaped hops (each a bottleneck), 2..=8.
        hops: usize,
    },
    /// One shared bottleneck with one flow group per entry, group `g`'s
    /// end-to-end RTT fixed at `rtts_ms[g]` (heterogeneous-RTT fairness).
    MultiDumbbell {
        /// Per-group RTTs in milliseconds.
        rtts_ms: Vec<u64>,
    },
    /// An explicit link list (JSON-only; no CLI spelling).
    Explicit(ExplicitSpec),
}

impl TopologySpec {
    /// Number of flow groups the built topology will carry.
    pub fn n_groups(&self) -> usize {
        match self {
            TopologySpec::Dumbbell => 2,
            TopologySpec::ParkingLot { hops } => hops + 1,
            TopologySpec::MultiDumbbell { rtts_ms } => rtts_ms.len(),
            TopologySpec::Explicit(spec) => spec.groups.len(),
        }
    }

    /// Number of designated bottleneck links.
    pub fn n_bottlenecks(&self) -> usize {
        match self {
            TopologySpec::Dumbbell | TopologySpec::MultiDumbbell { .. } => 1,
            TopologySpec::ParkingLot { hops } => *hops,
            TopologySpec::Explicit(spec) => spec.links.iter().filter(|l| l.shaped).count(),
        }
    }

    /// Validate the spec's own parameters (bounds that don't depend on
    /// the scenario's bandwidth/RTT).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            TopologySpec::Dumbbell => Ok(()),
            TopologySpec::ParkingLot { hops } => {
                if !(2..=8).contains(hops) {
                    return Err(format!("parking-lot hops must be 2..=8, got {hops}"));
                }
                Ok(())
            }
            TopologySpec::MultiDumbbell { rtts_ms } => {
                if !(2..=8).contains(&rtts_ms.len()) {
                    return Err(format!(
                        "multi-dumbbell needs 2..=8 RTTs, got {}",
                        rtts_ms.len()
                    ));
                }
                for &r in rtts_ms {
                    if !(8..=2000).contains(&r) {
                        return Err(format!("multi-dumbbell RTT must be 8..=2000 ms, got {r}"));
                    }
                }
                Ok(())
            }
            TopologySpec::Explicit(spec) => spec.validate(),
        }
    }

    /// Build the topology for a scenario's bottleneck bandwidth and base
    /// RTT. `MultiDumbbell` carries its own absolute per-group RTTs and
    /// `Explicit` its own link rates/delays; both ignore `base_rtt`.
    pub fn build(&self, bw: Bandwidth, base_rtt: SimDuration) -> Result<Topology, String> {
        self.validate()?;
        match self {
            TopologySpec::Dumbbell => Ok(DumbbellSpec::paper_with_rtt(bw, base_rtt).build()),
            TopologySpec::ParkingLot { hops } => {
                ParkingLotSpec::paper_with_rtt(bw, base_rtt, *hops).build()
            }
            TopologySpec::MultiDumbbell { rtts_ms } => MultiDumbbellSpec {
                bw,
                rtts: rtts_ms.iter().map(|&ms| SimDuration::from_millis(ms)).collect(),
            }
            .build(),
            TopologySpec::Explicit(spec) => spec.build(),
        }
    }

    /// Cache-key suffix: empty for the default dumbbell (so pre-existing
    /// keys are untouched), a short readable tag for named presets, and a
    /// content fingerprint for explicit link lists.
    pub fn cache_tag(&self) -> String {
        match self {
            TopologySpec::Dumbbell => String::new(),
            TopologySpec::ParkingLot { hops } => format!("-topo-pl{hops}"),
            TopologySpec::MultiDumbbell { rtts_ms } => {
                let joined: Vec<String> = rtts_ms.iter().map(|r| r.to_string()).collect();
                format!("-topo-md{}", joined.join("x"))
            }
            TopologySpec::Explicit(_) => {
                format!("-topo-x{:016x}", fnv1a(self.to_json_string().as_bytes()))
            }
        }
    }
}

impl std::fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologySpec::Dumbbell => write!(f, "dumbbell"),
            TopologySpec::ParkingLot { hops } => write!(f, "parking-lot:{hops}"),
            TopologySpec::MultiDumbbell { rtts_ms } => {
                let joined: Vec<String> = rtts_ms.iter().map(|r| r.to_string()).collect();
                write!(f, "multi-dumbbell:{}", joined.join(","))
            }
            TopologySpec::Explicit(spec) => write!(f, "explicit[{} links]", spec.links.len()),
        }
    }
}

impl std::str::FromStr for TopologySpec {
    type Err = String;

    /// Parse the CLI spelling: `dumbbell`, `parking-lot:K`, or
    /// `multi-dumbbell:R1,R2[,..]` (RTTs in ms). Explicit link lists are
    /// JSON-only.
    fn from_str(s: &str) -> Result<Self, String> {
        let spec = if s == "dumbbell" {
            TopologySpec::Dumbbell
        } else if let Some(hops) = s.strip_prefix("parking-lot:") {
            let hops: usize =
                hops.parse().map_err(|_| format!("bad parking-lot hop count: {hops:?}"))?;
            TopologySpec::ParkingLot { hops }
        } else if let Some(rtts) = s.strip_prefix("multi-dumbbell:") {
            let rtts_ms: Vec<u64> = rtts
                .split(',')
                .map(|r| r.trim().parse().map_err(|_| format!("bad RTT in list: {r:?}")))
                .collect::<Result<_, String>>()?;
            TopologySpec::MultiDumbbell { rtts_ms }
        } else {
            return Err(format!(
                "unknown topology {s:?} (want dumbbell, parking-lot:K, or \
                 multi-dumbbell:R1,R2,..)"
            ));
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl ToJson for TopologySpec {
    fn to_json(&self) -> Value {
        match self {
            TopologySpec::Dumbbell => Value::Str("Dumbbell".to_string()),
            TopologySpec::ParkingLot { hops } => Value::Object(vec![(
                "ParkingLot".to_string(),
                Value::Object(vec![("hops".to_string(), hops.to_json())]),
            )]),
            TopologySpec::MultiDumbbell { rtts_ms } => Value::Object(vec![(
                "MultiDumbbell".to_string(),
                Value::Object(vec![("rtts_ms".to_string(), rtts_ms.to_json())]),
            )]),
            TopologySpec::Explicit(spec) => {
                Value::Object(vec![("Explicit".to_string(), spec.to_json())])
            }
        }
    }
}

impl FromJson for TopologySpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) if s == "Dumbbell" => Ok(TopologySpec::Dumbbell),
            Value::Object(fields) => match fields.first().map(|(k, _)| k.as_str()) {
                Some("ParkingLot") => {
                    let body = v.get_field("ParkingLot")?;
                    Ok(TopologySpec::ParkingLot {
                        hops: usize::from_json(body.get_field("hops")?)?,
                    })
                }
                Some("MultiDumbbell") => {
                    let body = v.get_field("MultiDumbbell")?;
                    Ok(TopologySpec::MultiDumbbell {
                        rtts_ms: Vec::from_json(body.get_field("rtts_ms")?)?,
                    })
                }
                Some("Explicit") => Ok(TopologySpec::Explicit(ExplicitSpec::from_json(
                    v.get_field("Explicit")?,
                )?)),
                _ => Err(JsonError::new("unknown TopologySpec variant".to_string())),
            },
            other => Err(JsonError::new(format!(
                "expected TopologySpec, got {}",
                other.kind_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn spec() -> DumbbellSpec {
        DumbbellSpec::paper(Bandwidth::from_mbps(100))
    }

    #[test]
    fn paper_dumbbell_shape() {
        let s = spec();
        let topo = s.build();
        assert_eq!(topo.n_nodes(), 6);
        // 2 fwd access + bottleneck + 2 fwd leaf + 2 rev leaf + rev bottleneck + 2 rev access
        assert_eq!(topo.links().len(), 10);
        assert_eq!(topo.base_rtt(), SimDuration::from_millis(62));
        assert_eq!(topo.bottleneck_links().len(), 1);
        assert_eq!(topo.sender_hosts(), &[NodeId(0), NodeId(1)]);
        assert_eq!(topo.receiver_hosts(), &[NodeId(4), NodeId(5)]);
        assert_eq!(topo.kind(s.router1()), NodeKind::Router);
        assert_eq!(topo.kind(s.sender(0)), NodeKind::Host);
    }

    #[test]
    fn forward_path_routes_through_bottleneck() {
        let s = spec();
        let topo = s.build();
        let bn = topo.bottleneck_link().unwrap();
        // sender0 -> receiver0: access, bottleneck, leaf.
        let l1 = topo.route(s.sender(0), s.receiver(0)).unwrap();
        assert_eq!(topo.link(l1).dst, s.router1());
        let l2 = topo.route(s.router1(), s.receiver(0)).unwrap();
        assert_eq!(l2, bn);
        let l3 = topo.route(s.router2(), s.receiver(0)).unwrap();
        assert_eq!(topo.link(l3).dst, s.receiver(0));
    }

    #[test]
    fn reverse_path_avoids_bottleneck() {
        let s = spec();
        let topo = s.build();
        let bn = topo.bottleneck_link().unwrap();
        let l1 = topo.route(s.receiver(1), s.sender(1)).unwrap();
        assert_eq!(topo.link(l1).dst, s.router2());
        let l2 = topo.route(s.router2(), s.sender(1)).unwrap();
        assert_ne!(l2, bn);
        assert_eq!(topo.link(l2).dst, s.router1());
        // Reverse trunk is the unshaped 100G interconnect.
        assert_eq!(topo.link(l2).rate, Bandwidth::from_gbps(100));
    }

    #[test]
    fn bottleneck_rate_matches_spec() {
        let s = DumbbellSpec::paper(Bandwidth::from_gbps(10));
        let topo = s.build();
        let bn = topo.bottleneck_link().unwrap();
        assert_eq!(topo.link(bn).rate, Bandwidth::from_gbps(10));
        assert_eq!(topo.link(bn).prop, SimDuration::from_millis(28));
    }

    #[test]
    fn cross_pair_routes_exist() {
        // sender0 can reach receiver1 (needed for arbitrary flow placement).
        let s = spec();
        let topo = s.build();
        assert!(topo.route(s.sender(0), s.receiver(1)).is_some());
        assert!(topo.route(s.router1(), s.receiver(1)).is_some());
    }

    #[test]
    fn path_rtt_matches_base_rtt_on_the_dumbbell() {
        let s = spec();
        let topo = s.build();
        for g in 0..2 {
            assert_eq!(
                topo.path_rtt(s.sender(g), s.receiver(g)),
                Some(SimDuration::from_millis(62))
            );
        }
        // Cross-pair paths share the same prop budget on the dumbbell.
        assert_eq!(
            topo.path_rtt(s.sender(0), s.receiver(1)),
            Some(SimDuration::from_millis(62))
        );
    }

    #[test]
    fn parking_lot_shape_routes_and_rtts() {
        let s = ParkingLotSpec::paper_with_rtt(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(62),
            3,
        );
        let topo = s.build().unwrap();
        // 4 groups: 4 access + 3 hops + 4 leaf forward, mirrored reverse.
        assert_eq!(topo.n_nodes(), 12);
        assert_eq!(topo.links().len(), 22);
        assert_eq!(topo.bottleneck_links().len(), 3);
        assert_eq!(topo.sender_hosts().len(), 4);
        // The long group crosses every bottleneck hop in order.
        let mut cur = s.sender(0);
        let mut crossed = Vec::new();
        while cur != s.receiver(0) {
            let l = topo.route(cur, s.receiver(0)).unwrap();
            if topo.bottleneck_links().contains(&l) {
                crossed.push(l);
            }
            cur = topo.link(l).dst;
        }
        assert_eq!(crossed, topo.bottleneck_links());
        // Long path keeps the configured RTT (hop budget splits evenly at
        // this RTT); cross groups see a shorter one-hop RTT.
        assert_eq!(
            topo.path_rtt(s.sender(0), s.receiver(0)),
            Some(SimDuration::from_millis(62)),
        );
        assert_eq!(topo.base_rtt(), SimDuration::from_millis(62));
        let cross = topo.path_rtt(s.sender(1), s.receiver(1)).unwrap();
        assert!(cross < SimDuration::from_millis(62), "cross RTT {cross:?}");
        // Cross group g loads exactly hop g-1.
        for g in 1..=3usize {
            let hop = topo.bottleneck_links()[g - 1];
            let at = topo.link(hop).src;
            assert_eq!(topo.route(at, s.receiver(g)), Some(hop));
        }
        // Reverse paths avoid every shaped hop.
        let mut cur = s.receiver(0);
        while cur != s.sender(0) {
            let l = topo.route(cur, s.sender(0)).unwrap();
            assert!(!topo.bottleneck_links().contains(&l), "ACK path hits shaped hop");
            cur = topo.link(l).dst;
        }
    }

    #[test]
    fn multi_dumbbell_realizes_heterogeneous_rtts() {
        let s = MultiDumbbellSpec {
            bw: Bandwidth::from_mbps(100),
            rtts: vec![SimDuration::from_millis(31), SimDuration::from_millis(124)],
        };
        let topo = s.build().unwrap();
        assert_eq!(topo.bottleneck_links().len(), 1);
        assert_eq!(topo.base_rtt(), SimDuration::from_millis(31));
        assert_eq!(
            topo.path_rtt(s.sender(0), s.receiver(0)),
            Some(SimDuration::from_millis(31))
        );
        assert_eq!(
            topo.path_rtt(s.sender(1), s.receiver(1)),
            Some(SimDuration::from_millis(124))
        );
        // Both groups share the single shaped trunk.
        let bn = topo.bottleneck_link().unwrap();
        for g in 0..2 {
            assert_eq!(topo.route(s.router1(), s.receiver(g)), Some(bn));
        }
    }

    #[test]
    fn topology_spec_parses_builds_and_round_trips() {
        use std::str::FromStr;
        use elephants_json::{FromJson, ToJson};
        let cases = [
            ("dumbbell", TopologySpec::Dumbbell),
            ("parking-lot:3", TopologySpec::ParkingLot { hops: 3 }),
            (
                "multi-dumbbell:62,124",
                TopologySpec::MultiDumbbell { rtts_ms: vec![62, 124] },
            ),
        ];
        for (text, want) in cases {
            let spec = TopologySpec::from_str(text).unwrap();
            assert_eq!(spec, want);
            assert_eq!(format!("{spec}"), text, "Display must round-trip the CLI spelling");
            let back = TopologySpec::from_json_str(&spec.to_json_string()).unwrap();
            assert_eq!(back, spec, "JSON must round-trip");
            let topo = spec
                .build(Bandwidth::from_mbps(100), SimDuration::from_millis(62))
                .unwrap();
            assert_eq!(topo.bottleneck_links().len(), spec.n_bottlenecks());
            assert_eq!(topo.sender_hosts().len(), spec.n_groups());
        }
        assert!(TopologySpec::from_str("parking-lot:1").is_err(), "1 hop is a dumbbell");
        assert!(TopologySpec::from_str("multi-dumbbell:62").is_err(), "one group is no contest");
        assert!(TopologySpec::from_str("triangle").is_err());
        // Cache tags: empty for the default, distinct readable tags otherwise.
        assert_eq!(TopologySpec::Dumbbell.cache_tag(), "");
        assert_eq!(TopologySpec::ParkingLot { hops: 3 }.cache_tag(), "-topo-pl3");
        assert_eq!(
            TopologySpec::MultiDumbbell { rtts_ms: vec![62, 124] }.cache_tag(),
            "-topo-md62x124"
        );
    }

    #[test]
    fn explicit_spec_builds_and_validates() {
        use elephants_json::{FromJson, ToJson};
        // 0 -> 2 -> 3 -> 1 forward, 1 -> 3 -> 2 -> 0 reverse; the middle
        // link is shaped.
        let mk_link = |src, dst, shaped| LinkDef {
            src,
            dst,
            bw_bps: if shaped { 100_000_000 } else { 25_000_000_000 },
            delay_us: 1_000,
            shaped,
        };
        let spec = ExplicitSpec {
            n_nodes: 4,
            links: vec![
                mk_link(0, 2, false),
                mk_link(2, 3, true),
                mk_link(3, 1, false),
                mk_link(1, 3, false),
                mk_link(3, 2, false),
                mk_link(2, 0, false),
            ],
            groups: vec![GroupDef { sender: 0, receiver: 1 }],
        };
        let topo = TopologySpec::Explicit(spec.clone())
            .build(Bandwidth::from_mbps(100), SimDuration::from_millis(62))
            .unwrap();
        assert_eq!(topo.bottleneck_links().len(), 1);
        assert_eq!(topo.kind(NodeId(0)), NodeKind::Host);
        assert_eq!(topo.kind(NodeId(2)), NodeKind::Router);
        assert_eq!(topo.path_rtt(NodeId(0), NodeId(1)), Some(SimDuration::from_millis(6)));
        let ts = TopologySpec::Explicit(spec.clone());
        assert_eq!(TopologySpec::from_json_str(&ts.to_json_string()).unwrap(), ts);
        assert!(ts.cache_tag().starts_with("-topo-x"));

        // Unroutable group: no reverse path.
        let broken = ExplicitSpec {
            links: spec.links[..3].to_vec(),
            ..spec.clone()
        };
        assert!(broken.build().is_err());
        // No shaped link.
        let unshaped = ExplicitSpec {
            links: spec.links.iter().map(|l| LinkDef { shaped: false, ..*l }).collect(),
            ..spec
        };
        assert!(unshaped.validate().is_err());
    }
}
