//! Integer-nanosecond simulated time.
//!
//! All timestamps in the simulator are [`SimTime`] (nanoseconds since the
//! start of the run) and all intervals are [`SimDuration`]. Using `u64`
//! nanoseconds instead of `f64` seconds keeps event ordering exact and runs
//! bit-for-bit reproducible: two events scheduled from different code paths
//! can never swap order due to rounding.

use elephants_json::impl_json_newtype;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A point in simulated time (nanoseconds since run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl_json_newtype!(SimTime);
impl_json_newtype!(SimDuration);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinitely far" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since run start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start, as `f64` (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be finite and non-negative");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting and rate maths).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` iff this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float factor (rounds to nearest nanosecond).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication by an integer factor. The `Mul<u64>`
    /// operator wraps in release builds; callers that scale unbounded
    /// inputs (e.g. exponential RTO backoff of a pathological SRTT) must
    /// use this instead.
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(62).as_millis_f64(), 62.0);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), NANOS_PER_SEC / 2);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!((t1 - t0).as_millis_f64(), 10.0);
        assert_eq!(t1.since(t0), SimDuration::from_millis(10));
        // since() saturates rather than panicking.
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(50));
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(3)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_nanos(5));
    }
}
