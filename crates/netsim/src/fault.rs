//! Link fault injection.
//!
//! The paper's future work calls for observing behaviour "under network
//! anomalies (e.g. variable rates of packet loss)". [`LossModel`] implements
//! that extension: a per-link random-loss process applied to packets after
//! serialization (i.e. in-flight corruption, invisible to the AQM).

use crate::rng::{RngExt, SmallRng};
use elephants_json::{FromJson, JsonError, ToJson, Value};

/// A random packet-loss process on a link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No induced loss (the default).
    #[default]
    None,
    /// Independent Bernoulli loss with probability `p` per packet.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott two-state burst-loss model.
    ///
    /// In the Good state packets always survive; in the Bad state they are
    /// always lost. `p_gb` is the per-packet probability of Good→Bad and
    /// `p_bg` of Bad→Good.
    GilbertElliott {
        /// P(Good → Bad) per packet.
        p_gb: f64,
        /// P(Bad → Good) per packet.
        p_bg: f64,
    },
}

impl ToJson for LossModel {
    fn to_json(&self) -> Value {
        match *self {
            LossModel::None => Value::Str("None".to_string()),
            LossModel::Bernoulli { p } => Value::Object(vec![(
                "Bernoulli".to_string(),
                Value::Object(vec![("p".to_string(), p.to_json())]),
            )]),
            LossModel::GilbertElliott { p_gb, p_bg } => Value::Object(vec![(
                "GilbertElliott".to_string(),
                Value::Object(vec![
                    ("p_gb".to_string(), p_gb.to_json()),
                    ("p_bg".to_string(), p_bg.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for LossModel {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) if s == "None" => Ok(LossModel::None),
            Value::Object(fields) => match fields.first().map(|(k, _)| k.as_str()) {
                Some("Bernoulli") => {
                    let body = v.get_field("Bernoulli")?;
                    Ok(LossModel::Bernoulli { p: f64::from_json(body.get_field("p")?)? })
                }
                Some("GilbertElliott") => {
                    let body = v.get_field("GilbertElliott")?;
                    Ok(LossModel::GilbertElliott {
                        p_gb: f64::from_json(body.get_field("p_gb")?)?,
                        p_bg: f64::from_json(body.get_field("p_bg")?)?,
                    })
                }
                _ => Err(JsonError::new("unknown LossModel variant".to_string())),
            },
            other => Err(JsonError::new(format!(
                "expected LossModel, got {}",
                other.kind_name()
            ))),
        }
    }
}

impl LossModel {
    /// Validate probabilities are in range.
    pub fn validate(&self) -> Result<(), String> {
        let ok = |p: f64| (0.0..=1.0).contains(&p);
        match *self {
            LossModel::None => Ok(()),
            LossModel::Bernoulli { p } if ok(p) => Ok(()),
            LossModel::GilbertElliott { p_gb, p_bg } if ok(p_gb) && ok(p_bg) => Ok(()),
            _ => Err(format!("loss model probability out of [0,1]: {self:?}")),
        }
    }
}

/// Runtime state for a [`LossModel`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LossState {
    in_bad_state: bool,
    /// Number of packets dropped by fault injection.
    pub losses: u64,
}

impl LossState {
    /// Decide whether the next packet is lost.
    pub fn should_drop(&mut self, model: &LossModel, rng: &mut SmallRng) -> bool {
        let drop = match *model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => p > 0.0 && rng.random::<f64>() < p,
            LossModel::GilbertElliott { p_gb, p_bg } => {
                if self.in_bad_state {
                    if rng.random::<f64>() < p_bg {
                        self.in_bad_state = false;
                    }
                } else if rng.random::<f64>() < p_gb {
                    self.in_bad_state = true;
                }
                self.in_bad_state
            }
        };
        if drop {
            self.losses += 1;
        }
        drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn none_never_drops() {
        let mut st = LossState::default();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(!st.should_drop(&LossModel::None, &mut rng));
        }
        assert_eq!(st.losses, 0);
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut st = LossState::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let model = LossModel::Bernoulli { p: 0.05 };
        let mut drops = 0;
        for _ in 0..n {
            if st.should_drop(&model, &mut rng) {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
        assert_eq!(st.losses, drops);
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut st = LossState::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let model = LossModel::GilbertElliott { p_gb: 0.01, p_bg: 0.2 };
        let mut runs = vec![];
        let mut cur = 0u32;
        for _ in 0..200_000 {
            if st.should_drop(&model, &mut rng) {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        // Mean burst length should approach 1/p_bg = 5.
        let mean = runs.iter().copied().sum::<u32>() as f64 / runs.len() as f64;
        assert!(mean > 3.0 && mean < 7.0, "mean burst {mean}");
    }

    #[test]
    fn validate_rejects_bad_probability() {
        assert!(LossModel::Bernoulli { p: 1.5 }.validate().is_err());
        assert!(LossModel::Bernoulli { p: 0.5 }.validate().is_ok());
        assert!(LossModel::GilbertElliott { p_gb: -0.1, p_bg: 0.5 }.validate().is_err());
    }
}
