//! Link fault injection.
//!
//! The paper's future work calls for observing behaviour "under network
//! anomalies (e.g. variable rates of packet loss)". This module implements
//! that extension in two layers:
//!
//! * **Steady-state impairments** applied per packet after serialization
//!   (i.e. in-flight corruption, invisible to the AQM): [`LossModel`],
//!   [`ReorderModel`], [`DuplicateModel`] and a uniform jitter knob on the
//!   link.
//! * **Timed faults**: a [`FaultPlan`] — a validated, JSON-round-trippable
//!   list of [`FaultEvent`]s (link flaps, mid-run bandwidth/delay/loss
//!   changes) that the simulator dispatches deterministically through the
//!   event queue's timer wheel, so fixed-seed faulted runs stay
//!   byte-identical.

use crate::rng::{RngExt, SmallRng};
use crate::time::SimDuration;
use crate::units::Bandwidth;
use elephants_json::{impl_json_struct, FromJson, JsonError, ToJson, Value};

/// A random packet-loss process on a link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No induced loss (the default).
    #[default]
    None,
    /// Independent Bernoulli loss with probability `p` per packet.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott two-state burst-loss model.
    ///
    /// In the Good state packets always survive; in the Bad state they are
    /// always lost. `p_gb` is the per-packet probability of Good→Bad and
    /// `p_bg` of Bad→Good.
    GilbertElliott {
        /// P(Good → Bad) per packet.
        p_gb: f64,
        /// P(Bad → Good) per packet.
        p_bg: f64,
    },
}

impl ToJson for LossModel {
    fn to_json(&self) -> Value {
        match *self {
            LossModel::None => Value::Str("None".to_string()),
            LossModel::Bernoulli { p } => Value::Object(vec![(
                "Bernoulli".to_string(),
                Value::Object(vec![("p".to_string(), p.to_json())]),
            )]),
            LossModel::GilbertElliott { p_gb, p_bg } => Value::Object(vec![(
                "GilbertElliott".to_string(),
                Value::Object(vec![
                    ("p_gb".to_string(), p_gb.to_json()),
                    ("p_bg".to_string(), p_bg.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for LossModel {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) if s == "None" => Ok(LossModel::None),
            Value::Object(fields) => match fields.first().map(|(k, _)| k.as_str()) {
                Some("Bernoulli") => {
                    let body = v.get_field("Bernoulli")?;
                    Ok(LossModel::Bernoulli { p: f64::from_json(body.get_field("p")?)? })
                }
                Some("GilbertElliott") => {
                    let body = v.get_field("GilbertElliott")?;
                    Ok(LossModel::GilbertElliott {
                        p_gb: f64::from_json(body.get_field("p_gb")?)?,
                        p_bg: f64::from_json(body.get_field("p_bg")?)?,
                    })
                }
                _ => Err(JsonError::new("unknown LossModel variant".to_string())),
            },
            other => Err(JsonError::new(format!(
                "expected LossModel, got {}",
                other.kind_name()
            ))),
        }
    }
}

impl LossModel {
    /// Validate probabilities are in range.
    pub fn validate(&self) -> Result<(), String> {
        let ok = |p: f64| (0.0..=1.0).contains(&p);
        match *self {
            LossModel::None => Ok(()),
            LossModel::Bernoulli { p } if ok(p) => Ok(()),
            LossModel::GilbertElliott { p_gb, p_bg } if ok(p_gb) && ok(p_bg) => Ok(()),
            _ => Err(format!("loss model probability out of [0,1]: {self:?}")),
        }
    }
}

/// Runtime state for a [`LossModel`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LossState {
    in_bad_state: bool,
    /// Number of packets dropped by fault injection.
    pub losses: u64,
}

impl LossState {
    /// Decide whether the next packet is lost.
    pub fn should_drop(&mut self, model: &LossModel, rng: &mut SmallRng) -> bool {
        let drop = match *model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => p > 0.0 && rng.random::<f64>() < p,
            LossModel::GilbertElliott { p_gb, p_bg } => {
                if self.in_bad_state {
                    if rng.random::<f64>() < p_bg {
                        self.in_bad_state = false;
                    }
                } else if rng.random::<f64>() < p_gb {
                    self.in_bad_state = true;
                }
                self.in_bad_state
            }
        };
        if drop {
            self.losses += 1;
        }
        drop
    }
}

/// A random packet-reordering process on a link.
///
/// With probability `p` a packet's propagation is stretched by `extra`,
/// letting later packets overtake it (a model of parallel-path or
/// link-layer retransmission reordering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderModel {
    /// Reorder probability in `[0, 1]` per packet.
    pub p: f64,
    /// Extra one-way delay applied to reordered packets.
    pub extra: SimDuration,
}

impl Default for ReorderModel {
    fn default() -> Self {
        ReorderModel { p: 0.0, extra: SimDuration::ZERO }
    }
}

impl_json_struct!(ReorderModel { p, extra });

impl ReorderModel {
    /// True when the model never reorders (the default).
    pub fn is_none(&self) -> bool {
        self.p <= 0.0 || self.extra.is_zero()
    }

    /// Validate the probability range.
    pub fn validate(&self) -> Result<(), String> {
        if (0.0..=1.0).contains(&self.p) {
            Ok(())
        } else {
            Err(format!("reorder probability out of [0,1]: {}", self.p))
        }
    }
}

/// A random packet-duplication process on a link.
///
/// With probability `p` a packet is delivered twice (a model of link-layer
/// retransmission racing the original).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DuplicateModel {
    /// Duplication probability in `[0, 1]` per packet.
    pub p: f64,
}

impl_json_struct!(DuplicateModel { p });

impl DuplicateModel {
    /// True when the model never duplicates (the default).
    pub fn is_none(&self) -> bool {
        self.p <= 0.0
    }

    /// Validate the probability range.
    pub fn validate(&self) -> Result<(), String> {
        if (0.0..=1.0).contains(&self.p) {
            Ok(())
        } else {
            Err(format!("duplicate probability out of [0,1]: {}", self.p))
        }
    }
}

/// One state change applied to a link at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Take the link down: every packet offered or dequeued while down is
    /// destroyed (and counted), as on a dark fiber cut.
    LinkDown,
    /// Bring the link back up; transmission resumes from the backlog.
    LinkUp,
    /// Change the serialization rate (mid-run capacity change).
    SetBandwidth(Bandwidth),
    /// Change the one-way propagation delay (mid-run RTT change).
    SetDelay(SimDuration),
    /// Swap the random-loss process (variable loss rate).
    SetLossModel(LossModel),
}

impl ToJson for FaultAction {
    fn to_json(&self) -> Value {
        match *self {
            FaultAction::LinkDown => Value::Str("LinkDown".to_string()),
            FaultAction::LinkUp => Value::Str("LinkUp".to_string()),
            FaultAction::SetBandwidth(bw) => {
                Value::Object(vec![("SetBandwidth".to_string(), bw.to_json())])
            }
            FaultAction::SetDelay(d) => Value::Object(vec![("SetDelay".to_string(), d.to_json())]),
            FaultAction::SetLossModel(m) => {
                Value::Object(vec![("SetLossModel".to_string(), m.to_json())])
            }
        }
    }
}

impl FromJson for FaultAction {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) if s == "LinkDown" => Ok(FaultAction::LinkDown),
            Value::Str(s) if s == "LinkUp" => Ok(FaultAction::LinkUp),
            Value::Object(fields) => match fields.first().map(|(k, _)| k.as_str()) {
                Some("SetBandwidth") => {
                    Ok(FaultAction::SetBandwidth(Bandwidth::from_json(v.get_field("SetBandwidth")?)?))
                }
                Some("SetDelay") => {
                    Ok(FaultAction::SetDelay(SimDuration::from_json(v.get_field("SetDelay")?)?))
                }
                Some("SetLossModel") => {
                    Ok(FaultAction::SetLossModel(LossModel::from_json(v.get_field("SetLossModel")?)?))
                }
                _ => Err(JsonError::new("unknown FaultAction variant".to_string())),
            },
            other => Err(JsonError::new(format!(
                "expected FaultAction, got {}",
                other.kind_name()
            ))),
        }
    }
}

/// A [`FaultAction`] scheduled at a sim-relative time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the action fires, relative to simulation start.
    pub at: SimDuration,
    /// What happens.
    pub action: FaultAction,
}

impl_json_struct!(FaultEvent { at, action });

/// A time-ordered list of [`FaultEvent`]s for one link.
///
/// Installed on a simulator with `Simulator::install_fault_plan`; each
/// event is scheduled through the ordinary event queue so faulted runs
/// share the engine's exact `(time, seq)` total order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The timed actions, in non-decreasing time order.
    pub events: Vec<FaultEvent>,
}

impl_json_struct!(FaultPlan { events });

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A link flap: down at `start`, back up `outage` later.
    pub fn flap(start: SimDuration, outage: SimDuration) -> Self {
        FaultPlan {
            events: vec![
                FaultEvent { at: start, action: FaultAction::LinkDown },
                FaultEvent { at: start + outage, action: FaultAction::LinkUp },
            ],
        }
    }

    /// Append an event (builder style).
    pub fn with(mut self, at: SimDuration, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Validate ordering and every embedded model.
    ///
    /// Events must be in non-decreasing time order (the plan is a schedule,
    /// not a set — out-of-order entries almost certainly mean a typo'd
    /// timestamp) and every `SetLossModel` payload must itself validate.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.events.windows(2) {
            if w[1].at < w[0].at {
                return Err(format!(
                    "fault events out of order: {:?} after {:?}",
                    w[1].at, w[0].at
                ));
            }
        }
        for ev in &self.events {
            if let FaultAction::SetLossModel(m) = &ev.action {
                m.validate()?;
            }
            if let FaultAction::SetBandwidth(bw) = &ev.action {
                if bw.as_bps() == 0 {
                    return Err("SetBandwidth to zero: use LinkDown instead".to_string());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn none_never_drops() {
        let mut st = LossState::default();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(!st.should_drop(&LossModel::None, &mut rng));
        }
        assert_eq!(st.losses, 0);
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut st = LossState::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let model = LossModel::Bernoulli { p: 0.05 };
        let mut drops = 0;
        for _ in 0..n {
            if st.should_drop(&model, &mut rng) {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
        assert_eq!(st.losses, drops);
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut st = LossState::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let model = LossModel::GilbertElliott { p_gb: 0.01, p_bg: 0.2 };
        let mut runs = vec![];
        let mut cur = 0u32;
        for _ in 0..200_000 {
            if st.should_drop(&model, &mut rng) {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        // Mean burst length should approach 1/p_bg = 5.
        let mean = runs.iter().copied().sum::<u32>() as f64 / runs.len() as f64;
        assert!(mean > 3.0 && mean < 7.0, "mean burst {mean}");
    }

    #[test]
    fn validate_rejects_bad_probability() {
        assert!(LossModel::Bernoulli { p: 1.5 }.validate().is_err());
        assert!(LossModel::Bernoulli { p: 0.5 }.validate().is_ok());
        assert!(LossModel::GilbertElliott { p_gb: -0.1, p_bg: 0.5 }.validate().is_err());
    }

    #[test]
    fn fault_plan_flap_round_trips_json() {
        let plan = FaultPlan::flap(SimDuration::from_secs(3), SimDuration::from_secs(2))
            .with(
                SimDuration::from_secs(6),
                FaultAction::SetLossModel(LossModel::GilbertElliott { p_gb: 0.01, p_bg: 0.2 }),
            )
            .with(SimDuration::from_secs(8), FaultAction::SetBandwidth(Bandwidth::from_mbps(50)))
            .with(SimDuration::from_secs(9), FaultAction::SetDelay(SimDuration::from_millis(10)));
        assert!(plan.validate().is_ok());
        let json = plan.to_json_string();
        let back = FaultPlan::from_json_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn fault_plan_validation_rejects_misordered_and_bad_payloads() {
        let mut plan = FaultPlan::flap(SimDuration::from_secs(5), SimDuration::from_secs(1));
        plan.events.swap(0, 1);
        assert!(plan.validate().is_err(), "out-of-order events must be rejected");

        let bad_loss = FaultPlan::none().with(
            SimDuration::from_secs(1),
            FaultAction::SetLossModel(LossModel::Bernoulli { p: 2.0 }),
        );
        assert!(bad_loss.validate().is_err());

        let zero_bw = FaultPlan::none()
            .with(SimDuration::from_secs(1), FaultAction::SetBandwidth(Bandwidth::ZERO));
        assert!(zero_bw.validate().is_err());

        assert!(FaultPlan::none().validate().is_ok());
    }

    #[test]
    fn reorder_and_duplicate_validation() {
        assert!(ReorderModel { p: 0.5, extra: SimDuration::from_millis(1) }.validate().is_ok());
        assert!(ReorderModel { p: -0.1, extra: SimDuration::ZERO }.validate().is_err());
        assert!(ReorderModel::default().is_none());
        assert!(DuplicateModel { p: 0.01 }.validate().is_ok());
        assert!(DuplicateModel { p: 1.1 }.validate().is_err());
        assert!(DuplicateModel::default().is_none());
    }
}
