//! Flight-recorder hooks: the observability seam of the simulator.
//!
//! A [`Recorder`] is a trait object installed on the simulator that receives
//! periodic per-flow samples ([`FlowSample`]), bottleneck-queue samples
//! ([`QueueSample`]) and, optionally, a bounded per-packet event trace
//! ([`TraceEvent`]) drained from the bottleneck link's [`EventRing`].
//!
//! The contract is *observe, never perturb*: sampling reads endpoint and
//! link state through `&self` accessors, draws no randomness, and schedules
//! only its own `Event::Sample` ticks — which are excluded from the
//! processed-event counter — so a recorded run produces byte-identical
//! metrics to an unrecorded one. When no recorder is installed
//! ([`RecorderHandle::null`], the default) no sample events are scheduled at
//! all: the hot path pays nothing.

use crate::link::LinkId;
use crate::packet::FlowId;
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// What a sender endpoint exposes at a sample tick (see
/// [`crate::sim::FlowEndpoint::telemetry_probe`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowProbe {
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// CCA pacing rate, bits per second (None = unpaced).
    pub pacing_rate: Option<u64>,
    /// Smoothed RTT (None before the first sample).
    pub srtt: Option<SimDuration>,
    /// Bytes currently in flight.
    pub inflight: u64,
    /// CCA phase label (e.g. `"slow_start"`, `"probe_bw:1.25"`).
    pub phase: &'static str,
}

/// One per-flow telemetry sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSample {
    /// Sample time.
    pub t: SimTime,
    /// The sampled flow.
    pub flow: FlowId,
    /// The sender's probe data.
    pub probe: FlowProbe,
    /// Cumulative bytes delivered to the receiver's application.
    pub delivered_bytes: u64,
    /// Cumulative retransmitted segments at the sender.
    pub retx: u64,
}

/// One bottleneck-queue telemetry sample. Multi-bottleneck topologies emit
/// one sample per instrumented link per tick, distinguished by `link`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSample {
    /// Sample time.
    pub t: SimTime,
    /// The sampled link.
    pub link: LinkId,
    /// Packets queued.
    pub backlog_pkts: u64,
    /// Bytes queued.
    pub backlog_bytes: u64,
    /// Cumulative packets dropped by the discipline so far.
    pub dropped: u64,
    /// Cumulative packets ECN-marked so far.
    pub marked: u64,
    /// Discipline-specific control variable, if the AQM exposes one
    /// (RED: average queue in bytes; PIE: drop probability).
    pub control: Option<f64>,
}

/// Kind of a per-packet trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Packet accepted into the bottleneck queue.
    Enqueue,
    /// Retransmitted packet accepted into the bottleneck queue.
    Retx,
    /// Packet handed to the transmitter.
    Dequeue,
    /// Packet dropped (AQM drop or dark-link destruction).
    Drop,
    /// A timed fault action was applied to the link.
    Fault,
}

impl TraceEventKind {
    /// Stable lowercase label for serialization.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Enqueue => "enqueue",
            TraceEventKind::Retx => "retx",
            TraceEventKind::Dequeue => "dequeue",
            TraceEventKind::Drop => "drop",
            TraceEventKind::Fault => "fault",
        }
    }
}

/// Flow id used on [`TraceEventKind::Fault`] records, which have no flow.
pub const TRACE_NO_FLOW: FlowId = FlowId(u32::MAX);

/// One per-packet trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event time.
    pub t: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
    /// The packet's flow ([`TRACE_NO_FLOW`] for fault events).
    pub flow: FlowId,
    /// The packet's sequence number.
    pub seq: u64,
    /// The packet's size in bytes.
    pub size: u32,
}

/// Bounded ring of [`TraceEvent`]s with a loud truncation counter.
///
/// Once `capacity` events are held, further pushes are *counted but not
/// stored* (keep-first semantics): the beginning of a run — slow start,
/// the first loss epoch — is the part worth keeping verbatim, and the
/// `truncated()` counter says exactly how much of the tail was shed.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    truncated: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing { buf: Vec::new(), capacity, truncated: 0 }
    }

    /// Record `ev`, or count it as truncated if the ring is full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.truncated += 1;
        }
    }

    /// Events recorded so far (at most `capacity`).
    pub fn events(&self) -> &[TraceEvent] {
        &self.buf
    }

    /// Number of events that arrived after the ring filled.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Sink for telemetry samples. Implemented by `elephants-telemetry`'s
/// `FlightRecorder`; the default is the no-op [`NullRecorder`].
pub trait Recorder: Send {
    /// A per-flow sample was taken.
    fn on_flow_sample(&mut self, s: &FlowSample);

    /// A bottleneck-queue sample was taken.
    fn on_queue_sample(&mut self, s: &QueueSample);

    /// A trace event drained from the bottleneck's [`EventRing`] after the
    /// run (plus the ring's truncation count, reported once).
    fn on_trace_event(&mut self, e: &TraceEvent);

    /// How many trace events were shed by the ring.
    fn on_trace_truncated(&mut self, _count: u64) {}

    /// Downcasting hook so callers can recover the concrete recorder after
    /// [`crate::sim::Simulator::take_recorder`].
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting hook.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The do-nothing recorder: recording off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn on_flow_sample(&mut self, _s: &FlowSample) {}
    fn on_queue_sample(&mut self, _s: &QueueSample) {}
    fn on_trace_event(&mut self, _e: &TraceEvent) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// What the simulator samples, and how often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecorderConfig {
    /// Spacing of `Event::Sample` ticks.
    pub interval: SimDuration,
    /// Sample per-flow sender state.
    pub flows: bool,
    /// Sample the bottleneck queue.
    pub queue: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { interval: SimDuration::from_millis(10), flows: true, queue: false }
    }
}

/// The simulator's slot for an installed recorder.
///
/// Activity is checked once per sample tick — never on the per-packet hot
/// path. With no recorder installed (the default) the simulator schedules
/// no sample events, so a run with the handle empty is instruction-for-
/// instruction the pre-telemetry hot loop.
pub struct RecorderHandle {
    rec: Option<Box<dyn Recorder>>,
    cfg: RecorderConfig,
}

impl RecorderHandle {
    /// An empty handle: recording off.
    pub fn null() -> Self {
        RecorderHandle { rec: None, cfg: RecorderConfig::default() }
    }

    /// Install a recorder.
    pub fn install(&mut self, rec: Box<dyn Recorder>, cfg: RecorderConfig) {
        assert!(!cfg.interval.is_zero(), "sample interval must be positive");
        self.rec = Some(rec);
        self.cfg = cfg;
    }

    /// Whether a recorder is installed.
    pub fn is_active(&self) -> bool {
        self.rec.is_some()
    }

    /// The sampling configuration.
    pub fn config(&self) -> RecorderConfig {
        self.cfg
    }

    /// The installed recorder, if any.
    pub fn recorder_mut(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        self.rec.as_deref_mut()
    }

    /// Remove and return the installed recorder.
    pub fn take(&mut self) -> Option<Box<dyn Recorder>> {
        self.rec.take()
    }
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderHandle")
            .field("active", &self.is_active())
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_nanos(seq),
            kind: TraceEventKind::Enqueue,
            flow: FlowId(0),
            seq,
            size: 1500,
        }
    }

    #[test]
    fn ring_keeps_first_and_counts_truncation() {
        let mut ring = EventRing::new(3);
        for i in 0..10 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.truncated(), 7);
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "keep-first semantics");
    }

    #[test]
    fn ring_below_capacity_truncates_nothing() {
        let mut ring = EventRing::new(8);
        ring.push(ev(0));
        ring.push(ev(1));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.truncated(), 0);
        assert!(!ring.is_empty());
        assert_eq!(ring.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_ring_panics() {
        EventRing::new(0);
    }

    #[test]
    fn null_handle_is_inactive() {
        let mut h = RecorderHandle::null();
        assert!(!h.is_active());
        assert!(h.recorder_mut().is_none());
        assert!(h.take().is_none());
        h.install(Box::new(NullRecorder), RecorderConfig::default());
        assert!(h.is_active());
        assert!(h.take().is_some());
        assert!(!h.is_active());
    }

    #[test]
    fn trace_kind_labels_are_stable() {
        assert_eq!(TraceEventKind::Enqueue.label(), "enqueue");
        assert_eq!(TraceEventKind::Retx.label(), "retx");
        assert_eq!(TraceEventKind::Dequeue.label(), "dequeue");
        assert_eq!(TraceEventKind::Drop.label(), "drop");
        assert_eq!(TraceEventKind::Fault.label(), "fault");
    }
}
