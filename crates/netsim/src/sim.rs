//! The simulator: event loop, endpoint dispatch, run summaries.

use crate::check::{CheckFailure, CheckMode, CheckReport, Checker};
use crate::event::{Event, EventQueue, TimerKind};
use crate::fault::{FaultAction, FaultPlan};
use crate::link::LinkId;
use crate::packet::{Dir, FlowId, NodeId, Packet};
use crate::queue::AqmStats;
use crate::record::{FlowProbe, FlowSample, QueueSample, Recorder, RecorderConfig, RecorderHandle};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::rng::{SeedableRng, SmallRng};
use std::any::Any;

/// What a protocol endpoint reports at the end of a run.
///
/// Senders fill the transmit-side counters; receivers fill the
/// delivery-side counters. "Window" values count only what happened after
/// the warmup mark — the measurement window the study averages over.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EndpointReport {
    /// Data segments transmitted (including retransmissions).
    pub data_segments_sent: u64,
    /// Retransmitted segments (total).
    pub retransmits: u64,
    /// Retransmitted segments inside the measurement window.
    pub retransmits_window: u64,
    /// Retransmission timeouts fired.
    pub rto_count: u64,
    /// In-order payload bytes delivered to the application (total).
    pub delivered_bytes: u64,
    /// In-order payload bytes delivered inside the measurement window.
    pub delivered_bytes_window: u64,
    /// In-order segments delivered (total).
    pub delivered_segments: u64,
    /// Minimum RTT sample observed.
    pub min_rtt: Option<SimDuration>,
    /// Final smoothed RTT.
    pub srtt: Option<SimDuration>,
    /// Final congestion window in bytes (sender side).
    pub final_cwnd: u64,
    /// ECN CE marks seen (receiver) or echoes processed (sender).
    pub ecn_marks: u64,
}

/// A protocol endpoint attached to a host: one side of one flow.
///
/// The `elephants-tcp` crate implements this for TCP senders and receivers;
/// tests implement toy protocols directly.
pub trait FlowEndpoint: Send {
    /// The flow is starting (sender begins transmitting).
    fn on_start(&mut self, ctx: &mut Ctx);

    /// A packet addressed to this endpoint arrived.
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx);

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx);

    /// The measurement window begins: snapshot counters.
    fn on_mark(&mut self, _now: SimTime) {}

    /// Telemetry read-out at a sample tick: what the flight recorder sees.
    ///
    /// Called on *sender* endpoints only, through `&self` — implementations
    /// must not mutate state or draw randomness (recording must observe,
    /// never perturb). The default — endpoints with nothing to report —
    /// returns `None` and the sample is skipped.
    fn telemetry_probe(&self, _now: SimTime) -> Option<FlowProbe> {
        None
    }

    /// Invariant probe for the strict-mode checker: structural properties
    /// that must hold after any event touching this flow (scoreboard
    /// conservation, `snd_una ≤ snd_nxt`, cwnd floor, CCA sanity).
    /// Read-only — must not mutate state or draw randomness. The default
    /// — endpoints with nothing to check — reports nothing; the common
    /// clean case returns the empty vector, which never allocates.
    fn check_invariants(&self) -> Vec<CheckFailure> {
        Vec::new()
    }

    /// Final counters for the run summary.
    fn report(&self) -> EndpointReport;

    /// Downcasting hook so experiment code can read protocol-specific state.
    fn as_any(&self) -> &dyn Any;
}

/// Handle for one armed instance of a per-endpoint timer.
///
/// Returned by [`Ctx::set_timer`]. Arming a timer kind again (or calling
/// [`Ctx::cancel_timer`]) invalidates every earlier token of that kind:
/// the superseded firing is silently dropped by the simulator. Endpoints
/// therefore *re-arm* timers instead of tracking stale deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerToken {
    kind: TimerKind,
    gen: u32,
}

impl TimerToken {
    /// The timer kind this token arms.
    pub fn kind(&self) -> TimerKind {
        self.kind
    }
}

/// Arming generations for one endpoint's timers: one counter per kind.
/// A scheduled `Timer` event fires only if its generation still matches,
/// which gives O(1) cancellation with lazy deletion in the event queue.
#[derive(Debug, Default)]
struct TimerGens {
    /// Start, Rto, Pace, DelAck.
    named: [u32; 4],
    /// `TimerKind::Custom` tags, grown on first use (tests/extensions).
    custom: Vec<(u8, u32)>,
}

impl TimerGens {
    fn named_idx(kind: TimerKind) -> Option<usize> {
        match kind {
            TimerKind::Start => Some(0),
            TimerKind::Rto => Some(1),
            TimerKind::Pace => Some(2),
            TimerKind::DelAck => Some(3),
            TimerKind::Custom(_) => None,
        }
    }

    fn current(&self, kind: TimerKind) -> u32 {
        match Self::named_idx(kind) {
            Some(i) => self.named[i],
            None => {
                let TimerKind::Custom(tag) = kind else { unreachable!() };
                self.custom.iter().find(|(t, _)| *t == tag).map_or(0, |(_, g)| *g)
            }
        }
    }

    fn bump(&mut self, kind: TimerKind) -> u32 {
        match Self::named_idx(kind) {
            Some(i) => {
                self.named[i] += 1;
                self.named[i]
            }
            None => {
                let TimerKind::Custom(tag) = kind else { unreachable!() };
                match self.custom.iter_mut().find(|(t, _)| *t == tag) {
                    Some((_, g)) => {
                        *g += 1;
                        *g
                    }
                    None => {
                        self.custom.push((tag, 1));
                        1
                    }
                }
            }
        }
    }
}

/// Per-event context handed to endpoints.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The flow this endpoint belongs to.
    pub flow: FlowId,
    /// Which side of the flow this endpoint is.
    pub dir: Dir,
    /// The host node this endpoint lives on.
    pub local: NodeId,
    /// The host node of the peer endpoint.
    pub peer: NodeId,
    /// Deterministic per-run RNG.
    pub rng: &'a mut SmallRng,
    emitted: &'a mut Vec<Packet>,
    timers: &'a mut Vec<(TimerKind, SimTime, u32)>,
    gens: &'a mut TimerGens,
}

impl Ctx<'_> {
    /// Transmit `pkt` from the local host now.
    #[inline]
    pub fn send(&mut self, pkt: Packet) {
        self.emitted.push(pkt);
    }

    /// Arrange for [`FlowEndpoint::on_timer`] to be called at `at`.
    ///
    /// At most one instance per kind is armed: setting a kind again moves
    /// the firing (the previously scheduled instance is cancelled), so
    /// endpoints re-arm freely instead of filtering stale firings. Times in
    /// the past are clamped to `now` — the timer fires as soon as possible.
    #[inline]
    pub fn set_timer(&mut self, kind: TimerKind, at: SimTime) -> TimerToken {
        let at = at.max(self.now);
        let gen = self.gens.bump(kind);
        self.timers.push((kind, at, gen));
        TimerToken { kind, gen }
    }

    /// Cancel the armed instance of `kind`, if any. Idempotent.
    #[inline]
    pub fn cancel_timer(&mut self, kind: TimerKind) {
        self.gens.bump(kind);
    }
}

struct FlowSlot {
    sender_node: NodeId,
    receiver_node: NodeId,
    sender: Box<dyn FlowEndpoint>,
    receiver: Box<dyn FlowEndpoint>,
    sender_gens: TimerGens,
    receiver_gens: TimerGens,
    start: SimTime,
}

/// Run-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Total simulated time.
    pub duration: SimDuration,
    /// Time at which the measurement window opens.
    pub warmup: SimDuration,
    /// Hard cap on processed events (runaway protection).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(2),
            max_events: u64::MAX,
        }
    }
}

/// Per-flow slice of a [`RunSummary`].
#[derive(Debug, Clone, Copy)]
pub struct FlowReport {
    /// The flow.
    pub flow: FlowId,
    /// Host the sender ran on.
    pub sender_node: NodeId,
    /// Sender-side counters.
    pub sender: EndpointReport,
    /// Receiver-side counters.
    pub receiver: EndpointReport,
}

impl FlowReport {
    /// Goodput over the measurement window, bits per second.
    pub fn window_goodput_bps(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.receiver.delivered_bytes_window as f64 * 8.0 / window.as_secs_f64()
    }
}

/// Bottleneck-link counters over the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BottleneckReport {
    /// Bytes serialized over the whole run.
    pub bytes_tx_total: u64,
    /// Bytes serialized inside the measurement window.
    pub bytes_tx_window: u64,
    /// Queue-discipline counters (whole run).
    pub aqm: AqmStats,
    /// Packets destroyed by fault injection.
    pub fault_losses: u64,
    /// Packets destroyed while a fault held the link down.
    pub down_drops: u64,
    /// Packets delayed out of order by the reorder model.
    pub reordered: u64,
    /// Extra copies delivered by the duplicate model.
    pub duplicated: u64,
    /// Largest bottleneck-queue depth observed, in packets.
    pub peak_qlen_pkts: u64,
    /// Fault-plan events that actually fired before the run ended
    /// (events scheduled past `duration` never fire and are not counted).
    pub fault_events_applied: u64,
}

/// One instrumented link's counters in a [`RunSummary`].
#[derive(Debug, Clone, Copy)]
pub struct LinkReport {
    /// The link.
    pub link: LinkId,
    /// The link's serialization rate at the end of the run, bits/s (for
    /// per-link utilization; mid-run `SetBandwidth` faults move it).
    pub rate_bps: u64,
    /// The link's counters.
    pub report: BottleneckReport,
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-flow reports, indexed by flow id.
    pub flows: Vec<FlowReport>,
    /// Primary-bottleneck counters (the first designated link); kept as a
    /// scalar so single-bottleneck consumers are untouched.
    pub bottleneck: BottleneckReport,
    /// Per-bottleneck-link counters, in designation order. Length 1 on a
    /// dumbbell, one entry per shaped hop on a parking lot.
    pub links: Vec<LinkReport>,
    /// Length of the measurement window.
    pub window: SimDuration,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Events processed.
    pub events_processed: u64,
}

/// The discrete-event simulator.
///
/// Owns the topology, the flows and the event queue; `run()` drives
/// everything to completion deterministically.
pub struct Simulator {
    topo: Topology,
    flows: Vec<FlowSlot>,
    events: EventQueue,
    rng: SmallRng,
    cfg: SimConfig,
    now: SimTime,
    marked: bool,
    started: bool,
    processed: u64,
    /// `bytes_tx` of each designated bottleneck link at the warmup mark,
    /// aligned with `topo.bottleneck_links()`.
    mark_bytes: Vec<u64>,
    /// Installed fault actions; `Event::Fault { idx }` indexes this table.
    fault_actions: Vec<FaultAction>,
    /// Flight-recorder slot; empty by default (recording off).
    recorder: RecorderHandle,
    /// Invariant-checker slot; empty by default (checking off). Same
    /// zero-cost-when-off discipline as the recorder: the hot loop pays
    /// one predictable untaken branch per event.
    checker: Option<Box<Checker>>,
    /// Subject of the event in flight (set by `checker_pre_event`, read by
    /// `run_event_checks`); meaningless while checking is off.
    check_subject: (Option<FlowId>, Option<LinkId>),
    scratch_pkts: Vec<Packet>,
    scratch_timers: Vec<(TimerKind, SimTime, u32)>,
}

impl Simulator {
    /// Create a simulator over `topo` with deterministic seed `seed`.
    pub fn new(topo: Topology, cfg: SimConfig, seed: u64) -> Self {
        assert!(cfg.warmup <= cfg.duration, "warmup longer than run");
        // A zero-width measurement window (warmup == duration on a nonzero
        // run) would make every windowed rate a division by zero downstream.
        assert!(
            cfg.duration.is_zero() || cfg.warmup < cfg.duration,
            "zero-width measurement window: warmup ({:?}) must be shorter than duration ({:?})",
            cfg.warmup,
            cfg.duration,
        );
        Simulator {
            topo,
            flows: Vec::new(),
            events: EventQueue::new(),
            rng: SmallRng::seed_from_u64(seed),
            cfg,
            now: SimTime::ZERO,
            marked: false,
            started: false,
            processed: 0,
            mark_bytes: Vec::new(),
            fault_actions: Vec::new(),
            recorder: RecorderHandle::null(),
            checker: None,
            check_subject: (None, None),
            scratch_pkts: Vec::with_capacity(64),
            scratch_timers: Vec::with_capacity(8),
        }
    }

    /// Access the topology (e.g. to install the bottleneck AQM).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Shared access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a flow between two host nodes; returns its id.
    ///
    /// The flow starts (sender's `on_start`) at `start`.
    pub fn add_flow(
        &mut self,
        sender_node: NodeId,
        receiver_node: NodeId,
        sender: Box<dyn FlowEndpoint>,
        receiver: Box<dyn FlowEndpoint>,
        start: SimTime,
    ) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowSlot {
            sender_node,
            receiver_node,
            sender,
            receiver,
            sender_gens: TimerGens::default(),
            receiver_gens: TimerGens::default(),
            start,
        });
        id
    }

    /// Number of registered flows.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// Install a validated [`FaultPlan`] on `link`.
    ///
    /// Each event is scheduled through the ordinary event queue (timer
    /// wheel + heap), interleaving with packet and timer events in the
    /// engine's exact `(time, seq)` total order — a faulted fixed-seed run
    /// is therefore just as byte-reproducible as an un-faulted one.
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`]; validate
    /// user-supplied plans before they reach the simulator.
    pub fn install_fault_plan(&mut self, link: LinkId, plan: &FaultPlan) {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        for ev in &plan.events {
            let idx = self.fault_actions.len() as u32;
            self.fault_actions.push(ev.action);
            self.events.schedule(SimTime::ZERO + ev.at, Event::Fault { link, idx });
        }
    }

    /// Install a flight recorder and start the sample clock.
    ///
    /// The first tick fires one interval into the run; each tick re-arms
    /// itself until the configured duration. Sample ticks read state
    /// through `&self` accessors, draw no randomness, and are excluded
    /// from the processed-event counter, so a recorded run reports the
    /// same metrics, byte for byte, as an unrecorded one.
    pub fn install_recorder(&mut self, rec: Box<dyn Recorder>, cfg: RecorderConfig) {
        self.recorder.install(rec, cfg);
        self.events.schedule(SimTime::ZERO + cfg.interval, Event::Sample);
    }

    /// Remove and return the installed recorder (post-run recovery).
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// Whether a recorder is installed.
    pub fn recording(&self) -> bool {
        self.recorder.is_active()
    }

    /// Enable runtime invariant checking for this run.
    ///
    /// [`CheckMode::Audit`] counts violations into a [`CheckReport`];
    /// [`CheckMode::Strict`] panics on the first one; [`CheckMode::Off`]
    /// removes any installed checker. Checking observes and never
    /// perturbs: a checked run produces byte-identical metrics to an
    /// unchecked one.
    pub fn set_check_mode(&mut self, mode: CheckMode) {
        self.checker = match mode {
            CheckMode::Off => None,
            m => Some(Box::new(Checker::new(m))),
        };
    }

    /// The active check mode.
    pub fn check_mode(&self) -> CheckMode {
        self.checker.as_ref().map_or(CheckMode::Off, |c| c.mode())
    }

    /// Remove the checker and return its report (post-run recovery).
    pub fn take_check_report(&mut self) -> Option<CheckReport> {
        self.checker.take().map(|c| c.into_report())
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// True when the run stopped on the `max_events` budget with work still
    /// pending — the signature of a runaway configuration.
    pub fn budget_exhausted(&mut self) -> bool {
        self.processed >= self.cfg.max_events && self.events.peek_time().is_some()
    }

    /// Borrow a flow's sender endpoint (for downcasting in tests/analysis).
    pub fn sender(&self, flow: FlowId) -> &dyn FlowEndpoint {
        self.flows[flow.0 as usize].sender.as_ref()
    }

    /// Borrow a flow's receiver endpoint.
    pub fn receiver(&self, flow: FlowId) -> &dyn FlowEndpoint {
        self.flows[flow.0 as usize].receiver.as_ref()
    }

    fn start_flows_once(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for (i, slot) in self.flows.iter().enumerate() {
            self.events.schedule(
                slot.start,
                Event::Timer {
                    flow: FlowId(i as u32),
                    dir: Dir::Sender,
                    kind: TimerKind::Start,
                    gen: slot.sender_gens.current(TimerKind::Start),
                },
            );
        }
    }

    /// Advance the simulation up to (and including) time `until`.
    ///
    /// Can be called repeatedly with increasing times to step the
    /// simulation and inspect state in between (endpoints, link/queue
    /// stats). `run()` drives this to `cfg.duration` and builds the
    /// summary.
    ///
    /// Check dispatch is decided *here*, once per call, not per event: the
    /// `checker.is_some()` test is hoisted into a register-resident flag
    /// that the loop, [`Simulator::deliver`], and the per-emitted-packet
    /// path of [`Simulator::dispatch`] branch on, instead of re-loading
    /// and testing the checker `Option` at every site. The checker can
    /// only be (un)installed between `run_until` calls, so the one-time
    /// selection is exact, and the checked path sees byte-for-byte the
    /// same event schedule — checking still observes, never perturbs.
    ///
    /// A `const CHECKED: bool` monomorphization of the loop (two
    /// branch-free instantiations) was tried first and *measured slower*
    /// on the benchmark host than this spelling — duplicating the event
    /// loop doubles its instruction footprint and perturbs LLVM's
    /// inlining of the dispatch fan-out, which costs more than the
    /// predicted-not-taken flag tests save. See DESIGN.md §3d.
    pub fn run_until(&mut self, until: SimTime) {
        let checked = self.checker.is_some();
        self.run_until_impl(checked, until);
    }

    fn run_until_impl(&mut self, checked: bool, until: SimTime) {
        self.start_flows_once();
        let mark_at = SimTime::ZERO + self.cfg.warmup;
        while let Some(at) = self.events.peek_time() {
            if at > until {
                break;
            }
            if self.processed >= self.cfg.max_events {
                break;
            }
            let (at, ev) = self.events.pop().expect("peeked");
            if !self.marked && at >= mark_at {
                self.do_mark(mark_at);
            }
            self.now = at;
            // Sample ticks are excluded from the processed count: the
            // counter (and the max_events budget it feeds) must mean the
            // same thing whether or not a recorder is installed.
            if !matches!(ev, Event::Sample) {
                self.processed += 1;
            }
            if checked {
                self.checker_pre_event(at, &ev);
            }
            match ev {
                Event::LinkTxDone { link } => {
                    let now = self.now;
                    self.topo.link_mut(link).on_tx_done(now, &mut self.events, &mut self.rng);
                }
                Event::Deliver { node, pkt } => {
                    let pkt = self.events.take_packet(pkt);
                    self.deliver(checked, node, pkt);
                }
                Event::Fault { link, idx } => {
                    let action = self.fault_actions[idx as usize];
                    let now = self.now;
                    self.topo
                        .link_mut(link)
                        .apply_fault(action, now, &mut self.events, &mut self.rng);
                }
                Event::Sample => {
                    let now = self.now;
                    self.sample_tick(now);
                    let next = now + self.recorder.config().interval;
                    if self.recorder.is_active() && next <= SimTime::ZERO + self.cfg.duration {
                        self.events.schedule(next, Event::Sample);
                    }
                }
                Event::Timer { flow, dir, kind, gen } => {
                    // Lazy cancellation: a firing from a superseded arming
                    // (re-armed or cancelled since) is dropped unseen.
                    let slot = &self.flows[flow.0 as usize];
                    let current = match dir {
                        Dir::Sender => slot.sender_gens.current(kind),
                        Dir::Receiver => slot.receiver_gens.current(kind),
                    };
                    if gen != current {
                        continue;
                    }
                    self.dispatch(checked, flow, dir, |ep, ctx| match kind {
                        TimerKind::Start => ep.on_start(ctx),
                        k => ep.on_timer(k, ctx),
                    });
                }
            }
            if checked {
                self.run_event_checks();
            }
        }
        self.now = until.max(self.now);
    }

    /// Checker preamble: time monotonicity is verified on every pop —
    /// including firings the Timer arm drops as cancelled, which still
    /// must come off the wheel in (time, seq) order. The event's subject
    /// (flow/link) is captured before the event consumes it, for
    /// attribution in the post-event checks.
    #[cold]
    #[inline(never)]
    fn checker_pre_event(&mut self, at: SimTime, ev: &Event) {
        let subject = match ev {
            Event::Deliver { pkt, .. } => (Some(self.events.packet(*pkt).flow), None),
            Event::Timer { flow, .. } => (Some(*flow), None),
            Event::LinkTxDone { link } | Event::Fault { link, .. } => (None, Some(*link)),
            Event::Sample => (None, None),
        };
        self.check_subject = subject;
        if let Some(ck) = self.checker.as_deref_mut() {
            ck.on_event(at, self.processed);
        }
    }

    /// Post-event invariant checks against the event's subject (stashed by
    /// [`Simulator::checker_pre_event`]): the touched flow's sender-side
    /// structure (scoreboard, CCA) and/or the touched link's queue
    /// accounting. Take/put-back lets the checker and the rest of `self`
    /// be borrowed together.
    #[cold]
    #[inline(never)]
    fn run_event_checks(&mut self) {
        let (flow, link) = self.check_subject;
        let Some(mut ck) = self.checker.take() else { return };
        let (now, seq) = (self.now, self.processed);
        if let Some(f) = flow {
            let fails = self.flows[f.0 as usize].sender.check_invariants();
            if !fails.is_empty() {
                ck.record(fails, Some(f.0 as u64), None, seq, now);
            }
        }
        if let Some(l) = link {
            let fails = self.topo.link(l).aqm.check_invariants(now, false);
            if !fails.is_empty() {
                ck.record(fails, None, Some(l.0 as u64), seq, now);
            }
        }
        self.checker = Some(ck);
    }

    /// Finalize-time checks: global packet conservation summed over every
    /// link, the *per-link* conservation identities, the deep (O(n))
    /// per-queue scans, and a last pass over every flow's structural
    /// invariants.
    ///
    /// The per-link identities localize what the global sum can only
    /// detect in aggregate (on a multi-bottleneck topology, two
    /// compensating miscounts on different hops cancel globally):
    ///
    /// * **offer conservation** — every packet offered to a link's egress
    ///   is down-dropped, still queued, dropped by the AQM (at enqueue or
    ///   dequeue), or was dequeued:
    ///   `pkts_offered == down_drops + dequeued + dropped_enqueue +
    ///   dropped_dequeue + backlog`. (FqCodel's cross-flow eviction is
    ///   covered because evicted packets count in `dropped_enqueue`, and
    ///   `enqueued` — whose eviction bookkeeping differs per AQM — does
    ///   not appear.)
    /// * **tx accounting** — every dequeued packet was serialized exactly
    ///   once: `pkts_tx == dequeued`.
    fn run_final_checks(&mut self) {
        let Some(mut ck) = self.checker.take() else { return };
        let (now, seq) = (self.now, self.processed);
        let (mut dropped, mut duplicated, mut resident) = (0u64, 0u64, 0u64);
        for link in self.topo.links() {
            let ls = link.stats();
            let qs = link.aqm.stats();
            dropped += qs.dropped_enqueue + qs.dropped_dequeue + ls.down_drops + ls.fault_losses;
            duplicated += ls.duplicated;
            let backlog = link.aqm.backlog_pkts() as u64;
            resident += backlog;
            let mut fails = link.aqm.check_invariants(now, true);
            let accounted =
                ls.down_drops + qs.dequeued + qs.dropped_enqueue + qs.dropped_dequeue + backlog;
            if ls.pkts_offered != accounted {
                fails.push(CheckFailure::new(
                    "link_conservation",
                    format!(
                        "offered {} != down_drops {} + dequeued {} + dropped_enqueue {} \
                         + dropped_dequeue {} + backlog {}",
                        ls.pkts_offered,
                        ls.down_drops,
                        qs.dequeued,
                        qs.dropped_enqueue,
                        qs.dropped_dequeue,
                        backlog
                    ),
                ));
            }
            if ls.pkts_tx != qs.dequeued {
                fails.push(CheckFailure::new(
                    "link_tx_accounting",
                    format!("pkts_tx {} != dequeued {}", ls.pkts_tx, qs.dequeued),
                ));
            }
            if !fails.is_empty() {
                ck.record(fails, None, Some(link.id.0 as u64), seq, now);
            }
        }
        let in_flight = self.events.packets_live() as u64;
        ck.check_packet_conservation(duplicated, dropped, resident, in_flight, seq, now);
        for (i, slot) in self.flows.iter().enumerate() {
            let fails = slot.sender.check_invariants();
            if !fails.is_empty() {
                ck.record(fails, Some(i as u64), None, seq, now);
            }
        }
        self.checker = Some(ck);
    }

    /// Run to completion and produce the summary.
    pub fn run(&mut self) -> RunSummary {
        let end = SimTime::ZERO + self.cfg.duration;
        self.run_until(end);
        self.finalize()
    }

    /// Close out a run driven by [`Simulator::run_until`] and produce the
    /// summary: `run()` is exactly `run_until(duration)` + `finalize()`, so
    /// callers that step the clock themselves (tracing, watchdogs) get
    /// byte-identical summaries to a one-shot run.
    pub fn finalize(&mut self) -> RunSummary {
        // A run shorter than the warmup still needs a (degenerate) mark.
        if !self.marked {
            self.do_mark(SimTime::ZERO + self.cfg.warmup);
        }
        self.now = SimTime::ZERO + self.cfg.duration;
        self.run_final_checks();
        self.summary(self.processed)
    }

    fn do_mark(&mut self, at: SimTime) {
        self.marked = true;
        for slot in &mut self.flows {
            slot.sender.on_mark(at);
            slot.receiver.on_mark(at);
        }
        self.mark_bytes = self
            .topo
            .bottleneck_links()
            .iter()
            .map(|&l| self.topo.link(l).stats().bytes_tx)
            .collect();
    }

    /// One sample tick: read flow and bottleneck-queue state into the
    /// recorder. Pure observation — no endpoint mutation, no RNG draws.
    fn sample_tick(&mut self, now: SimTime) {
        let cfg = self.recorder.config();
        let Some(rec) = self.recorder.recorder_mut() else { return };
        if cfg.flows {
            for (i, slot) in self.flows.iter().enumerate() {
                if let Some(probe) = slot.sender.telemetry_probe(now) {
                    rec.on_flow_sample(&FlowSample {
                        t: now,
                        flow: FlowId(i as u32),
                        probe,
                        delivered_bytes: slot.receiver.report().delivered_bytes,
                        retx: slot.sender.report().retransmits,
                    });
                }
            }
        }
        if cfg.queue {
            for &bn in self.topo.bottleneck_links() {
                let link = self.topo.link(bn);
                let stats = link.aqm_stats();
                rec.on_queue_sample(&QueueSample {
                    t: now,
                    link: bn,
                    backlog_pkts: link.aqm.backlog_pkts() as u64,
                    backlog_bytes: link.aqm.backlog_bytes(),
                    dropped: stats.dropped_total(),
                    marked: stats.marked,
                    control: link.aqm.control_state(),
                });
            }
        }
    }

    fn deliver(&mut self, checked: bool, node: NodeId, pkt: Packet) {
        use crate::topology::NodeKind;
        match self.topo.kind(node) {
            NodeKind::Router => {
                let Some(link) = self.topo.route(node, pkt.dst) else {
                    debug_assert!(false, "no route from {node:?} to {:?}", pkt.dst);
                    return;
                };
                let now = self.now;
                self.topo.link_mut(link).offer(pkt, now, &mut self.events, &mut self.rng);
            }
            NodeKind::Host => {
                debug_assert_eq!(pkt.dst, node, "packet delivered to wrong host");
                if checked {
                    if let Some(ck) = self.checker.as_deref_mut() {
                        ck.note_delivered();
                    }
                }
                // Data packets go to the receiver endpoint, ACKs to the sender.
                let dir = if pkt.is_data() { Dir::Receiver } else { Dir::Sender };
                self.dispatch(checked, pkt.flow, dir, |ep, ctx| ep.on_packet(&pkt, ctx));
            }
        }
    }

    fn dispatch(
        &mut self,
        checked: bool,
        flow: FlowId,
        dir: Dir,
        f: impl FnOnce(&mut dyn FlowEndpoint, &mut Ctx),
    ) {
        let mut emitted = std::mem::take(&mut self.scratch_pkts);
        let mut timers = std::mem::take(&mut self.scratch_timers);
        let (local, _peer);
        {
            let slot = &mut self.flows[flow.0 as usize];
            let (ep, gens, l, p) = match dir {
                Dir::Sender => {
                    (slot.sender.as_mut(), &mut slot.sender_gens, slot.sender_node, slot.receiver_node)
                }
                Dir::Receiver => {
                    (slot.receiver.as_mut(), &mut slot.receiver_gens, slot.receiver_node, slot.sender_node)
                }
            };
            local = l;
            _peer = p;
            let mut ctx = Ctx {
                now: self.now,
                flow,
                dir,
                local: l,
                peer: p,
                rng: &mut self.rng,
                emitted: &mut emitted,
                timers: &mut timers,
                gens,
            };
            f(ep, &mut ctx);
        }
        for (kind, at, gen) in timers.drain(..) {
            self.events.schedule(at, Event::Timer { flow, dir, kind, gen });
        }
        for pkt in emitted.drain(..) {
            let Some(link) = self.topo.route(local, pkt.dst) else {
                debug_assert!(false, "no route from host {local:?} to {:?}", pkt.dst);
                continue;
            };
            if checked {
                if let Some(ck) = self.checker.as_deref_mut() {
                    ck.note_injected();
                }
            }
            let now = self.now;
            self.topo.link_mut(link).offer(pkt, now, &mut self.events, &mut self.rng);
        }
        self.scratch_pkts = emitted;
        self.scratch_timers = timers;
    }

    fn summary(&self, processed: u64) -> RunSummary {
        let flows = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, slot)| FlowReport {
                flow: FlowId(i as u32),
                sender_node: slot.sender_node,
                sender: slot.sender.report(),
                receiver: slot.receiver.report(),
            })
            .collect();
        let links: Vec<LinkReport> = self
            .topo
            .bottleneck_links()
            .iter()
            .enumerate()
            .map(|(i, &bn)| {
                let link = self.topo.link(bn);
                // Before the mark fires `mark_bytes` is empty (degenerate
                // zero-warmup slices); treat the mark snapshot as zero.
                let mark = self.mark_bytes.get(i).copied().unwrap_or(0);
                LinkReport {
                    link: bn,
                    rate_bps: link.rate.as_bps(),
                    report: BottleneckReport {
                        bytes_tx_total: link.stats().bytes_tx,
                        bytes_tx_window: link.stats().bytes_tx - mark,
                        aqm: link.aqm_stats(),
                        fault_losses: link.stats().fault_losses,
                        down_drops: link.stats().down_drops,
                        reordered: link.stats().reordered,
                        duplicated: link.stats().duplicated,
                        peak_qlen_pkts: link.stats().peak_qlen_pkts,
                        fault_events_applied: link.stats().fault_events_applied,
                    },
                }
            })
            .collect();
        let bottleneck = links.first().map(|l| l.report).unwrap_or_default();
        RunSummary {
            flows,
            bottleneck,
            links,
            window: self.cfg.duration - self.cfg.warmup,
            duration: self.cfg.duration,
            events_processed: processed,
        }
    }
}

/// Identify the bottleneck link id of a simulator (convenience).
pub fn bottleneck_of(sim: &Simulator) -> Option<LinkId> {
    sim.topology().bottleneck_link()
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use crate::packet::{AckInfo, PacketKind};
    use crate::topology::DumbbellSpec;
    use crate::units::Bandwidth;

    /// A toy sender: blasts `n` fixed-size segments at start, counts ACKs.
    struct BlastSender {
        peer: NodeId,
        n: u64,
        size: u32,
        acked: u64,
        report: EndpointReport,
    }

    impl FlowEndpoint for BlastSender {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for seq in 0..self.n {
                let pkt = Packet::data(ctx.flow, ctx.local, self.peer, seq, self.size, ctx.now);
                ctx.send(pkt);
                self.report.data_segments_sent += 1;
            }
        }
        fn on_packet(&mut self, pkt: &Packet, _ctx: &mut Ctx) {
            if let PacketKind::Ack(info) = pkt.kind {
                self.acked = self.acked.max(info.cum);
            }
        }
        fn on_timer(&mut self, _k: TimerKind, _ctx: &mut Ctx) {}
        fn report(&self) -> EndpointReport {
            self.report
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// A toy receiver: acks every data packet cumulatively (in-order only).
    struct CountingReceiver {
        peer: NodeId,
        next: u64,
        report: EndpointReport,
    }

    impl FlowEndpoint for CountingReceiver {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
            if pkt.is_data() {
                if pkt.seq == self.next {
                    self.next += 1;
                    self.report.delivered_segments += 1;
                    self.report.delivered_bytes += pkt.size as u64;
                }
                let ack = Packet::ack(
                    ctx.flow,
                    ctx.local,
                    self.peer,
                    pkt.seq,
                    AckInfo::cumulative(self.next),
                    ctx.now,
                );
                ctx.send(ack);
            }
        }
        fn on_timer(&mut self, _k: TimerKind, _ctx: &mut Ctx) {}
        fn report(&self) -> EndpointReport {
            self.report
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn build_sim() -> Simulator {
        let spec = DumbbellSpec::paper(Bandwidth::from_mbps(100));
        let topo = spec.build();
        let cfg = SimConfig {
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::ZERO,
            max_events: u64::MAX,
        };
        Simulator::new(topo, cfg, 42)
    }

    fn add_blast(sim: &mut Simulator, pair: usize, n: u64) -> FlowId {
        let spec = DumbbellSpec::paper(Bandwidth::from_mbps(100));
        let s = spec.sender(pair);
        let r = spec.receiver(pair);
        sim.add_flow(
            s,
            r,
            Box::new(BlastSender { peer: r, n, size: 1250, acked: 0, report: Default::default() }),
            Box::new(CountingReceiver { peer: s, next: 0, report: Default::default() }),
            SimTime::ZERO,
        )
    }

    #[test]
    fn end_to_end_delivery_and_ack() {
        let mut sim = build_sim();
        let flow = add_blast(&mut sim, 0, 10);
        let summary = sim.run();
        let rep = &summary.flows[flow.0 as usize];
        assert_eq!(rep.receiver.delivered_segments, 10);
        assert_eq!(rep.receiver.delivered_bytes, 12_500);
        // The sender observed the final cumulative ACK.
        let sender = sim.sender(flow).as_any().downcast_ref::<BlastSender>().unwrap();
        assert_eq!(sender.acked, 10);
    }

    #[test]
    fn rtt_floor_respected() {
        // One tiny packet: delivery after one-way latency; ACK after full RTT.
        let mut sim = build_sim();
        let flow = add_blast(&mut sim, 0, 1);
        sim.run();
        let sender = sim.sender(flow).as_any().downcast_ref::<BlastSender>().unwrap();
        assert_eq!(sender.acked, 1);
    }

    #[test]
    fn two_flows_share_bottleneck_counters() {
        let mut sim = build_sim();
        add_blast(&mut sim, 0, 100);
        add_blast(&mut sim, 1, 100);
        let summary = sim.run();
        assert_eq!(summary.flows.len(), 2);
        // All 200 data packets crossed the bottleneck.
        assert_eq!(summary.bottleneck.aqm.dequeued, 200);
        assert_eq!(summary.bottleneck.bytes_tx_total, 200 * 1250);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = build_sim();
            add_blast(&mut sim, 0, 50);
            add_blast(&mut sim, 1, 50);
            let s = sim.run();
            (s.events_processed, s.bottleneck.bytes_tx_total)
        };
        assert_eq!(run(), run());
    }

    /// Exercises the timer API edge cases: past deadlines, re-arming,
    /// cancellation.
    struct TimerProbe {
        fires: Vec<(u8, SimTime)>,
    }

    impl FlowEndpoint for TimerProbe {
        fn on_start(&mut self, ctx: &mut Ctx) {
            // A deadline in the past is clamped to `now` (fires asap) in
            // all builds, rather than corrupting the event order.
            ctx.set_timer(TimerKind::Custom(0), SimTime::ZERO);
            // Re-arming the same kind supersedes the earlier instance.
            ctx.set_timer(TimerKind::Custom(1), ctx.now + SimDuration::from_millis(10));
            ctx.set_timer(TimerKind::Custom(1), ctx.now + SimDuration::from_millis(20));
            // A cancelled instance never fires.
            ctx.set_timer(TimerKind::Custom(2), ctx.now + SimDuration::from_millis(15));
            ctx.cancel_timer(TimerKind::Custom(2));
        }
        fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
            let TimerKind::Custom(tag) = kind else { panic!("unexpected {kind:?}") };
            self.fires.push((tag, ctx.now));
        }
        fn report(&self) -> EndpointReport {
            EndpointReport::default()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn timer_clamp_rearm_and_cancel() {
        let mut sim = build_sim();
        let spec = DumbbellSpec::paper(Bandwidth::from_mbps(100));
        let start = SimTime::ZERO + SimDuration::from_millis(5);
        let flow = sim.add_flow(
            spec.sender(0),
            spec.receiver(0),
            Box::new(TimerProbe { fires: Vec::new() }),
            Box::new(CountingReceiver { peer: spec.sender(0), next: 0, report: Default::default() }),
            start,
        );
        sim.run();
        let probe = sim.sender(flow).as_any().downcast_ref::<TimerProbe>().unwrap();
        assert_eq!(
            probe.fires,
            vec![
                // Past deadline fired immediately at the flow's start time.
                (0, start),
                // Only the re-armed instance fired; the cancelled one never did.
                (1, start + SimDuration::from_millis(20)),
            ]
        );
    }

    #[test]
    fn fault_plan_dispatches_in_time_order() {
        use crate::fault::{FaultAction, FaultPlan};
        let mut sim = build_sim();
        add_blast(&mut sim, 0, 100);
        let bn = sim.topology().bottleneck_link().unwrap();
        let plan = FaultPlan::flap(SimDuration::from_millis(10), SimDuration::from_millis(50))
            .with(
                SimDuration::from_millis(100),
                FaultAction::SetBandwidth(crate::units::Bandwidth::from_mbps(50)),
            );
        sim.install_fault_plan(bn, &plan);
        let summary = sim.run();
        let link = sim.topology().link(bn);
        assert_eq!(link.stats().fault_events_applied, 3);
        assert!(link.is_up(), "LinkUp must have fired after LinkDown");
        assert_eq!(link.rate, crate::units::Bandwidth::from_mbps(50));
        // The blast starts at t=0 and the flap cuts in at 10 ms: some of the
        // 100 packets are destroyed at the dark link.
        assert!(link.stats().down_drops > 0 || summary.bottleneck.bytes_tx_total > 0);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        use crate::fault::{FaultAction, FaultPlan, LossModel};
        let run = || {
            let mut sim = build_sim();
            add_blast(&mut sim, 0, 200);
            add_blast(&mut sim, 1, 200);
            let bn = sim.topology().bottleneck_link().unwrap();
            let plan = FaultPlan::flap(SimDuration::from_millis(20), SimDuration::from_millis(30))
                .with(
                    SimDuration::from_millis(60),
                    FaultAction::SetLossModel(LossModel::GilbertElliott { p_gb: 0.05, p_bg: 0.3 }),
                );
            sim.install_fault_plan(bn, &plan);
            let s = sim.run();
            let st = sim.topology().link(bn).stats();
            (s.events_processed, st.pkts_tx, st.down_drops, st.fault_losses)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn installing_invalid_plan_panics() {
        use crate::fault::{FaultAction, FaultEvent, FaultPlan};
        let mut sim = build_sim();
        let bn = sim.topology().bottleneck_link().unwrap();
        let plan = FaultPlan {
            events: vec![
                FaultEvent { at: SimDuration::from_secs(2), action: FaultAction::LinkDown },
                FaultEvent { at: SimDuration::from_secs(1), action: FaultAction::LinkUp },
            ],
        };
        sim.install_fault_plan(bn, &plan);
    }

    #[test]
    fn sliced_run_with_finalize_matches_one_shot() {
        use crate::fault::FaultPlan;
        let run_one_shot = || {
            let mut sim = build_sim();
            add_blast(&mut sim, 0, 100);
            let bn = sim.topology().bottleneck_link().unwrap();
            sim.install_fault_plan(
                bn,
                &FaultPlan::flap(SimDuration::from_millis(50), SimDuration::from_millis(100)),
            );
            let s = sim.run();
            (s.events_processed, s.bottleneck.bytes_tx_total, s.bottleneck.bytes_tx_window)
        };
        let run_sliced = || {
            let mut sim = build_sim();
            add_blast(&mut sim, 0, 100);
            let bn = sim.topology().bottleneck_link().unwrap();
            sim.install_fault_plan(
                bn,
                &FaultPlan::flap(SimDuration::from_millis(50), SimDuration::from_millis(100)),
            );
            let end = SimTime::ZERO + SimDuration::from_secs(2);
            let mut t = SimTime::ZERO;
            while t < end {
                t = (t + SimDuration::from_millis(73)).min(end);
                sim.run_until(t);
            }
            let s = sim.finalize();
            (s.events_processed, s.bottleneck.bytes_tx_total, s.bottleneck.bytes_tx_window)
        };
        assert_eq!(run_one_shot(), run_sliced());
    }

    #[test]
    fn budget_exhaustion_is_detectable() {
        let spec = DumbbellSpec::paper(Bandwidth::from_mbps(100));
        let topo = spec.build();
        let cfg = SimConfig {
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::ZERO,
            max_events: 10,
        };
        let mut sim = Simulator::new(topo, cfg, 1);
        let spec = DumbbellSpec::paper(Bandwidth::from_mbps(100));
        let (s, r) = (spec.sender(0), spec.receiver(0));
        sim.add_flow(
            s,
            r,
            Box::new(BlastSender { peer: r, n: 100, size: 1250, acked: 0, report: Default::default() }),
            Box::new(CountingReceiver { peer: s, next: 0, report: Default::default() }),
            SimTime::ZERO,
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(sim.budget_exhausted(), "10-event budget must trip on a 100-packet blast");
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn strict_checker_passes_a_clean_run_without_perturbing_it() {
        use crate::check::CheckMode;
        let run = |mode: CheckMode| {
            let mut sim = build_sim();
            add_blast(&mut sim, 0, 100);
            add_blast(&mut sim, 1, 100);
            sim.set_check_mode(mode);
            let s = sim.run();
            let report = sim.take_check_report();
            ((s.events_processed, s.bottleneck.bytes_tx_total), report)
        };
        let (plain, none) = run(CheckMode::Off);
        assert!(none.is_none());
        let (strict, report) = run(CheckMode::Strict);
        // Checking observes, never perturbs: identical summary.
        assert_eq!(plain, strict);
        let report = report.unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.events_checked > 0);
    }

    #[test]
    fn checker_conservation_covers_faulted_runs() {
        use crate::check::CheckMode;
        use crate::fault::{FaultAction, FaultPlan, LossModel};
        // Flap + random loss exercise every terminal packet state:
        // delivered, down-dropped, fault-lost, and queue-resident.
        let mut sim = build_sim();
        add_blast(&mut sim, 0, 200);
        add_blast(&mut sim, 1, 200);
        let bn = sim.topology().bottleneck_link().unwrap();
        let plan = FaultPlan::flap(SimDuration::from_millis(20), SimDuration::from_millis(30))
            .with(
                SimDuration::from_millis(60),
                FaultAction::SetLossModel(LossModel::GilbertElliott { p_gb: 0.05, p_bg: 0.3 }),
            );
        sim.install_fault_plan(bn, &plan);
        sim.set_check_mode(CheckMode::Strict);
        sim.run();
        let report = sim.take_check_report().unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn parking_lot_reports_per_link_and_passes_strict_checks() {
        use crate::check::CheckMode;
        use crate::topology::ParkingLotSpec;
        let spec = ParkingLotSpec::paper_with_rtt(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(62),
            3,
        );
        let topo = spec.build().unwrap();
        let cfg = SimConfig {
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::ZERO,
            max_events: u64::MAX,
        };
        let mut sim = Simulator::new(topo, cfg, 7);
        // One blast per group: the long flow plus each cross flow.
        for g in 0..4usize {
            let (s, r) = (spec.sender(g), spec.receiver(g));
            sim.add_flow(
                s,
                r,
                Box::new(BlastSender {
                    peer: r,
                    n: 50,
                    size: 1250,
                    acked: 0,
                    report: Default::default(),
                }),
                Box::new(CountingReceiver { peer: s, next: 0, report: Default::default() }),
                SimTime::ZERO,
            );
        }
        sim.set_check_mode(CheckMode::Strict);
        let summary = sim.run();
        let report = sim.take_check_report().unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        // One summary entry per shaped hop; the first mirrors `bottleneck`.
        assert_eq!(summary.links.len(), 3);
        assert_eq!(summary.links[0].report.bytes_tx_total, summary.bottleneck.bytes_tx_total);
        // Hop 0 carries the long group + cross group 1 (100 pkts); the
        // last hop carries the long group + cross group 3.
        assert_eq!(summary.links[0].report.aqm.dequeued, 100);
        assert_eq!(summary.links[2].report.aqm.dequeued, 100);
        // Every flow completed end to end.
        for rep in &summary.flows {
            assert_eq!(rep.receiver.delivered_segments, 50);
        }
    }

    #[test]
    fn window_counters_reset_at_mark() {
        let spec = DumbbellSpec::paper(Bandwidth::from_mbps(100));
        let topo = spec.build();
        let cfg = SimConfig {
            duration: SimDuration::from_secs(2),
            // Mark after everything is done: window counts must be 0.
            warmup: SimDuration::from_millis(1900),
            max_events: u64::MAX,
        };
        let mut sim = Simulator::new(topo, cfg, 1);
        let flow = add_blast(&mut sim, 0, 10);
        let summary = sim.run();
        let rep = &summary.flows[flow.0 as usize];
        assert_eq!(rep.receiver.delivered_bytes_window, 0);
        assert_eq!(summary.bottleneck.bytes_tx_window, 0);
    }
}
