//! Seeded randomized-test harness.
//!
//! The workspace's replacement for `proptest`: property tests run a fixed
//! number of cases, each driven by a [`SmallRng`] whose seed is derived
//! deterministically from the test name and the case index. A failing
//! property panics with the exact seed, so the case reproduces with
//!
//! ```text
//! ELEPHANTS_PROP_SEED=<seed> cargo test -p <crate> <test_name>
//! ```
//!
//! There is no shrinking — cases are small by construction (generators
//! draw bounded sizes), and the deterministic seed makes any failure
//! replayable and debuggable as-is. (Whole-scenario fuzzing with
//! shrinking lives in the `elephants-chaos` crate, which minimizes at
//! the `ScenarioConfig` level instead.)
//!
//! Properties return `Result<(), String>`; the [`prop_check!`],
//! [`prop_check_eq!`] and [`prop_check_ne!`] macros early-return a
//! formatted `Err` the harness attaches to the panic message.
//!
//! # Soaking and replaying
//!
//! Two environment variables tune the harness without a recompile:
//!
//! * `ELEPHANTS_PROP_CASES=N` overrides every property's case count
//!   with the absolute count `N`. Nightly / manual soaks run the suites
//!   at 10–100× depth:
//!
//!   ```text
//!   ELEPHANTS_PROP_CASES=25600 cargo test -q -p elephants-netsim
//!   ```
//!
//!   The per-case seeds are derived from the test name and the case
//!   index alone, so a soak explores a strict superset of the default
//!   run's cases and any failure it finds replays identically at the
//!   default count — via the seed, not the count.
//!
//! * `ELEPHANTS_PROP_SEED=<seed>` runs exactly one case: the replay
//!   path. A failing property panics with the reproducing seed; copy it
//!   from the panic message and re-run the one test:
//!
//!   ```text
//!   ELEPHANTS_PROP_SEED=1234567 cargo test -p <crate> <test_name>
//!   ```
//!
//!   The replay seed takes precedence over `ELEPHANTS_PROP_CASES`.

use crate::rng::{SeedableRng, SmallRng};

/// Default number of cases per property (matches proptest's default scale).
pub const DEFAULT_CASES: u32 = 256;

/// FNV-1a over the test name: stable per-property seed stream base.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Absolute case-count override applied by [`run_cases`], for soaking
/// the property suites at 10–100× depth without a recompile.
pub const PROP_CASES_ENV: &str = "ELEPHANTS_PROP_CASES";

/// The case count [`run_cases`] will actually run for a requested count:
/// the [`PROP_CASES_ENV`] override when set (and parsable), else the
/// requested count unchanged.
pub fn effective_cases(requested: u32) -> u32 {
    match std::env::var(PROP_CASES_ENV) {
        Ok(txt) => txt.parse().unwrap_or_else(|_| {
            panic!("{PROP_CASES_ENV} must be a u32 case count, got '{txt}'")
        }),
        Err(_) => requested,
    }
}

/// Run `property` for `cases` deterministic seeds, panicking with the
/// reproducing seed on the first failure.
///
/// If the `ELEPHANTS_PROP_SEED` environment variable is set, only that
/// seed runs — the replay path for a reported failure. Otherwise, if
/// `ELEPHANTS_PROP_CASES` is set it replaces `cases` as an absolute
/// count (see the module docs' soaking section).
pub fn run_cases<F>(name: &str, cases: u32, mut property: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), String>,
{
    if let Ok(seed_txt) = std::env::var("ELEPHANTS_PROP_SEED") {
        let seed: u64 = seed_txt
            .parse()
            .unwrap_or_else(|_| panic!("ELEPHANTS_PROP_SEED must be a u64, got '{seed_txt}'"));
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Err(msg) = property(&mut rng) {
            panic!("property '{name}' failed under replay seed {seed}: {msg}");
        }
        return;
    }
    let cases = effective_cases(cases);
    let base = name_hash(name);
    for case in 0..cases {
        let seed = base.wrapping_add(case as u64);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Err(msg) = property(&mut rng) {
            panic!(
                "property '{name}' failed on case {case}/{cases} (replay with \
                 ELEPHANTS_PROP_SEED={seed}): {msg}"
            );
        }
    }
}

/// Assert a condition inside a property, early-returning `Err` on failure.
#[macro_export]
macro_rules! prop_check {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "check failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "check failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Assert two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_check_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "check failed at {}:{}: {} == {} ({:?} vs {:?}){}",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                {
                    #[allow(unused_mut, unused_assignments)]
                    let mut extra = String::new();
                    $(extra = format!(": {}", format!($($fmt)+));)?
                    extra
                }
            ));
        }
    }};
}

/// Assert two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_check_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "check failed at {}:{}: {} != {} (both {:?}){}",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                lhs,
                {
                    #[allow(unused_mut, unused_assignments)]
                    let mut extra = String::new();
                    $(extra = format!(": {}", format!($($fmt)+));)?
                    extra
                }
            ));
        }
    }};
}

/// Draw a random `Vec<T>` with a length in `[min_len, max_len)`.
pub fn vec_of<T>(
    rng: &mut SmallRng,
    min_len: usize,
    max_len: usize,
    mut gen: impl FnMut(&mut SmallRng) -> T,
) -> Vec<T> {
    use crate::rng::RngExt;
    let len = rng.random_range(min_len..max_len);
    (0..len).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngExt;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run_cases("always_true", 16, |_| Ok(()));
        run_cases("count_cases", 16, |_| {
            count += 1;
            Ok(())
        });
        // `count` moved into the closure by reference; the harness ran it.
        assert_eq!(count, 16);
    }

    #[test]
    fn effective_cases_defaults_to_the_requested_count() {
        // The suite never runs with the soak override exported, so the
        // pass-through is the observable behaviour here; the override
        // branch is pure string parsing exercised by soak runs.
        if std::env::var(PROP_CASES_ENV).is_err() {
            assert_eq!(effective_cases(256), 256);
            assert_eq!(effective_cases(7), 7);
        }
    }

    #[test]
    #[should_panic(expected = "ELEPHANTS_PROP_SEED")]
    fn failing_property_reports_replay_seed() {
        run_cases("always_false", 4, |_| Err("boom".to_string()));
    }

    #[test]
    fn check_macros_format_failures() {
        fn prop(flag: bool) -> Result<(), String> {
            prop_check!(flag, "flag was {}", flag);
            prop_check_eq!(1 + 1, 2);
            prop_check_ne!(1, 2);
            Ok(())
        }
        assert!(prop(true).is_ok());
        let err = prop(false).unwrap_err();
        assert!(err.contains("flag was false"), "{err}");
    }

    #[test]
    fn vec_of_respects_bounds_and_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let va = vec_of(&mut a, 1, 50, |r| r.random_range(0u64..100));
        let vb = vec_of(&mut b, 1, 50, |r| r.random_range(0u64..100));
        assert_eq!(va, vb);
        assert!(!va.is_empty() && va.len() < 50);
    }
}
