//! Unidirectional links: serialization, propagation, egress queueing.

use crate::event::{Event, EventQueue};
use crate::fault::{LossModel, LossState};
use crate::packet::{NodeId, Packet};
use crate::queue::{Aqm, AqmStats, DropTail};
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use crate::rng::SmallRng;
use elephants_json::{impl_json_newtype, impl_json_struct};

/// Index of a link within the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl_json_newtype!(LinkId);

/// Declarative description of a link (rate + propagation delay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Serialization rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub prop: SimDuration,
}

impl_json_struct!(LinkSpec { rate, prop });

impl LinkSpec {
    /// Construct a link spec.
    pub fn new(rate: Bandwidth, prop: SimDuration) -> Self {
        LinkSpec { rate, prop }
    }
}

/// Byte/packet counters for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets fully serialized onto the wire.
    pub pkts_tx: u64,
    /// Bytes fully serialized onto the wire.
    pub bytes_tx: u64,
    /// Packets destroyed by fault injection after transmission.
    pub fault_losses: u64,
    /// Largest egress-queue depth observed, in packets.
    pub peak_qlen_pkts: u64,
}

/// A unidirectional link with an egress queue discipline.
pub struct Link {
    /// This link's index.
    pub id: LinkId,
    /// Node that transmits onto this link.
    pub src: NodeId,
    /// Node that receives from this link.
    pub dst: NodeId,
    /// Serialization rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub prop: SimDuration,
    /// Egress queue discipline.
    pub aqm: Box<dyn Aqm>,
    /// Random in-flight loss (fault-injection extension; defaults to none).
    pub loss_model: LossModel,
    loss_state: LossState,
    busy: bool,
    stats: LinkStats,
}

impl Link {
    /// Create a link with the given queue discipline.
    pub fn new(id: LinkId, src: NodeId, dst: NodeId, spec: LinkSpec, aqm: Box<dyn Aqm>) -> Self {
        Link {
            id,
            src,
            dst,
            rate: spec.rate,
            prop: spec.prop,
            aqm,
            loss_model: LossModel::None,
            loss_state: LossState::default(),
            busy: false,
            stats: LinkStats::default(),
        }
    }

    /// Create a link with an effectively unlimited droptail queue — used for
    /// the non-bottleneck access links of the dumbbell.
    pub fn with_big_fifo(id: LinkId, src: NodeId, dst: NodeId, spec: LinkSpec) -> Self {
        // 1 GiB of buffer: large enough never to drop on a 25G access link
        // in these experiments, mirroring host ring buffers + switch fabric.
        Link::new(id, src, dst, spec, Box::new(DropTail::new(1 << 30)))
    }

    /// Offer a packet to this link's egress queue, starting transmission if
    /// the transmitter is idle.
    pub fn offer(&mut self, pkt: Packet, now: SimTime, events: &mut EventQueue, rng: &mut SmallRng) {
        match self.aqm.enqueue(pkt, now, rng) {
            crate::queue::Verdict::Dropped => {}
            _ => {
                let depth = self.aqm.backlog_pkts() as u64;
                if depth > self.stats.peak_qlen_pkts {
                    self.stats.peak_qlen_pkts = depth;
                }
                if !self.busy {
                    self.start_tx(now, events, rng);
                }
            }
        }
    }

    /// Called when serialization of the current packet completes.
    pub fn on_tx_done(&mut self, now: SimTime, events: &mut EventQueue, rng: &mut SmallRng) {
        self.busy = false;
        self.start_tx(now, events, rng);
    }

    fn start_tx(&mut self, now: SimTime, events: &mut EventQueue, rng: &mut SmallRng) {
        debug_assert!(!self.busy);
        let res = self.aqm.dequeue(now, rng);
        let Some(pkt) = res.pkt else { return };
        let ser = self.rate.serialization_time(pkt.size as u64);
        self.busy = true;
        self.stats.pkts_tx += 1;
        self.stats.bytes_tx += pkt.size as u64;
        events.schedule(now + ser, Event::LinkTxDone { link: self.id });
        let lost = self.loss_state.should_drop(&self.loss_model, rng);
        if lost {
            self.stats.fault_losses += 1;
        } else {
            events.schedule_deliver(now + ser + self.prop, self.dst, pkt);
        }
    }

    /// Transmission counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Queue-discipline counters.
    pub fn aqm_stats(&self) -> AqmStats {
        self.aqm.stats()
    }

    /// Whether the transmitter is currently serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.busy
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("id", &self.id)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("rate", &self.rate)
            .field("prop", &self.prop)
            .field("aqm", &self.aqm.name())
            .field("busy", &self.busy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::rng::SeedableRng;

    fn mk_link(rate_mbps: u64, prop_ms: u64) -> Link {
        Link::with_big_fifo(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            LinkSpec::new(Bandwidth::from_mbps(rate_mbps), SimDuration::from_millis(prop_ms)),
        )
    }

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet::data(FlowId(0), NodeId(0), NodeId(1), seq, size, SimTime::ZERO)
    }

    #[test]
    fn single_packet_schedules_txdone_and_deliver() {
        let mut link = mk_link(10, 5);
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        // 1250 B at 10 Mbps = 1 ms serialization.
        let (t1, e1) = ev.pop().unwrap();
        assert_eq!(t1, SimTime::from_nanos(1_000_000));
        assert!(matches!(e1, Event::LinkTxDone { .. }));
        let (t2, e2) = ev.pop().unwrap();
        assert_eq!(t2, SimTime::from_nanos(6_000_000)); // + 5 ms prop
        match e2 {
            Event::Deliver { node, pkt } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(ev.take_packet(pkt).seq, 0);
            }
            _ => panic!("expected Deliver"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize_sequentially() {
        let mut link = mk_link(10, 0);
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        link.offer(pkt(1, 1250), SimTime::ZERO, &mut ev, &mut rng);
        // Only the first TxDone/Deliver pair exists until TxDone is handled.
        let (t1, _) = ev.pop().unwrap(); // TxDone at 1 ms
        let (_, _) = ev.pop().unwrap(); // Deliver pkt0 at 1 ms (prop 0)
        assert_eq!(t1, SimTime::from_nanos(1_000_000));
        link.on_tx_done(t1, &mut ev, &mut rng);
        let (t2, _) = ev.pop().unwrap(); // TxDone pkt1 at 2 ms
        assert_eq!(t2, SimTime::from_nanos(2_000_000));
        assert_eq!(link.stats().pkts_tx, 2);
        assert_eq!(link.stats().bytes_tx, 2500);
    }

    #[test]
    fn fault_loss_drops_delivery_but_not_txdone() {
        let mut link = mk_link(10, 0);
        link.loss_model = LossModel::Bernoulli { p: 1.0 };
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        let (_, e1) = ev.pop().unwrap();
        assert!(matches!(e1, Event::LinkTxDone { .. }));
        assert!(ev.pop().is_none(), "delivery must be suppressed");
        assert_eq!(link.stats().fault_losses, 1);
    }

    #[test]
    fn idle_txdone_is_harmless() {
        let mut link = mk_link(10, 0);
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.on_tx_done(SimTime::ZERO, &mut ev, &mut rng);
        assert!(ev.is_empty());
        assert!(!link.is_busy());
    }
}
