//! Unidirectional links: serialization, propagation, egress queueing.

use crate::event::{Event, EventQueue};
use crate::fault::{DuplicateModel, FaultAction, LossModel, LossState, ReorderModel};
use crate::packet::{NodeId, Packet};
use crate::queue::{Aqm, AqmStats, DropTail};
use crate::record::{EventRing, TraceEvent, TraceEventKind, TRACE_NO_FLOW};
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use crate::rng::{RngExt, SmallRng};
use elephants_json::{impl_json_newtype, impl_json_struct};

/// Index of a link within the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl_json_newtype!(LinkId);

/// Declarative description of a link (rate + propagation delay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Serialization rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub prop: SimDuration,
}

impl_json_struct!(LinkSpec { rate, prop });

impl LinkSpec {
    /// Construct a link spec.
    pub fn new(rate: Bandwidth, prop: SimDuration) -> Self {
        LinkSpec { rate, prop }
    }
}

/// Byte/packet counters for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets offered to this link's egress (before any queue/down-link
    /// decision). Anchors the per-link conservation identity:
    /// `pkts_offered == down_drops + dequeued + dropped_enqueue +
    /// dropped_dequeue + backlog`.
    pub pkts_offered: u64,
    /// Packets fully serialized onto the wire.
    pub pkts_tx: u64,
    /// Bytes fully serialized onto the wire.
    pub bytes_tx: u64,
    /// Packets destroyed by fault injection after transmission.
    pub fault_losses: u64,
    /// Packets destroyed because the link was down.
    pub down_drops: u64,
    /// Packets delayed out of order by the reorder model.
    pub reordered: u64,
    /// Extra copies delivered by the duplicate model.
    pub duplicated: u64,
    /// Timed fault actions applied to this link.
    pub fault_events_applied: u64,
    /// Largest egress-queue depth observed, in packets.
    pub peak_qlen_pkts: u64,
}

/// A unidirectional link with an egress queue discipline.
pub struct Link {
    /// This link's index.
    pub id: LinkId,
    /// Node that transmits onto this link.
    pub src: NodeId,
    /// Node that receives from this link.
    pub dst: NodeId,
    /// Serialization rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub prop: SimDuration,
    /// Egress queue discipline.
    pub aqm: Box<dyn Aqm>,
    /// Random in-flight loss (fault-injection extension; defaults to none).
    pub loss_model: LossModel,
    /// Random in-flight reordering (defaults to none).
    pub reorder: ReorderModel,
    /// Random in-flight duplication (defaults to none).
    pub duplicate: DuplicateModel,
    /// Uniform random extra propagation delay in `[0, jitter]` per packet
    /// (defaults to zero). Unlike [`ReorderModel`] this perturbs *every*
    /// packet, modelling serialization variance rather than path changes.
    pub jitter: SimDuration,
    loss_state: LossState,
    up: bool,
    busy: bool,
    stats: LinkStats,
    /// Per-packet trace ring (flight recorder); `None` — the default —
    /// costs one predictable branch per queue operation.
    trace: Option<Box<EventRing>>,
    /// One-entry memo of `(rate, size) -> serialization time`. A link's
    /// traffic is dominated by one segment size (MSS data one way, fixed
    /// ACKs the other), so this turns the per-packet u128 division in
    /// [`Bandwidth::serialization_time`] into a compare. Keyed on the rate
    /// too: a `SetBandwidth` fault (or direct `rate` mutation) simply
    /// misses once. Pure caching of an exact value — schedules are
    /// bit-identical with and without it.
    ser_memo: Option<(Bandwidth, u32, SimDuration)>,
}

impl Link {
    /// Create a link with the given queue discipline.
    pub fn new(id: LinkId, src: NodeId, dst: NodeId, spec: LinkSpec, aqm: Box<dyn Aqm>) -> Self {
        Link {
            id,
            src,
            dst,
            rate: spec.rate,
            prop: spec.prop,
            aqm,
            loss_model: LossModel::None,
            reorder: ReorderModel::default(),
            duplicate: DuplicateModel::default(),
            jitter: SimDuration::ZERO,
            loss_state: LossState::default(),
            up: true,
            busy: false,
            stats: LinkStats::default(),
            trace: None,
            ser_memo: None,
        }
    }

    /// Create a link with an effectively unlimited droptail queue — used for
    /// the non-bottleneck access links of the dumbbell.
    pub fn with_big_fifo(id: LinkId, src: NodeId, dst: NodeId, spec: LinkSpec) -> Self {
        // 1 GiB of buffer: large enough never to drop on a 25G access link
        // in these experiments, mirroring host ring buffers + switch fabric.
        Link::new(id, src, dst, spec, Box::new(DropTail::new(1 << 30)))
    }

    /// Offer a packet to this link's egress queue, starting transmission if
    /// the transmitter is idle. While the link is down the packet is
    /// destroyed (a dark link has no queue to hold it).
    pub fn offer(&mut self, pkt: Packet, now: SimTime, events: &mut EventQueue, rng: &mut SmallRng) {
        self.stats.pkts_offered += 1;
        if !self.up {
            self.stats.down_drops += 1;
            if let Some(ring) = &mut self.trace {
                ring.push(TraceEvent {
                    t: now,
                    kind: TraceEventKind::Drop,
                    flow: pkt.flow,
                    seq: pkt.seq,
                    size: pkt.size,
                });
            }
            return;
        }
        match self.aqm.enqueue(pkt, now, rng) {
            crate::queue::Verdict::Dropped => {
                if let Some(ring) = &mut self.trace {
                    ring.push(TraceEvent {
                        t: now,
                        kind: TraceEventKind::Drop,
                        flow: pkt.flow,
                        seq: pkt.seq,
                        size: pkt.size,
                    });
                }
            }
            _ => {
                if let Some(ring) = &mut self.trace {
                    let kind =
                        if pkt.retx { TraceEventKind::Retx } else { TraceEventKind::Enqueue };
                    ring.push(TraceEvent { t: now, kind, flow: pkt.flow, seq: pkt.seq, size: pkt.size });
                }
                let depth = self.aqm.backlog_pkts() as u64;
                if depth > self.stats.peak_qlen_pkts {
                    self.stats.peak_qlen_pkts = depth;
                }
                if !self.busy {
                    self.start_tx(now, events, rng);
                }
            }
        }
    }

    /// Called when serialization of the current packet completes.
    pub fn on_tx_done(&mut self, now: SimTime, events: &mut EventQueue, rng: &mut SmallRng) {
        self.busy = false;
        self.start_tx(now, events, rng);
    }

    fn start_tx(&mut self, now: SimTime, events: &mut EventQueue, rng: &mut SmallRng) {
        debug_assert!(!self.busy);
        if !self.up {
            return;
        }
        let res = self.aqm.dequeue(now, rng);
        let Some(pkt) = res.pkt else { return };
        if let Some(ring) = &mut self.trace {
            ring.push(TraceEvent {
                t: now,
                kind: TraceEventKind::Dequeue,
                flow: pkt.flow,
                seq: pkt.seq,
                size: pkt.size,
            });
        }
        let ser = match self.ser_memo {
            Some((rate, size, ser)) if rate == self.rate && size == pkt.size => ser,
            _ => {
                let ser = self.rate.serialization_time(pkt.size as u64);
                self.ser_memo = Some((self.rate, pkt.size, ser));
                ser
            }
        };
        self.busy = true;
        self.stats.pkts_tx += 1;
        self.stats.bytes_tx += pkt.size as u64;
        events.schedule(now + ser, Event::LinkTxDone { link: self.id });
        let lost = self.loss_state.should_drop(&self.loss_model, rng);
        if lost {
            self.stats.fault_losses += 1;
            return;
        }
        // Per-packet impairment draws happen in event order on the shared
        // run RNG, so a fixed seed yields a fixed impairment pattern. Each
        // draw is gated on its model being active: the default (no
        // impairments) consumes no randomness and leaves un-faulted runs
        // byte-identical to pre-fault-injection builds.
        let mut delay = self.prop;
        if !self.jitter.is_zero() {
            delay += SimDuration::from_nanos(rng.random_range(0..=self.jitter.as_nanos()));
        }
        if !self.reorder.is_none() && rng.random::<f64>() < self.reorder.p {
            self.stats.reordered += 1;
            delay += self.reorder.extra;
        }
        events.schedule_deliver(now + ser + delay, self.dst, pkt);
        if !self.duplicate.is_none() && rng.random::<f64>() < self.duplicate.p {
            self.stats.duplicated += 1;
            events.schedule_deliver(now + ser + delay, self.dst, pkt);
        }
    }

    /// Apply a timed fault action (dispatched by the simulator).
    pub fn apply_fault(
        &mut self,
        action: FaultAction,
        now: SimTime,
        events: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        self.stats.fault_events_applied += 1;
        if let Some(ring) = &mut self.trace {
            ring.push(TraceEvent {
                t: now,
                kind: TraceEventKind::Fault,
                flow: TRACE_NO_FLOW,
                seq: 0,
                size: 0,
            });
        }
        match action {
            FaultAction::LinkDown => self.set_down(),
            FaultAction::LinkUp => self.set_up(now, events, rng),
            FaultAction::SetBandwidth(bw) => self.rate = bw,
            FaultAction::SetDelay(d) => self.prop = d,
            FaultAction::SetLossModel(m) => self.loss_model = m,
        }
    }

    /// Take the link down. The transmitter freezes: already-queued packets
    /// stay buffered (router memory survives the cut) and resume on
    /// [`Link::set_up`], while packets *offered* during the outage are
    /// destroyed and counted as `down_drops`. A packet mid-serialization
    /// finishes its `LinkTxDone` and its delivery still arrives — faults
    /// cut the link, not photons already in the fiber. Idempotent.
    pub fn set_down(&mut self) {
        self.up = false;
    }

    /// Bring the link back up, restarting transmission if a packet is
    /// queued and the transmitter is idle. Idempotent.
    pub fn set_up(&mut self, now: SimTime, events: &mut EventQueue, rng: &mut SmallRng) {
        if self.up {
            return;
        }
        self.up = true;
        if !self.busy {
            self.start_tx(now, events, rng);
        }
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Transmission counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Queue-discipline counters.
    pub fn aqm_stats(&self) -> AqmStats {
        self.aqm.stats()
    }

    /// Whether the transmitter is currently serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Start tracing queue operations into a ring of at most `capacity`
    /// events. Replaces any earlier ring.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Box::new(EventRing::new(capacity)));
    }

    /// The trace ring, if tracing is enabled.
    pub fn trace(&self) -> Option<&EventRing> {
        self.trace.as_deref()
    }

    /// Remove and return the trace ring (post-run drain).
    pub fn take_trace(&mut self) -> Option<Box<EventRing>> {
        self.trace.take()
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("id", &self.id)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("rate", &self.rate)
            .field("prop", &self.prop)
            .field("aqm", &self.aqm.name())
            .field("busy", &self.busy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::rng::SeedableRng;

    fn mk_link(rate_mbps: u64, prop_ms: u64) -> Link {
        Link::with_big_fifo(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            LinkSpec::new(Bandwidth::from_mbps(rate_mbps), SimDuration::from_millis(prop_ms)),
        )
    }

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet::data(FlowId(0), NodeId(0), NodeId(1), seq, size, SimTime::ZERO)
    }

    #[test]
    fn single_packet_schedules_txdone_and_deliver() {
        let mut link = mk_link(10, 5);
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        // 1250 B at 10 Mbps = 1 ms serialization.
        let (t1, e1) = ev.pop().unwrap();
        assert_eq!(t1, SimTime::from_nanos(1_000_000));
        assert!(matches!(e1, Event::LinkTxDone { .. }));
        let (t2, e2) = ev.pop().unwrap();
        assert_eq!(t2, SimTime::from_nanos(6_000_000)); // + 5 ms prop
        match e2 {
            Event::Deliver { node, pkt } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(ev.take_packet(pkt).seq, 0);
            }
            _ => panic!("expected Deliver"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize_sequentially() {
        let mut link = mk_link(10, 0);
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        link.offer(pkt(1, 1250), SimTime::ZERO, &mut ev, &mut rng);
        // Only the first TxDone/Deliver pair exists until TxDone is handled.
        let (t1, _) = ev.pop().unwrap(); // TxDone at 1 ms
        let (_, _) = ev.pop().unwrap(); // Deliver pkt0 at 1 ms (prop 0)
        assert_eq!(t1, SimTime::from_nanos(1_000_000));
        link.on_tx_done(t1, &mut ev, &mut rng);
        let (t2, _) = ev.pop().unwrap(); // TxDone pkt1 at 2 ms
        assert_eq!(t2, SimTime::from_nanos(2_000_000));
        assert_eq!(link.stats().pkts_tx, 2);
        assert_eq!(link.stats().bytes_tx, 2500);
    }

    #[test]
    fn fault_loss_drops_delivery_but_not_txdone() {
        let mut link = mk_link(10, 0);
        link.loss_model = LossModel::Bernoulli { p: 1.0 };
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        let (_, e1) = ev.pop().unwrap();
        assert!(matches!(e1, Event::LinkTxDone { .. }));
        assert!(ev.pop().is_none(), "delivery must be suppressed");
        assert_eq!(link.stats().fault_losses, 1);
    }

    #[test]
    fn idle_txdone_is_harmless() {
        let mut link = mk_link(10, 0);
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.on_tx_done(SimTime::ZERO, &mut ev, &mut rng);
        assert!(ev.is_empty());
        assert!(!link.is_busy());
    }

    #[test]
    fn down_link_destroys_offers_and_freezes_backlog() {
        let mut link = mk_link(10, 0);
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        // Queue two packets, let the first start serializing.
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        link.offer(pkt(1, 1250), SimTime::ZERO, &mut ev, &mut rng);
        link.set_down();
        assert!(!link.is_up());
        // Offers during the outage are destroyed.
        link.offer(pkt(2, 1250), SimTime::ZERO, &mut ev, &mut rng);
        assert_eq!(link.stats().down_drops, 1);
        // The in-flight packet still completes...
        let (t1, _) = ev.pop().unwrap(); // TxDone pkt0
        let (_, _) = ev.pop().unwrap(); // Deliver pkt0
        link.on_tx_done(t1, &mut ev, &mut rng);
        // ...but the frozen transmitter does not pick up the backlog.
        assert!(ev.is_empty(), "down link must not serialize the backlog");
        assert!(!link.is_busy());
        // Coming back up resumes transmission of the surviving packet.
        link.set_up(t1, &mut ev, &mut rng);
        let (_, e) = ev.pop().unwrap();
        assert!(matches!(e, Event::LinkTxDone { .. }));
        assert_eq!(link.stats().pkts_tx, 2);
    }

    #[test]
    fn fault_actions_change_rate_delay_and_loss() {
        let mut link = mk_link(10, 5);
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.apply_fault(
            FaultAction::SetBandwidth(Bandwidth::from_mbps(20)),
            SimTime::ZERO,
            &mut ev,
            &mut rng,
        );
        link.apply_fault(
            FaultAction::SetDelay(SimDuration::from_millis(1)),
            SimTime::ZERO,
            &mut ev,
            &mut rng,
        );
        link.apply_fault(
            FaultAction::SetLossModel(LossModel::Bernoulli { p: 1.0 }),
            SimTime::ZERO,
            &mut ev,
            &mut rng,
        );
        assert_eq!(link.stats().fault_events_applied, 3);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        // 1250 B at 20 Mbps = 0.5 ms serialization; loss model eats delivery.
        let (t1, e1) = ev.pop().unwrap();
        assert_eq!(t1, SimTime::from_nanos(500_000));
        assert!(matches!(e1, Event::LinkTxDone { .. }));
        assert!(ev.pop().is_none());
        assert_eq!(link.stats().fault_losses, 1);
    }

    #[test]
    fn duplicate_model_delivers_twice() {
        let mut link = mk_link(10, 0);
        link.duplicate = DuplicateModel { p: 1.0 };
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        let (_, _) = ev.pop().unwrap(); // TxDone
        let (_, d1) = ev.pop().unwrap();
        let (_, d2) = ev.pop().unwrap();
        assert!(matches!(d1, Event::Deliver { .. }));
        assert!(matches!(d2, Event::Deliver { .. }));
        assert_eq!(link.stats().duplicated, 1);
    }

    #[test]
    fn reorder_model_delays_marked_packets() {
        let mut link = mk_link(10, 0);
        link.reorder = ReorderModel { p: 1.0, extra: SimDuration::from_millis(3) };
        let mut ev = EventQueue::new();
        let mut rng = SmallRng::seed_from_u64(0);
        link.offer(pkt(0, 1250), SimTime::ZERO, &mut ev, &mut rng);
        let (_, _) = ev.pop().unwrap(); // TxDone at 1 ms
        let (td, d) = ev.pop().unwrap();
        assert!(matches!(d, Event::Deliver { .. }));
        // 1 ms serialization + 0 prop + 3 ms reorder penalty.
        assert_eq!(td, SimTime::from_nanos(4_000_000));
        assert_eq!(link.stats().reordered, 1);
    }
}
