//! Bandwidth units and bandwidth-delay-product helpers.

use crate::time::{SimDuration, NANOS_PER_SEC};
use elephants_json::impl_json_newtype;
use std::fmt;

/// A link or path bandwidth, stored as bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl_json_newtype!(Bandwidth);

impl Bandwidth {
    /// Zero bandwidth (used as a sentinel for "unknown").
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Construct from kilobits per second.
    #[inline]
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// Construct from megabits per second.
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Construct from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Megabits per second, fractional.
    #[inline]
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Gigabits per second, fractional.
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` onto a link of this bandwidth.
    ///
    /// Uses 128-bit intermediate math so that 25 Gbps × multi-gigabyte values
    /// cannot overflow.
    #[inline]
    pub fn serialization_time(self, bytes: u64) -> SimDuration {
        assert!(self.0 > 0, "serialization over zero-bandwidth link");
        let bits = (bytes as u128) * 8;
        let ns = bits * NANOS_PER_SEC as u128 / self.0 as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// How many bytes this bandwidth delivers in `d`.
    #[inline]
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        ((self.0 as u128 * d.as_nanos() as u128) / (8 * NANOS_PER_SEC as u128)) as u64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else if self.0 >= 1_000_000 {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// Bandwidth-delay product in bytes (paper Eq. 1): `BDP = BW * RTT / 8`.
///
/// ```
/// use elephants_netsim::units::{bdp_bytes, Bandwidth};
/// use elephants_netsim::time::SimDuration;
/// // 100 Mbps * 62 ms = 775 kB
/// assert_eq!(bdp_bytes(Bandwidth::from_mbps(100), SimDuration::from_millis(62)), 775_000);
/// ```
#[inline]
pub fn bdp_bytes(bw: Bandwidth, rtt: SimDuration) -> u64 {
    ((bw.as_bps() as u128 * rtt.as_nanos() as u128) / (8 * NANOS_PER_SEC as u128)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Bandwidth::from_gbps(25).as_bps(), 25_000_000_000);
        assert_eq!(Bandwidth::from_mbps(100).as_mbps_f64(), 100.0);
        assert_eq!(Bandwidth::from_kbps(10).as_bps(), 10_000);
    }

    #[test]
    fn serialization_time_exact() {
        // 1250 bytes at 10 Mbps = 1 ms.
        let bw = Bandwidth::from_mbps(10);
        assert_eq!(bw.serialization_time(1250), SimDuration::from_millis(1));
        // 8900-byte jumbo frame at 25 Gbps = 2848 ns.
        let bw = Bandwidth::from_gbps(25);
        assert_eq!(bw.serialization_time(8900).as_nanos(), 2848);
    }

    #[test]
    fn serialization_time_no_overflow_at_scale() {
        let bw = Bandwidth::from_gbps(100);
        // 16 BDP of a 25G*62ms path is about 3.1 GB; must not overflow.
        let big = 4_000_000_000u64;
        let t = bw.serialization_time(big);
        assert!((t.as_secs_f64() - 0.32).abs() < 1e-6);
    }

    #[test]
    fn bdp_matches_paper_eq1() {
        let rtt = SimDuration::from_millis(62);
        assert_eq!(bdp_bytes(Bandwidth::from_mbps(100), rtt), 775_000);
        assert_eq!(bdp_bytes(Bandwidth::from_mbps(500), rtt), 3_875_000);
        assert_eq!(bdp_bytes(Bandwidth::from_gbps(1), rtt), 7_750_000);
        assert_eq!(bdp_bytes(Bandwidth::from_gbps(10), rtt), 77_500_000);
        assert_eq!(bdp_bytes(Bandwidth::from_gbps(25), rtt), 193_750_000);
    }

    #[test]
    fn bytes_in_inverts_serialization() {
        let bw = Bandwidth::from_gbps(1);
        let d = bw.serialization_time(123_456);
        let b = bw.bytes_in(d);
        assert!((b as i64 - 123_456).abs() <= 1);
    }

    #[test]
    fn display() {
        assert_eq!(Bandwidth::from_gbps(25).to_string(), "25Gbps");
        assert_eq!(Bandwidth::from_mbps(500).to_string(), "500Mbps");
    }
}
