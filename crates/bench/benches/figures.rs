//! One bench per paper figure/table: regenerates a reduced-scale slice of
//! the corresponding experiment grid and times it. The *full* regeneration
//! (all bandwidths, paper durations) is done by the `elephants-experiments`
//! binaries (`cargo run --release -p elephants-experiments --bin fig2` …);
//! these benches keep the assembly paths exercised and their cost tracked.

use elephants_bench::harness::Criterion;
use elephants_bench::{criterion_group, criterion_main};
use elephants_experiments::{
    fig2, fig3, fig4, fig5, fig6, fig7, fig8, table3, RunCache, PAPER_QUEUES_BDP,
};

fn opts() -> elephants_experiments::RunOptions {
    elephants_bench::bench_opts()
}

/// 100 Mbps slice only: 6 queue lengths × the relevant pair set.
const BWS: [u64; 1] = [100_000_000];

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("bench_fig2_throughput_fifo", |b| {
        b.iter(|| fig2(&opts(), &RunCache::disabled(), &BWS).tables.len())
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("bench_fig3_jain_fifo", |b| {
        b.iter(|| fig3(&opts(), &RunCache::disabled(), &BWS).tables.len())
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("bench_fig4_throughput_red", |b| {
        b.iter(|| fig4(&opts(), &RunCache::disabled(), &BWS).tables.len())
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("bench_fig5_jain_red", |b| {
        b.iter(|| fig5(&opts(), &RunCache::disabled(), &BWS).tables.len())
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("bench_fig6_jain_fq_codel", |b| {
        b.iter(|| fig6(&opts(), &RunCache::disabled(), &BWS).tables.len())
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("bench_fig7_utilization", |b| {
        b.iter(|| fig7(&opts(), &RunCache::disabled(), &BWS).tables.len())
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("bench_fig8_retransmissions", |b| {
        b.iter(|| fig8(&opts(), &RunCache::disabled(), &BWS).tables.len())
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("bench_table3_overall", |b| {
        // Single queue length keeps the 27-row table affordable per sample.
        b.iter(|| table3(&opts(), &RunCache::disabled(), &BWS, &PAPER_QUEUES_BDP[..1]).len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_table3
);
criterion_main!(benches);
