//! Engine micro-benchmarks: event heap, AQM hot paths, end-to-end
//! simulation throughput (events/second).

use elephants_aqm::{build_aqm, AqmKind};
use elephants_bench::bench_scenario;
use elephants_bench::harness::{BenchmarkId, Criterion, Throughput};
use elephants_bench::criterion_group;
use elephants_cca::CcaKind;
use elephants_experiments::Runner;
use elephants_netsim::{Event, EventQueue, FlowId, NodeId, Packet, SimTime, TimerKind};
use elephants_netsim::{SeedableRng, SmallRng};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(
                        SimTime::from_nanos((i * 37) % 1_000_000),
                        Event::Timer {
                            flow: FlowId(i as u32),
                            dir: elephants_netsim::Dir::Sender,
                            kind: TimerKind::Rto,
                            gen: 0,
                        },
                    );
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                count
            })
        });
    }
    g.finish();
}

fn bench_aqm_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("aqm_enqueue_dequeue");
    for kind in [AqmKind::Fifo, AqmKind::Red, AqmKind::FqCodel, AqmKind::Codel] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut aqm = build_aqm(kind, 10_000_000, 1_000_000_000, 1500, false, 7);
                let mut rng = SmallRng::seed_from_u64(1);
                let mut now = SimTime::ZERO;
                let mut delivered = 0u64;
                for i in 0..10_000u64 {
                    now += elephants_netsim::SimDuration::from_micros(12);
                    let pkt = Packet::data(FlowId((i % 64) as u32), NodeId(0), NodeId(1), i, 1500, now);
                    aqm.enqueue(pkt, now, &mut rng);
                    if i % 2 == 0
                        && aqm.dequeue(now, &mut rng).pkt.is_some() {
                            delivered += 1;
                        }
                }
                delivered
            })
        });
    }
    g.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    for (name, cca) in [("cubic", CcaKind::Cubic), ("bbr2", CcaKind::BbrV2)] {
        g.bench_function(format!("2s_100mbps_{name}"), |b| {
            let cfg = bench_scenario(cca, CcaKind::Cubic, AqmKind::Fifo, 2.0);
            b.iter(|| Runner::new(&cfg).seed(1).run());
        });
    }
    g.finish();
}

/// The tracked scenarios behind `BENCH_netsim.json`: the paper's 25 Gbps
/// FIFO cell at quick scale (the regression gate's subject), the same
/// cell at the standard preset — Table 2's 500-flow workload at
/// paper-faithful scale — and the 3-hop parking lot exercising the
/// multi-bottleneck path. See `elephants_bench::report`.
fn bench_regression(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(5);
    g.bench_function("25gbps_fifo_quick", |b| {
        let cfg = elephants_bench::regression_scenario();
        b.iter(|| Runner::new(&cfg).seed(1).run());
    });
    g.bench_function("25gbps_fifo_table2", |b| {
        let cfg = elephants_bench::table2_scenario();
        b.iter(|| Runner::new(&cfg).seed(1).run());
    });
    g.bench_function("1gbps_parkinglot3_quick", |b| {
        let cfg = elephants_bench::parkinglot_scenario();
        b.iter(|| Runner::new(&cfg).seed(1).run());
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_aqm_hot_path, bench_sim_throughput, bench_regression);

// Hand-rolled main instead of `criterion_main!`: after the benches run, the
// tracked measurements are folded into the BENCH_netsim.json trajectory and
// (when BENCH_GATE=1) the regression gate decides the exit code.
fn main() {
    let mut c = elephants_bench::harness::Criterion::configured_from_args();
    benches(&mut c);
    c.final_summary();
    elephants_bench::report::emit_engine_report(&c);
    if let Err(e) = elephants_bench::report::gate_from_env(&c) {
        eprintln!("bench gate: FAIL: {e}");
        std::process::exit(1);
    }
}
