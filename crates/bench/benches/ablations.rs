//! Ablation benches for design choices called out in DESIGN.md:
//!
//! * HyStart on/off — how much does delay-based slow-start exit change
//!   CUBIC's startup cost (retransmissions) through a shallow buffer?
//! * BBRv2 `loss_thresh` sensitivity — the 2 % threshold is the lever
//!   behind the paper's FIFO-vs-RED asymmetry.
//! * Pacing vs ACK clocking cost in the simulator.
//!
//! These are correctness-shaped benches: the measured value is wall time,
//! but each iteration also returns the metric the ablation is about, so a
//! regression in *behaviour* shows up as an implausible runtime change.

use elephants_bench::harness::Criterion;
use elephants_bench::{criterion_group, criterion_main};
use elephants_cca::{BbrV2, BbrV2Config, Cubic, CubicConfig};
use elephants_netsim::prelude::*;
use elephants_tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};

fn run_cubic(hystart: bool) -> u64 {
    let bw = Bandwidth::from_mbps(100);
    let spec = DumbbellSpec::paper(bw);
    let mut topo = spec.build();
    let bdp = bdp_bytes(bw, topo.base_rtt());
    topo.set_bottleneck_aqm(Box::new(DropTail::new(bdp / 2)));
    let mut sim = Simulator::new(
        topo,
        SimConfig {
            duration: SimDuration::from_secs(3),
            warmup: SimDuration::ZERO,
            max_events: u64::MAX,
        },
        5,
    );
    let cca = Box::new(Cubic::new(CubicConfig { hystart, ..Default::default() }, 8900));
    let tx = TcpSender::new(SenderConfig::default(), spec.receiver(0), cca);
    let rx = TcpReceiver::new(ReceiverConfig::default(), spec.sender(0));
    let f = sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
    let s = sim.run();
    s.flows[f.0 as usize].sender.retransmits
}

fn run_bbr2(loss_thresh: f64) -> u64 {
    let bw = Bandwidth::from_mbps(100);
    let spec = DumbbellSpec::paper(bw);
    let mut topo = spec.build();
    let bdp = bdp_bytes(bw, topo.base_rtt());
    topo.set_bottleneck_aqm(Box::new(DropTail::new(bdp / 2)));
    let mut sim = Simulator::new(
        topo,
        SimConfig {
            duration: SimDuration::from_secs(3),
            warmup: SimDuration::ZERO,
            max_events: u64::MAX,
        },
        5,
    );
    let cca = Box::new(BbrV2::new(BbrV2Config { loss_thresh, ..Default::default() }, 8900));
    let tx = TcpSender::new(SenderConfig::default(), spec.receiver(0), cca);
    let rx = TcpReceiver::new(ReceiverConfig::default(), spec.sender(0));
    let f = sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
    let s = sim.run();
    s.flows[f.0 as usize].sender.retransmits
}

fn bench_hystart_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("cubic_hystart_on", |b| b.iter(|| run_cubic(true)));
    g.bench_function("cubic_hystart_off", |b| b.iter(|| run_cubic(false)));
    g.finish();
}

fn bench_bbr2_loss_thresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for thresh in [0.02, 0.10] {
        g.bench_function(format!("bbr2_loss_thresh_{thresh}"), |b| b.iter(|| run_bbr2(thresh)));
    }
    g.finish();
}

criterion_group!(benches, bench_hystart_ablation, bench_bbr2_loss_thresh);
criterion_main!(benches);
