//! A small `Instant`-based benchmark harness with a Criterion-shaped API.
//!
//! The workspace is hermetic (no external crates), so the benches cannot
//! use Criterion. This module keeps the same surface the benches were
//! written against — `benchmark_group` / `sample_size` / `throughput` /
//! `bench_function` / `bench_with_input` / `Bencher::iter` plus the
//! [`criterion_group!`](crate::criterion_group) and
//! [`criterion_main!`](crate::criterion_main) macros — and measures with
//! `std::time::Instant`.
//!
//! Behaviour:
//!
//! * Each benchmark is calibrated with one untimed iteration, then run for
//!   `sample_size` samples; fast bodies are batched so every sample lasts
//!   at least ~5 ms.
//! * Reported statistics are per-iteration min / median / mean / max, plus
//!   elements-or-bytes-per-second when a [`Throughput`] is set.
//! * `--test` on the command line (what `cargo test` passes to a
//!   `harness = false` target) runs every benchmark body exactly once and
//!   skips measurement, so benches double as smoke tests.
//! * Any non-flag argument is a substring filter on benchmark ids, matching
//!   `cargo bench <filter>`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical items per iteration (events, packets, …).
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("schedule_pop", 1000)` → id `schedule_pop/1000`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{param}", name.into()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`; the results are `black_box`ed so the
    /// benchmarked work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Per-benchmark measurement outcome kept for the final summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id, `group/bench[/param]`.
    pub id: String,
    /// Per-iteration times, one per sample, sorted ascending.
    pub samples_ns: Vec<f64>,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
    /// Units per iteration, if declared.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Median per-iteration time in nanoseconds.
    pub fn median_ns(&self) -> f64 {
        percentile(&self.samples_ns, 0.5)
    }

    /// Mean per-iteration time in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(units_per_iter: u64, ns_per_iter: f64, unit: &str) -> String {
    let per_sec = units_per_iter as f64 / (ns_per_iter / 1e9);
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// Default number of samples per benchmark (Criterion's 100 is overkill for
/// whole-simulation benches; groups override via `sample_size`).
pub const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Minimum wall time per sample; fast bodies are batched up to this.
const MIN_SAMPLE_NS: f64 = 5_000_000.0;

/// The harness entry point: owns CLI configuration and collected results.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Build from the process arguments (see module docs for the grammar).
    pub fn configured_from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Flags cargo/libtest may forward; all are no-ops here.
                s if s.starts_with('-') => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Force one-shot smoke-test mode (what `--test` sets).
    pub fn test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    /// Whether the harness is in one-shot smoke-test mode.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Results collected so far (test hook).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the closing line; call once after all groups ran.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("\n{} benchmarks executed once (test mode)", self.results.len());
        } else {
            println!("\n{} benchmarks measured", self.results.len());
        }
    }

    fn wants(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(
        &mut self,
        id: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.wants(&id) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("test {id} ... ok");
            self.results.push(BenchResult {
                id,
                samples_ns: vec![b.elapsed.as_nanos() as f64],
                iters_per_sample: 1,
                throughput,
            });
            return;
        }

        // Calibration pass: one untimed iteration sizes the sample batches.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let once_ns = (b.elapsed.as_nanos() as f64).max(1.0);
        let iters = (MIN_SAMPLE_NS / once_ns).ceil().max(1.0) as u64;

        let mut samples: Vec<f64> = (0..sample_size.max(1))
            .map(|_| {
                let mut b = Bencher { iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, c| a.partial_cmp(c).unwrap());

        let result = BenchResult { id, samples_ns: samples, iters_per_sample: iters, throughput };
        let median = result.median_ns();
        let mut line = format!(
            "bench {:<48} {:>12}/iter  [{} .. {}]",
            result.id,
            fmt_ns(median),
            fmt_ns(result.samples_ns[0]),
            fmt_ns(*result.samples_ns.last().unwrap()),
        );
        match result.throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!("  {}", fmt_rate(n, median, "elem")));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!("  {}", fmt_rate(n, median, "B")));
            }
            None => {}
        }
        println!("{line}");
        self.results.push(result);
    }
}

/// A group of related benchmarks sharing sample-size and throughput config.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark for subsequent `bench_*` calls.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for subsequent `bench_*` calls.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        self.parent.run_one(id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        self.parent.run_one(id, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; groups have no teardown).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions into one group function, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            $( $bench(c); )+
        }
    };
}

/// Generate `main()` for a `harness = false` bench target, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::configured_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion::default().test_mode(true);
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("a", |b| {
                b.iter(|| calls += 1);
            });
            g.finish();
        }
        assert_eq!(calls, 1);
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "g/a");
    }

    #[test]
    fn measurement_batches_fast_bodies() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("fast", |b| b.iter(|| 1u64 + 1));
            g.finish();
        }
        let r = &c.results()[0];
        assert_eq!(r.samples_ns.len(), 3);
        assert!(r.iters_per_sample > 1, "sub-ns body must be batched");
        assert!(r.median_ns() >= 0.0 && r.mean_ns() >= 0.0);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion { test_mode: true, filter: Some("keep".into()), results: vec![] };
        let mut ran = vec![];
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("keep_me", |b| b.iter(|| ran.push("keep")));
            g.bench_function("drop_me", |b| b.iter(|| ran.push("drop")));
            g.finish();
        }
        assert_eq!(ran, vec!["keep"]);
    }

    #[test]
    fn benchmark_id_formats_param() {
        let id = BenchmarkId::new("pop", 1000);
        assert_eq!(id.id, "pop/1000");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 2.5);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }

    #[test]
    fn with_input_passes_the_input_through() {
        let mut c = Criterion::default().test_mode(true);
        let mut seen = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::new("n", 7), &7u64, |b, &n| {
                b.iter(|| seen = n);
            });
        }
        assert_eq!(seen, 7);
        assert_eq!(c.results()[0].id, "g/n/7");
    }
}
