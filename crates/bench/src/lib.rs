//! Shared helpers for the benches, plus the in-repo Instant-based
//! benchmark harness ([`harness`]) that replaces Criterion in the
//! hermetic workspace.

pub mod harness;
pub mod report;

use elephants_aqm::AqmKind;
use elephants_cca::CcaKind;
use elephants_experiments::{DurationPreset, RunOptions, ScenarioConfig};
use elephants_netsim::{SimDuration, TopologySpec};

/// Bench-scale run options: seconds-long simulations.
pub fn bench_opts() -> RunOptions {
    RunOptions {
        preset: DurationPreset::Bench,
        warmup_frac: 0.25,
        repeats: 1,
        flow_scale: 1.0,
        seed: 1,
    }
}

/// A bench-scale scenario on a 100 Mbps bottleneck.
pub fn bench_scenario(cca1: CcaKind, cca2: CcaKind, aqm: AqmKind, queue_bdp: f64) -> ScenarioConfig {
    let mut cfg =
        ScenarioConfig::new(cca1, cca2, aqm, queue_bdp, 100_000_000, &bench_opts());
    cfg.duration = SimDuration::from_secs(2);
    cfg.warmup = SimDuration::from_millis(500);
    cfg
}

/// The benchmark-regression scenario: the paper's 25 Gbps FIFO cell at the
/// quick preset (2 s simulated, 500 flows, 2 BDP queue). This is the cell
/// that bottlenecks the full sweep grid, so events/second here is the number
/// the perf trajectory in `BENCH_netsim.json` tracks.
pub fn regression_scenario() -> ScenarioConfig {
    ScenarioConfig::new(
        CcaKind::Cubic,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        25_000_000_000,
        &RunOptions::quick(),
    )
}

/// The paper-faithful many-flow scenario: Table 2's 25 Gbps workload (500
/// flows: 25 iperf processes/node × 10 streams) at the standard preset,
/// twice the simulated duration of [`regression_scenario`]. This is the
/// scale the full sweep runs at; its `BENCH_netsim.json` entry proves the
/// event core sustains it rather than just the quick smoke cell.
pub fn table2_scenario() -> ScenarioConfig {
    ScenarioConfig::new(
        CcaKind::Cubic,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        25_000_000_000,
        &RunOptions::standard(),
    )
}

/// The multi-bottleneck tracked scenario: a 3-hop parking lot at 1 Gbps
/// quick (four flow groups, 40 flows, three shaped queues plus per-link
/// accounting on the hot path). Tracks what the topology subsystem costs
/// when it is actually exercised — the dumbbell entries above pin that the
/// default path costs nothing.
pub fn parkinglot_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(
        CcaKind::Cubic,
        CcaKind::Cubic,
        AqmKind::Fifo,
        2.0,
        1_000_000_000,
        &RunOptions::quick(),
    );
    cfg.topology = TopologySpec::ParkingLot { hops: 3 };
    cfg
}
