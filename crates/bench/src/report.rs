//! The benchmark-regression report: `BENCH_netsim.json`.
//!
//! The engine bench measures the paper's 25 Gbps FIFO cell at quick scale
//! and records events/second, ns/event, and the peak bottleneck-queue depth
//! into a JSON trajectory file at the workspace root. Each entry is keyed by
//! a label (`BENCH_LABEL` env var, default `"current"`); re-running with the
//! same label replaces that entry, so the file accumulates one entry per
//! milestone and future PRs have a perf baseline to defend.

use crate::harness::Criterion;
use crate::regression_scenario;
use elephants_experiments::Runner;
use elephants_json::{impl_json_struct, FromJson, ToJson};
use std::path::PathBuf;

/// Benchmark id (group/name) of the regression scenario in the engine bench.
pub const REGRESSION_BENCH_ID: &str = "engine/25gbps_fifo_quick";

/// One measured point on the perf trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Milestone label (e.g. `"pr2-baseline"`, `"current"`).
    pub label: String,
    /// Simulated events processed per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock nanoseconds per simulated event.
    pub ns_per_event: f64,
    /// Median wall-clock time for the whole scenario run, milliseconds.
    pub median_run_ms: f64,
    /// Events processed by one run of the scenario.
    pub events_processed: u64,
    /// Largest bottleneck-queue depth observed, in packets.
    pub peak_queue_pkts: u64,
}

impl_json_struct!(BenchEntry {
    label,
    events_per_sec,
    ns_per_event,
    median_run_ms,
    events_processed,
    peak_queue_pkts,
});

/// The whole trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Human-readable description of the measured scenario.
    pub scenario: String,
    /// One entry per milestone label.
    pub entries: Vec<BenchEntry>,
}

impl_json_struct!(BenchReport { scenario, entries });

impl BenchReport {
    /// Insert `entry`, replacing any previous entry with the same label.
    pub fn upsert(&mut self, entry: BenchEntry) {
        self.entries.retain(|e| e.label != entry.label);
        self.entries.push(entry);
    }

    /// Ratio of `a`'s events/sec over `b`'s, if both labels are present.
    pub fn speedup(&self, a: &str, b: &str) -> Option<f64> {
        let ea = self.entries.iter().find(|e| e.label == a)?;
        let eb = self.entries.iter().find(|e| e.label == b)?;
        Some(ea.events_per_sec / eb.events_per_sec)
    }
}

/// Where the trajectory file lives: `$BENCH_OUT`, or `BENCH_netsim.json` at
/// the workspace root.
pub fn default_report_path() -> PathBuf {
    match std::env::var_os("BENCH_OUT") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_netsim.json"),
    }
}

/// Build the trajectory entry for the regression scenario from the measured
/// median and one counting run (events processed + peak queue depth).
pub fn measure_entry(label: String, median_ns: f64) -> BenchEntry {
    let probe = Runner::new(&regression_scenario())
        .seed(1)
        .run()
        .expect("regression scenario must run")
        .into_first();
    BenchEntry {
        label,
        events_per_sec: probe.events as f64 / (median_ns / 1e9),
        ns_per_event: median_ns / probe.events as f64,
        median_run_ms: median_ns / 1e6,
        events_processed: probe.events,
        peak_queue_pkts: probe.peak_queue_pkts,
    }
}

/// Emit/refresh `BENCH_netsim.json` from a finished engine-bench run.
///
/// No-op when the regression benchmark did not run (filtered out) or in
/// `--test` one-shot mode (timings would be meaningless).
pub fn emit_engine_report(c: &Criterion) {
    if c.is_test_mode() {
        return;
    }
    let Some(r) = c.results().iter().find(|r| r.id == REGRESSION_BENCH_ID) else {
        return;
    };
    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "current".to_string());
    let entry = measure_entry(label, r.median_ns());

    let path = default_report_path();
    let mut report = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| BenchReport::from_json_str(&s).ok())
        .unwrap_or_else(|| BenchReport { scenario: String::new(), entries: Vec::new() });
    report.scenario = format!("{} (quick preset)", regression_scenario().label());
    report.upsert(entry);
    match std::fs::write(&path, report.to_json_pretty()) {
        Ok(()) => println!("bench report written to {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, eps: f64) -> BenchEntry {
        BenchEntry {
            label: label.to_string(),
            events_per_sec: eps,
            ns_per_event: 1e9 / eps,
            median_run_ms: 1.0,
            events_processed: 1000,
            peak_queue_pkts: 7,
        }
    }

    #[test]
    fn upsert_replaces_same_label() {
        let mut r = BenchReport { scenario: "s".into(), entries: vec![entry("a", 1.0)] };
        r.upsert(entry("a", 2.0));
        r.upsert(entry("b", 3.0));
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].events_per_sec, 2.0);
    }

    #[test]
    fn speedup_between_labels() {
        let mut r = BenchReport { scenario: "s".into(), entries: vec![] };
        r.upsert(entry("old", 2.0));
        r.upsert(entry("new", 3.0));
        assert_eq!(r.speedup("new", "old"), Some(1.5));
        assert_eq!(r.speedup("new", "missing"), None);
    }

    #[test]
    fn report_json_round_trips() {
        let r = BenchReport { scenario: "s".into(), entries: vec![entry("a", 1.5)] };
        let back = BenchReport::from_json_str(&r.to_json_pretty()).unwrap();
        assert_eq!(back, r);
    }
}
