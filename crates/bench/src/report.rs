//! The benchmark-regression report: `BENCH_netsim.json`.
//!
//! The engine bench measures the paper's 25 Gbps FIFO cell at quick scale
//! (and, when not filtered out, the Table-2 500-flow cell at standard
//! scale) and records events/second, ns/event, the sample spread, and the
//! peak bottleneck-queue depth into a JSON trajectory file at the workspace
//! root. Each entry is keyed by a label (`BENCH_LABEL` env var, default
//! `"current"`); re-running with the same label replaces that entry, so the
//! file accumulates one entry per milestone and future PRs have a perf
//! baseline to defend.
//!
//! # The regression gate
//!
//! PR 6 landed a 32% events/sec regression that sat in the committed file
//! unnoticed because nothing *compared* entries. [`BenchReport::gate`]
//! closes that hole: it compares an entry against the previous committed
//! entry for the same benchmark and fails when events/sec dropped more
//! than a threshold (default [`GATE_DEFAULT_THRESHOLD`]). `scripts/bench.sh
//! --gate` and `scripts/ci.sh --bench-gate` run it after a fresh
//! measurement (set `BENCH_GATE=1`; tune with `BENCH_GATE_THRESHOLD`).

use crate::harness::{BenchResult, Criterion};
use crate::{parkinglot_scenario, regression_scenario, table2_scenario};
use elephants_experiments::{Runner, ScenarioConfig};
use elephants_json::{FromJson, JsonError, ToJson, Value};
use std::path::PathBuf;

/// Benchmark id (group/name) of the regression scenario in the engine bench.
pub const REGRESSION_BENCH_ID: &str = "engine/25gbps_fifo_quick";

/// Benchmark id of the paper-faithful Table-2 500-flow scenario.
pub const TABLE2_BENCH_ID: &str = "engine/25gbps_fifo_table2";

/// Benchmark id of the multi-bottleneck 3-hop parking-lot scenario.
pub const PARKINGLOT_BENCH_ID: &str = "engine/1gbps_parkinglot3_quick";

/// Default regression-gate threshold: fail when events/sec drops more than
/// this fraction below the previous committed entry.
pub const GATE_DEFAULT_THRESHOLD: f64 = 0.10;

/// One measured point on the perf trajectory.
///
/// Entries recorded before PR 7 carry only the median; on parse their
/// `min_run_ms`/`max_run_ms` are backfilled from the median and `runs` is 0
/// ("spread not recorded"), so "within noise" claims are only checkable for
/// entries measured after the fields existed.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Milestone label (e.g. `"pr4-recorder"`, `"current"`).
    pub label: String,
    /// Benchmark id this entry measures (gate only compares like with like).
    pub bench: String,
    /// Simulated events processed per wall-clock second (from the median).
    pub events_per_sec: f64,
    /// Wall-clock nanoseconds per simulated event (from the median).
    pub ns_per_event: f64,
    /// Median wall-clock time for the whole scenario run, milliseconds.
    pub median_run_ms: f64,
    /// Fastest sample, milliseconds.
    pub min_run_ms: f64,
    /// Slowest sample, milliseconds.
    pub max_run_ms: f64,
    /// Number of timed samples behind the statistics (0 = pre-PR7 entry).
    pub runs: u64,
    /// Events processed by one run of the scenario.
    pub events_processed: u64,
    /// Largest bottleneck-queue depth observed, in packets.
    pub peak_queue_pkts: u64,
}

impl ToJson for BenchEntry {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("label".to_string(), self.label.to_json()),
            ("bench".to_string(), self.bench.to_json()),
            ("events_per_sec".to_string(), self.events_per_sec.to_json()),
            ("ns_per_event".to_string(), self.ns_per_event.to_json()),
            ("median_run_ms".to_string(), self.median_run_ms.to_json()),
            ("min_run_ms".to_string(), self.min_run_ms.to_json()),
            ("max_run_ms".to_string(), self.max_run_ms.to_json()),
            ("runs".to_string(), self.runs.to_json()),
            ("events_processed".to_string(), self.events_processed.to_json()),
            ("peak_queue_pkts".to_string(), self.peak_queue_pkts.to_json()),
        ])
    }
}

impl FromJson for BenchEntry {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let median_run_ms = f64::from_json(v.get_field("median_run_ms")?)?;
        // Fields added in PR 7 are optional so committed pre-PR7 entries
        // keep parsing; see the struct docs for the backfill semantics.
        let opt_f64 = |name: &str, fallback: f64| match v.get_field(name) {
            Ok(field) => f64::from_json(field),
            Err(_) => Ok(fallback),
        };
        Ok(BenchEntry {
            label: String::from_json(v.get_field("label")?)?,
            bench: match v.get_field("bench") {
                Ok(field) => String::from_json(field)?,
                Err(_) => REGRESSION_BENCH_ID.to_string(),
            },
            events_per_sec: f64::from_json(v.get_field("events_per_sec")?)?,
            ns_per_event: f64::from_json(v.get_field("ns_per_event")?)?,
            median_run_ms,
            min_run_ms: opt_f64("min_run_ms", median_run_ms)?,
            max_run_ms: opt_f64("max_run_ms", median_run_ms)?,
            runs: match v.get_field("runs") {
                Ok(field) => u64::from_json(field)?,
                Err(_) => 0,
            },
            events_processed: u64::from_json(v.get_field("events_processed")?)?,
            peak_queue_pkts: u64::from_json(v.get_field("peak_queue_pkts")?)?,
        })
    }
}

/// A passing gate comparison: which baseline was used and the ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct GatePass {
    /// Label of the baseline entry compared against.
    pub baseline: String,
    /// `new.events_per_sec / baseline.events_per_sec`.
    pub ratio: f64,
}

/// The whole trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Human-readable description of the measured scenario.
    pub scenario: String,
    /// One entry per milestone label, in commit order.
    pub entries: Vec<BenchEntry>,
}

elephants_json::impl_json_struct!(BenchReport { scenario, entries });

impl BenchReport {
    /// Insert `entry`, replacing any previous entry with the same label.
    pub fn upsert(&mut self, entry: BenchEntry) {
        self.entries.retain(|e| e.label != entry.label);
        self.entries.push(entry);
    }

    /// Ratio of `a`'s events/sec over `b`'s, if both labels are present.
    pub fn speedup(&self, a: &str, b: &str) -> Option<f64> {
        let ea = self.entries.iter().find(|e| e.label == a)?;
        let eb = self.entries.iter().find(|e| e.label == b)?;
        Some(ea.events_per_sec / eb.events_per_sec)
    }

    /// The regression gate: compare the entry named `label` against the
    /// previous entry for the same benchmark (entries are kept in commit
    /// order, so "previous" is the latest committed baseline).
    ///
    /// Returns `Err` with a human-readable verdict when events/sec dropped
    /// more than `threshold` (a fraction, e.g. 0.10); `Ok(None)` when there
    /// is no earlier same-benchmark entry to compare against; `Ok(Some)`
    /// with the baseline and ratio otherwise.
    pub fn gate(&self, label: &str, threshold: f64) -> Result<Option<GatePass>, String> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.label == label)
            .ok_or_else(|| format!("gate: no entry labelled '{label}'"))?;
        let new = &self.entries[idx];
        let Some(base) = self.entries[..idx].iter().rev().find(|e| e.bench == new.bench) else {
            return Ok(None);
        };
        let ratio = new.events_per_sec / base.events_per_sec;
        if ratio < 1.0 - threshold {
            return Err(format!(
                "'{label}' regressed {}: {:.2}M events/sec vs '{}' at {:.2}M ({:.1}% drop, \
                 threshold {:.0}%)",
                new.bench,
                new.events_per_sec / 1e6,
                base.label,
                base.events_per_sec / 1e6,
                (1.0 - ratio) * 100.0,
                threshold * 100.0,
            ));
        }
        Ok(Some(GatePass { baseline: base.label.clone(), ratio }))
    }
}

/// Where the trajectory file lives: `$BENCH_OUT`, or `BENCH_netsim.json` at
/// the workspace root.
pub fn default_report_path() -> PathBuf {
    match std::env::var_os("BENCH_OUT") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_netsim.json"),
    }
}

/// Build the trajectory entry for one tracked benchmark from its measured
/// samples and one counting run (events processed + peak queue depth).
pub fn measure_entry(
    label: String,
    bench: &str,
    cfg: &ScenarioConfig,
    r: &BenchResult,
) -> BenchEntry {
    let probe = Runner::new(cfg)
        .seed(1)
        .run()
        .expect("tracked bench scenario must run")
        .into_first();
    let median_ns = r.median_ns();
    BenchEntry {
        label,
        bench: bench.to_string(),
        events_per_sec: probe.events as f64 / (median_ns / 1e9),
        ns_per_event: median_ns / probe.events as f64,
        median_run_ms: median_ns / 1e6,
        min_run_ms: r.samples_ns.first().copied().unwrap_or(median_ns) / 1e6,
        max_run_ms: r.samples_ns.last().copied().unwrap_or(median_ns) / 1e6,
        runs: r.samples_ns.len() as u64,
        events_processed: probe.events,
        peak_queue_pkts: probe.peak_queue_pkts,
    }
}

/// Emit/refresh `BENCH_netsim.json` from a finished engine-bench run.
///
/// Both tracked benchmarks are folded in when they ran: the quick
/// regression cell under `BENCH_LABEL` and the Table-2 500-flow cell under
/// `BENCH_LABEL_TABLE2` (default `"<BENCH_LABEL>-table2"`). No-op when
/// neither ran (filtered out) or in `--test` one-shot mode (timings would
/// be meaningless).
pub fn emit_engine_report(c: &Criterion) {
    if c.is_test_mode() {
        return;
    }
    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "current".to_string());
    let table2_label =
        std::env::var("BENCH_LABEL_TABLE2").unwrap_or_else(|_| format!("{label}-table2"));
    let parkinglot_label = std::env::var("BENCH_LABEL_PARKINGLOT")
        .unwrap_or_else(|_| format!("{label}-parkinglot"));
    let tracked: [(&str, String, ScenarioConfig); 3] = [
        (REGRESSION_BENCH_ID, label, regression_scenario()),
        (TABLE2_BENCH_ID, table2_label, table2_scenario()),
        (PARKINGLOT_BENCH_ID, parkinglot_label, parkinglot_scenario()),
    ];
    let measured: Vec<BenchEntry> = tracked
        .into_iter()
        .filter_map(|(id, label, cfg)| {
            let r = c.results().iter().find(|r| r.id == id)?;
            Some(measure_entry(label, id, &cfg, r))
        })
        .collect();
    if measured.is_empty() {
        return;
    }

    let path = default_report_path();
    let mut report = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| BenchReport::from_json_str(&s).ok())
        .unwrap_or_else(|| BenchReport { scenario: String::new(), entries: Vec::new() });
    report.scenario = format!("{} (quick preset)", regression_scenario().label());
    for entry in measured {
        report.upsert(entry);
    }
    match std::fs::write(&path, report.to_json_pretty()) {
        Ok(()) => println!("bench report written to {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Run the regression gate over the freshly written report when
/// `BENCH_GATE=1`: every entry recorded by this process (see
/// [`emit_engine_report`]) is compared against its previous committed
/// same-benchmark entry. Threshold comes from `BENCH_GATE_THRESHOLD`
/// (fraction, default [`GATE_DEFAULT_THRESHOLD`]).
pub fn gate_from_env(c: &Criterion) -> Result<(), String> {
    if c.is_test_mode() || std::env::var("BENCH_GATE").map(|v| v != "1").unwrap_or(true) {
        return Ok(());
    }
    let threshold = match std::env::var("BENCH_GATE_THRESHOLD") {
        Ok(s) => {
            s.parse::<f64>().map_err(|e| format!("bad BENCH_GATE_THRESHOLD '{s}': {e}"))?
        }
        Err(_) => GATE_DEFAULT_THRESHOLD,
    };
    let path = default_report_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("gate: cannot read {}: {e}", path.display()))?;
    let report = BenchReport::from_json_str(&text)
        .map_err(|e| format!("gate: cannot parse {}: {e}", path.display()))?;

    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "current".to_string());
    let table2_label =
        std::env::var("BENCH_LABEL_TABLE2").unwrap_or_else(|_| format!("{label}-table2"));
    let parkinglot_label = std::env::var("BENCH_LABEL_PARKINGLOT")
        .unwrap_or_else(|_| format!("{label}-parkinglot"));
    for (id, label) in [
        (REGRESSION_BENCH_ID, label),
        (TABLE2_BENCH_ID, table2_label),
        (PARKINGLOT_BENCH_ID, parkinglot_label),
    ] {
        if !c.results().iter().any(|r| r.id == id) {
            continue;
        }
        match report.gate(&label, threshold)? {
            Some(pass) => println!(
                "bench gate: PASS '{label}' at {:.1}% of '{}'",
                pass.ratio * 100.0,
                pass.baseline
            ),
            None => {
                println!("bench gate: '{label}' has no earlier {id} entry; nothing to compare")
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, eps: f64) -> BenchEntry {
        BenchEntry {
            label: label.to_string(),
            bench: REGRESSION_BENCH_ID.to_string(),
            events_per_sec: eps,
            ns_per_event: 1e9 / eps,
            median_run_ms: 1.0,
            min_run_ms: 0.9,
            max_run_ms: 1.2,
            runs: 5,
            events_processed: 1000,
            peak_queue_pkts: 7,
        }
    }

    #[test]
    fn upsert_replaces_same_label() {
        let mut r = BenchReport { scenario: "s".into(), entries: vec![entry("a", 1.0)] };
        r.upsert(entry("a", 2.0));
        r.upsert(entry("b", 3.0));
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].events_per_sec, 2.0);
    }

    #[test]
    fn speedup_between_labels() {
        let mut r = BenchReport { scenario: "s".into(), entries: vec![] };
        r.upsert(entry("old", 2.0));
        r.upsert(entry("new", 3.0));
        assert_eq!(r.speedup("new", "old"), Some(1.5));
        assert_eq!(r.speedup("new", "missing"), None);
    }

    #[test]
    fn report_json_round_trips() {
        let r = BenchReport { scenario: "s".into(), entries: vec![entry("a", 1.5)] };
        let back = BenchReport::from_json_str(&r.to_json_pretty()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn pre_pr7_entries_parse_with_backfilled_spread() {
        // The exact shape committed before PR 7: no bench/min/max/runs.
        let old = r#"{
            "label": "pr4-recorder",
            "events_per_sec": 12190651.171217684,
            "ns_per_event": 82.03007254944802,
            "median_run_ms": 465.17228,
            "events_processed": 5670753,
            "peak_queue_pkts": 21229
        }"#;
        let e = BenchEntry::from_json_str(old).unwrap();
        assert_eq!(e.bench, REGRESSION_BENCH_ID);
        assert_eq!(e.min_run_ms, e.median_run_ms);
        assert_eq!(e.max_run_ms, e.median_run_ms);
        assert_eq!(e.runs, 0, "pre-PR7 entries have no recorded spread");
    }

    /// The gate must catch exactly the regression that PR 6 landed: the
    /// committed 8.29M events/sec against pr4-recorder's 12.19M is a 32%
    /// drop, far beyond the 10% default threshold.
    #[test]
    fn gate_fails_on_the_committed_pr6_regression() {
        let mut r = BenchReport { scenario: "s".into(), entries: vec![] };
        r.upsert(entry("pr2-wheel-arena", 9_249_222.8));
        r.upsert(entry("pr4-recorder", 12_190_651.2));
        r.upsert(entry("pr6-checker", 8_290_719.7));
        let err = r.gate("pr6-checker", GATE_DEFAULT_THRESHOLD).unwrap_err();
        assert!(err.contains("pr4-recorder"), "must compare against the previous entry: {err}");
        assert!(err.contains("32.0% drop"), "{err}");
    }

    #[test]
    fn gate_passes_within_threshold_and_compares_previous_entry() {
        let mut r = BenchReport { scenario: "s".into(), entries: vec![] };
        r.upsert(entry("old", 10_000_000.0));
        r.upsert(entry("new", 9_500_000.0)); // 5% drop: inside the 10% gate
        let pass = r.gate("new", GATE_DEFAULT_THRESHOLD).unwrap().unwrap();
        assert_eq!(pass.baseline, "old");
        assert!((pass.ratio - 0.95).abs() < 1e-9);
    }

    #[test]
    fn gate_only_compares_same_benchmark_entries() {
        let mut r = BenchReport { scenario: "s".into(), entries: vec![] };
        r.upsert(entry("quick-old", 10_000_000.0));
        let mut t2 = entry("table2-new", 5_000_000.0);
        t2.bench = TABLE2_BENCH_ID.to_string();
        r.upsert(t2);
        // Half the quick entry's rate, but a different benchmark: no baseline.
        assert_eq!(r.gate("table2-new", GATE_DEFAULT_THRESHOLD), Ok(None));
    }

    #[test]
    fn gate_unknown_label_is_an_error() {
        let r = BenchReport { scenario: "s".into(), entries: vec![entry("a", 1.0)] };
        assert!(r.gate("missing", 0.1).is_err());
    }
}
