//! # elephants
//!
//! A from-scratch Rust reproduction of *"Elephants Sharing the Highway:
//! Studying TCP Fairness in Large Transfers over High Throughput Links"*
//! (Mahmud et al., SC-W 2023).
//!
//! The paper measures how pairs of TCP congestion-control algorithms
//! (BBRv1, BBRv2, CUBIC, Reno, HTCP) share a bottleneck under three queue
//! disciplines (FIFO, RED, FQ_CODEL), across queue lengths of 0.5–16 × BDP
//! and bottleneck bandwidths of 100 Mbps–25 Gbps. This crate replaces the
//! paper's FABRIC testbed with a deterministic packet-level discrete-event
//! simulator and rebuilds the whole software stack the experiment needs:
//!
//! * [`netsim`] — the simulator (time, events, links, routing, dumbbell);
//! * [`tcp`] — SACK scoreboard, RTO, pacing, delivery-rate sampling;
//! * [`cca`] — the five congestion controllers;
//! * [`aqm`] — droptail FIFO, RED, CoDel and FQ-CoDel;
//! * [`workload`] — iperf3-style flow scaling (paper Table 2);
//! * [`metrics`] — Jain index, utilization φ, relative retransmissions;
//! * [`experiments`] — the Table 1 grid, parallel sweeps, and one
//!   regeneration entry point per paper figure/table;
//! * [`telemetry`] — the flight recorder: versioned per-run dynamics
//!   artifacts (cwnd/queue time series) behind the paper-style figures;
//! * [`analysis`] — fairness dynamics over flight records: windowed
//!   goodput, J(t), convergence time, late-joiner responsiveness and
//!   seeded bootstrap confidence intervals;
//! * [`chaos`] — the deterministic fuzzer: seeded scenario/fault
//!   generation, a four-oracle judge, automatic shrinking, and the
//!   replayable regression corpus under `tests/fixtures/chaos/`.
//!
//! ## Quickstart
//!
//! ```
//! use elephants::FairnessStudy;
//!
//! // How do BBRv1 and CUBIC share a 100 Mbps link through a 2-BDP FIFO?
//! let outcome = FairnessStudy::builder()
//!     .cca_pair("bbr1", "cubic")
//!     .aqm("fifo")
//!     .bandwidth_mbps(100)
//!     .queue_bdp(2.0)
//!     .duration_secs(5)
//!     .build()
//!     .expect("valid study")
//!     .run();
//! assert!(outcome.jain > 0.0 && outcome.jain <= 1.0);
//! assert!(outcome.utilization <= 1.0);
//! ```

pub use elephants_json as json;

pub use elephants_analysis as analysis;
pub use elephants_aqm as aqm;
pub use elephants_cca as cca;
pub use elephants_chaos as chaos;
pub use elephants_experiments as experiments;
pub use elephants_metrics as metrics;
pub use elephants_netsim as netsim;
pub use elephants_tcp as tcp;
pub use elephants_telemetry as telemetry;
pub use elephants_workload as workload;

pub use elephants_aqm::AqmKind;
pub use elephants_cca::CcaKind;
pub use elephants_experiments::{Recording, RunOptions, RunOutcome, RunResult, Runner, ScenarioConfig};
pub use elephants_netsim::{Bandwidth, SimDuration, SimTime};

use elephants_experiments::DurationPreset;

/// A single fairness experiment, configured through a builder.
///
/// This is the "five-minute" API: one bottleneck, two sender nodes (each
/// running the paper's Table 2 flow count for the chosen bandwidth), one
/// AQM, one queue length. For grids and figure regeneration use
/// [`experiments`] directly.
#[derive(Debug, Clone)]
pub struct FairnessStudy {
    config: ScenarioConfig,
    repeats: u32,
}

/// Builder for [`FairnessStudy`].
#[derive(Debug, Clone)]
pub struct FairnessStudyBuilder {
    cca1: CcaKind,
    cca2: CcaKind,
    aqm: AqmKind,
    bw_bps: u64,
    queue_bdp: f64,
    duration: Option<SimDuration>,
    warmup_frac: f64,
    flow_scale: f64,
    ecn: bool,
    seed: u64,
    repeats: u32,
    error: Option<String>,
}

impl Default for FairnessStudyBuilder {
    fn default() -> Self {
        FairnessStudyBuilder {
            cca1: CcaKind::Cubic,
            cca2: CcaKind::Cubic,
            aqm: AqmKind::Fifo,
            bw_bps: 100_000_000,
            queue_bdp: 2.0,
            duration: None,
            warmup_frac: 0.25,
            flow_scale: 1.0,
            ecn: false,
            seed: 1,
            repeats: 1,
            error: None,
        }
    }
}

impl FairnessStudyBuilder {
    /// Set both senders' congestion controllers by name
    /// (`"bbr1" | "bbr2" | "cubic" | "reno" | "htcp"`).
    pub fn cca_pair(mut self, cca1: &str, cca2: &str) -> Self {
        match (cca1.parse(), cca2.parse()) {
            (Ok(a), Ok(b)) => {
                self.cca1 = a;
                self.cca2 = b;
            }
            (Err(e), _) | (_, Err(e)) => self.error = Some(e),
        }
        self
    }

    /// Set the bottleneck queue discipline by name
    /// (`"fifo" | "red" | "fq_codel" | "codel"`).
    pub fn aqm(mut self, aqm: &str) -> Self {
        match aqm.parse() {
            Ok(a) => self.aqm = a,
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Bottleneck bandwidth in Mbps.
    pub fn bandwidth_mbps(mut self, mbps: u64) -> Self {
        self.bw_bps = mbps * 1_000_000;
        self
    }

    /// Bottleneck bandwidth in Gbps.
    pub fn bandwidth_gbps(mut self, gbps: u64) -> Self {
        self.bw_bps = gbps * 1_000_000_000;
        self
    }

    /// Queue length as a multiple of the bandwidth-delay product.
    pub fn queue_bdp(mut self, q: f64) -> Self {
        self.queue_bdp = q;
        self
    }

    /// Simulated duration in seconds (default: bandwidth-scaled preset).
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.duration = Some(SimDuration::from_secs(secs));
        self
    }

    /// Fraction of the paper's Table 2 flow count to instantiate.
    pub fn flow_scale(mut self, scale: f64) -> Self {
        self.flow_scale = scale;
        self
    }

    /// Enable ECN end-to-end (off in the paper).
    pub fn ecn(mut self, on: bool) -> Self {
        self.ecn = on;
        self
    }

    /// Base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of seeded repetitions to average (paper: 5).
    pub fn repeats(mut self, n: u32) -> Self {
        self.repeats = n.max(1);
        self
    }

    /// Finalize; errors on invalid names or parameters.
    pub fn build(self) -> Result<FairnessStudy, String> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !(self.flow_scale > 0.0 && self.flow_scale <= 1.0) {
            return Err("flow_scale must be in (0,1]".into());
        }
        if self.queue_bdp <= 0.0 {
            return Err("queue_bdp must be positive".into());
        }
        let opts = RunOptions {
            preset: DurationPreset::Standard,
            warmup_frac: self.warmup_frac,
            repeats: self.repeats,
            flow_scale: self.flow_scale,
            seed: self.seed,
        };
        let mut config =
            ScenarioConfig::new(self.cca1, self.cca2, self.aqm, self.queue_bdp, self.bw_bps, &opts);
        config.ecn = self.ecn;
        if let Some(d) = self.duration {
            config.duration = d;
            config.warmup = d.mul_f64(self.warmup_frac);
        }
        Ok(FairnessStudy { config, repeats: self.repeats })
    }
}

/// Outcome of a [`FairnessStudy`] (averaged over repeats).
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// Goodput of sender 1 (running `cca1`), Mbps.
    pub sender1_mbps: f64,
    /// Goodput of sender 2 (running `cca2`), Mbps.
    pub sender2_mbps: f64,
    /// Jain fairness index over the two senders.
    pub jain: f64,
    /// Link utilization φ.
    pub utilization: f64,
    /// Mean retransmitted segments per run.
    pub retransmits: f64,
    /// Total RTO events.
    pub rtos: u64,
    /// Flows simulated per run.
    pub flows: u32,
}

impl FairnessStudy {
    /// Start building a study.
    pub fn builder() -> FairnessStudyBuilder {
        FairnessStudyBuilder::default()
    }

    /// The underlying scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Execute the study (repeats are averaged).
    pub fn run(&self) -> StudyOutcome {
        let avg = elephants_experiments::Runner::new(&self.config)
            .repeats(self.repeats)
            .run()
            .unwrap_or_else(|e| panic!("run failed ({}): {e}", self.config.label()))
            .into_averaged();
        StudyOutcome {
            sender1_mbps: avg.sender_mbps.first().copied().unwrap_or(0.0),
            sender2_mbps: avg.sender_mbps.get(1).copied().unwrap_or(0.0),
            jain: avg.jain,
            utilization: avg.utilization,
            retransmits: avg.retransmits,
            rtos: avg.rtos,
            flows: avg.runs.first().map(|r| r.flows).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_names() {
        assert!(FairnessStudy::builder().cca_pair("bbr9", "cubic").build().is_err());
        assert!(FairnessStudy::builder().aqm("wred").build().is_err());
        assert!(FairnessStudy::builder().flow_scale(0.0).build().is_err());
        assert!(FairnessStudy::builder().queue_bdp(-1.0).build().is_err());
        assert!(FairnessStudy::builder().cca_pair("htcp", "cubic").aqm("red").build().is_ok());
    }

    #[test]
    fn builder_sets_scenario_fields() {
        let study = FairnessStudy::builder()
            .cca_pair("bbr2", "cubic")
            .aqm("fq_codel")
            .bandwidth_gbps(1)
            .queue_bdp(4.0)
            .duration_secs(3)
            .seed(9)
            .build()
            .unwrap();
        let c = study.config();
        assert_eq!(c.cca1, CcaKind::BbrV2);
        assert_eq!(c.aqm, AqmKind::FqCodel);
        assert_eq!(c.bw_bps, 1_000_000_000);
        assert_eq!(c.queue_bdp, 4.0);
        assert_eq!(c.duration, SimDuration::from_secs(3));
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn study_runs_end_to_end() {
        let out = FairnessStudy::builder()
            .bandwidth_mbps(100)
            .duration_secs(4)
            .build()
            .unwrap()
            .run();
        assert_eq!(out.flows, 2);
        assert!(out.jain > 0.0 && out.jain <= 1.0);
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
        assert!(out.sender1_mbps + out.sender2_mbps > 0.0);
    }
}
