//! # elephants-telemetry
//!
//! The flight recorder: turns the simulator's observability hooks
//! ([`elephants_netsim::Recorder`]) into a versioned, JSON-serializable
//! [`FlightRecord`] artifact — the per-flow cwnd/pacing/srtt time series,
//! bottleneck-queue depth series and (optional) bounded per-packet event
//! trace behind the paper's dynamics figures (BBR's ProbeBW oscillation,
//! CUBIC's sawtooth, queue standing waves under FIFO/RED).
//!
//! The recorder is strictly an *observer*: installing a [`FlightRecorder`]
//! on a run changes none of the run's metrics (the experiments suite guards
//! this with a byte-identity test). Serialization goes through
//! `elephants-json`; the artifact carries [`FLIGHT_RECORD_VERSION`] so
//! readers can reject records written by a different schema.

use elephants_json::{impl_json_struct, FromJson, JsonError, Value};
use elephants_netsim::{
    FlowSample, QueueSample, Recorder, SimDuration, TraceEvent, TRACE_NO_FLOW,
};
use std::any::Any;

/// Schema version stamped into every [`FlightRecord`]. Bump when the JSON
/// shape of the record or its point types changes.
///
/// v2: [`QueuePoint`] gained a `link` field so multi-bottleneck topologies
/// can record one queue series per instrumented link.
///
/// v3: [`FlowPoint`] gained cumulative `delivered_bytes` / `retx` counters
/// so the analysis layer can difference windowed goodput out of a record.
///
/// The parser is backward compatible: v1 and v2 records are upgraded on
/// read ([`FlightRecord::parse`]), with missing counters backfilled to 0
/// (and, for v1, the queue `link` backfilled to 0 — single-bottleneck era).
pub const FLIGHT_RECORD_VERSION: u32 = 3;

/// One per-flow sample row (times in seconds; `null` = not yet measured).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowPoint {
    /// Sample time, seconds since run start.
    pub t_s: f64,
    /// Flow id.
    pub flow: u32,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Pacing rate, bits/s (`null` = ACK-clocked).
    pub pacing_bps: Option<u64>,
    /// Smoothed RTT, seconds (`null` before the first sample).
    pub srtt_s: Option<f64>,
    /// Bytes in flight.
    pub inflight: u64,
    /// CCA phase label (e.g. `"slow_start"`, `"probe_bw:1.25"`).
    pub phase: String,
    /// Cumulative bytes delivered to the receiver's application (v3+;
    /// backfilled to 0 when parsing older records).
    pub delivered_bytes: u64,
    /// Cumulative retransmitted segments at the sender (v3+; backfilled
    /// to 0 when parsing older records).
    pub retx: u64,
}

impl_json_struct!(FlowPoint {
    t_s,
    flow,
    cwnd,
    pacing_bps,
    srtt_s,
    inflight,
    phase,
    delivered_bytes,
    retx,
});

/// One bottleneck-queue sample row. Multi-bottleneck topologies interleave
/// one row per instrumented link per tick, distinguished by `link`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuePoint {
    /// Sample time, seconds since run start.
    pub t_s: f64,
    /// Sampled link id.
    pub link: u32,
    /// Packets queued.
    pub backlog_pkts: u64,
    /// Bytes queued.
    pub backlog_bytes: u64,
    /// Cumulative drops so far.
    pub dropped: u64,
    /// Cumulative ECN marks so far.
    pub marked: u64,
    /// AQM control variable (RED: average queue bytes; PIE: drop
    /// probability; `null` for disciplines without one).
    pub control: Option<f64>,
}

impl_json_struct!(QueuePoint { t_s, link, backlog_pkts, backlog_bytes, dropped, marked, control });

/// One per-packet trace row.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPoint {
    /// Event time, seconds since run start.
    pub t_s: f64,
    /// `"enqueue"`, `"retx"`, `"dequeue"`, `"drop"` or `"fault"`.
    pub kind: String,
    /// Flow id (`u32::MAX` on fault rows, which have no flow).
    pub flow: u32,
    /// Packet sequence number.
    pub seq: u64,
    /// Packet size, bytes.
    pub size: u32,
}

impl_json_struct!(EventPoint { t_s, kind, flow, seq, size });

/// The versioned flight-record artifact of one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Schema version ([`FLIGHT_RECORD_VERSION`] at write time).
    pub schema_version: u32,
    /// Human-readable scenario label.
    pub label: String,
    /// The run's seed.
    pub seed: u64,
    /// Sample spacing, seconds.
    pub sample_interval_s: f64,
    /// Per-flow samples, in time order (flows interleaved).
    pub flow_samples: Vec<FlowPoint>,
    /// Bottleneck-queue samples, in time order.
    pub queue_samples: Vec<QueuePoint>,
    /// Per-packet trace (empty unless event tracing was enabled).
    pub events: Vec<EventPoint>,
    /// Trace events shed by the bounded ring after it filled. Non-zero
    /// means `events` covers only the start of the run — check this before
    /// trusting the trace tail.
    pub events_truncated: u64,
}

impl_json_struct!(FlightRecord {
    schema_version,
    label,
    seed,
    sample_interval_s,
    flow_samples,
    queue_samples,
    events,
    events_truncated,
});

/// Append `(name, 0)` to every object in a JSON array field unless the
/// key is already present — the backfill primitive behind the versioned
/// parser's upgrade path.
fn backfill_zero(v: &mut Value, array_field: &str, name: &str) {
    let Value::Object(fields) = v else { return };
    let Some((_, Value::Array(rows))) = fields.iter_mut().find(|(k, _)| k == array_field) else {
        return;
    };
    for row in rows {
        if let Value::Object(row_fields) = row {
            if !row_fields.iter().any(|(k, _)| k == name) {
                row_fields.push((name.to_string(), Value::Int(0)));
            }
        }
    }
}

impl FlightRecord {
    /// Parse a record, rejecting schema mismatches loudly.
    ///
    /// Older schema versions are upgraded on read rather than rejected:
    /// v1/v2 flow points predate the cumulative `delivered_bytes` / `retx`
    /// counters (backfilled to 0 — analysis over such records sees zero
    /// goodput, not garbage), and v1 queue points predate multi-bottleneck
    /// `link` ids (backfilled to 0). The original `schema_version` is kept
    /// so provenance stays visible. Unknown (future) versions still fail.
    pub fn parse(s: &str) -> Result<FlightRecord, JsonError> {
        let mut v = elephants_json::parse(s)?;
        let version = u32::from_json(v.get_field("schema_version")?)?;
        if version == 0 || version > FLIGHT_RECORD_VERSION {
            return Err(JsonError::new(format!(
                "flight record schema v{version} (reader supports v1..v{FLIGHT_RECORD_VERSION})"
            )));
        }
        if version < 3 {
            backfill_zero(&mut v, "flow_samples", "delivered_bytes");
            backfill_zero(&mut v, "flow_samples", "retx");
        }
        if version < 2 {
            backfill_zero(&mut v, "queue_samples", "link");
        }
        FlightRecord::from_json(&v)
    }

    /// The distinct flow ids present, ascending.
    pub fn flow_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.flow_samples.iter().map(|p| p.flow).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The `(t, cwnd)` series of one flow (cwnd in bytes).
    pub fn cwnd_series(&self, flow: u32) -> Vec<(f64, f64)> {
        self.flow_samples
            .iter()
            .filter(|p| p.flow == flow)
            .map(|p| (p.t_s, p.cwnd as f64))
            .collect()
    }

    /// The `(t, cumulative delivered bytes)` series of one flow. All-zero
    /// for records older than schema v3 (the counter is backfilled).
    pub fn delivered_series(&self, flow: u32) -> Vec<(f64, f64)> {
        self.flow_samples
            .iter()
            .filter(|p| p.flow == flow)
            .map(|p| (p.t_s, p.delivered_bytes as f64))
            .collect()
    }

    /// The `(t, cumulative retransmitted segments)` series of one flow.
    pub fn retx_series(&self, flow: u32) -> Vec<(f64, f64)> {
        self.flow_samples
            .iter()
            .filter(|p| p.flow == flow)
            .map(|p| (p.t_s, p.retx as f64))
            .collect()
    }

    /// The distinct instrumented link ids present, ascending.
    pub fn queue_link_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.queue_samples.iter().map(|p| p.link).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The `(t, backlog_pkts)` series of the primary bottleneck queue (the
    /// lowest instrumented link id — the only one on a dumbbell).
    pub fn queue_series(&self) -> Vec<(f64, f64)> {
        match self.queue_link_ids().first() {
            Some(&link) => self.queue_series_for(link),
            None => Vec::new(),
        }
    }

    /// The `(t, backlog_pkts)` series of one instrumented link's queue.
    pub fn queue_series_for(&self, link: u32) -> Vec<(f64, f64)> {
        self.queue_samples
            .iter()
            .filter(|p| p.link == link)
            .map(|p| (p.t_s, p.backlog_pkts as f64))
            .collect()
    }

    /// Number of completed ProbeBW cycles visible in a flow's phase series:
    /// transitions *into* the 1.25 up-probe phase (BBRv1 labels it
    /// `"probe_bw:1.25"`, BBRv2 `"probe_bw:up"`).
    pub fn probe_bw_cycles(&self, flow: u32) -> u64 {
        let mut cycles = 0;
        let mut prev_up = false;
        for p in self.flow_samples.iter().filter(|p| p.flow == flow) {
            let up = p.phase == "probe_bw:1.25" || p.phase == "probe_bw:up";
            if up && !prev_up {
                cycles += 1;
            }
            prev_up = up;
        }
        cycles
    }
}

/// The concrete [`Recorder`] the experiments layer installs: accumulates
/// samples in memory and is consumed into a [`FlightRecord`] after the run.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    flow_samples: Vec<FlowPoint>,
    queue_samples: Vec<QueuePoint>,
    events: Vec<EventPoint>,
    events_truncated: u64,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Number of flow samples captured so far.
    pub fn flow_sample_count(&self) -> usize {
        self.flow_samples.len()
    }

    /// Consume the recorder into the versioned artifact.
    pub fn into_record(self, label: String, seed: u64, interval: SimDuration) -> FlightRecord {
        FlightRecord {
            schema_version: FLIGHT_RECORD_VERSION,
            label,
            seed,
            sample_interval_s: interval.as_secs_f64(),
            flow_samples: self.flow_samples,
            queue_samples: self.queue_samples,
            events: self.events,
            events_truncated: self.events_truncated,
        }
    }
}

impl Recorder for FlightRecorder {
    fn on_flow_sample(&mut self, s: &FlowSample) {
        self.flow_samples.push(FlowPoint {
            t_s: s.t.as_nanos() as f64 / 1e9,
            flow: s.flow.0,
            cwnd: s.probe.cwnd,
            pacing_bps: s.probe.pacing_rate,
            srtt_s: s.probe.srtt.map(|d| d.as_secs_f64()),
            inflight: s.probe.inflight,
            phase: s.probe.phase.to_string(),
            delivered_bytes: s.delivered_bytes,
            retx: s.retx,
        });
    }

    fn on_queue_sample(&mut self, s: &QueueSample) {
        self.queue_samples.push(QueuePoint {
            t_s: s.t.as_nanos() as f64 / 1e9,
            link: s.link.0,
            backlog_pkts: s.backlog_pkts,
            backlog_bytes: s.backlog_bytes,
            dropped: s.dropped,
            marked: s.marked,
            control: s.control,
        });
    }

    fn on_trace_event(&mut self, e: &TraceEvent) {
        self.events.push(EventPoint {
            t_s: e.t.as_nanos() as f64 / 1e9,
            kind: e.kind.label().to_string(),
            flow: if e.flow == TRACE_NO_FLOW { u32::MAX } else { e.flow.0 },
            seq: e.seq,
            size: e.size,
        });
    }

    fn on_trace_truncated(&mut self, count: u64) {
        self.events_truncated = count;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_json::ToJson;
    use elephants_netsim::{FlowId, FlowProbe, LinkId, SimTime, TraceEventKind};

    fn sample(t_ms: u64, flow: u32, cwnd: u64, phase: &'static str) -> FlowSample {
        FlowSample {
            t: SimTime::ZERO + SimDuration::from_millis(t_ms),
            flow: FlowId(flow),
            probe: FlowProbe {
                cwnd,
                pacing_rate: Some(1_000_000),
                srtt: Some(SimDuration::from_millis(62)),
                inflight: cwnd / 2,
                phase,
            },
            delivered_bytes: cwnd * t_ms,
            retx: t_ms / 10,
        }
    }

    fn record_with_phases(phases: &[&'static str]) -> FlightRecord {
        let mut rec = FlightRecorder::new();
        for (i, ph) in phases.iter().enumerate() {
            rec.on_flow_sample(&sample(i as u64 * 10, 0, 10_000, ph));
        }
        rec.into_record("test".into(), 1, SimDuration::from_millis(10))
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut rec = FlightRecorder::new();
        rec.on_flow_sample(&sample(10, 0, 14_800, "slow_start"));
        rec.on_flow_sample(&sample(20, 1, 29_600, "probe_bw:1.25"));
        rec.on_queue_sample(&QueueSample {
            t: SimTime::ZERO + SimDuration::from_millis(10),
            link: LinkId(1),
            backlog_pkts: 12,
            backlog_bytes: 18_000,
            dropped: 3,
            marked: 0,
            control: Some(0.25),
        });
        rec.on_trace_event(&TraceEvent {
            t: SimTime::ZERO + SimDuration::from_millis(5),
            kind: TraceEventKind::Drop,
            flow: FlowId(1),
            seq: 77,
            size: 1500,
        });
        rec.on_trace_truncated(9);
        let record = rec.into_record("cubic-vs-bbr1".into(), 42, SimDuration::from_millis(10));
        let json = record.to_json_string();
        let back = FlightRecord::parse(&json).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.schema_version, FLIGHT_RECORD_VERSION);
        assert_eq!(back.events_truncated, 9);
        assert_eq!(back.flow_ids(), vec![0, 1]);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let record = FlightRecorder::new().into_record("x".into(), 0, SimDuration::from_millis(1));
        let json = record.to_json_string().replace("\"schema_version\":3", "\"schema_version\":99");
        let err = FlightRecord::parse(&json).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        let zero = record.to_json_string().replace("\"schema_version\":3", "\"schema_version\":0");
        assert!(FlightRecord::parse(&zero).is_err(), "v0 was never written");
    }

    #[test]
    fn v2_records_parse_with_counters_backfilled() {
        // A pre-v3 record: flow points have no delivered_bytes/retx.
        let json = r#"{"schema_version":2,"label":"old","seed":5,"sample_interval_s":0.01,
            "flow_samples":[{"t_s":0.01,"flow":0,"cwnd":14800,"pacing_bps":null,
                "srtt_s":0.062,"inflight":7400,"phase":"slow_start"}],
            "queue_samples":[{"t_s":0.01,"link":1,"backlog_pkts":2,"backlog_bytes":3000,
                "dropped":0,"marked":0,"control":null}],
            "events":[],"events_truncated":0}"#;
        let rec = FlightRecord::parse(json).unwrap();
        assert_eq!(rec.schema_version, 2, "provenance is preserved");
        assert_eq!(rec.flow_samples[0].delivered_bytes, 0);
        assert_eq!(rec.flow_samples[0].retx, 0);
        assert_eq!(rec.flow_samples[0].cwnd, 14_800);
        assert_eq!(rec.queue_samples[0].link, 1);
    }

    #[test]
    fn v1_records_parse_with_link_and_counters_backfilled() {
        // The v1 era: single bottleneck, queue points had no link id.
        let json = r#"{"schema_version":1,"label":"ancient","seed":5,"sample_interval_s":0.01,
            "flow_samples":[{"t_s":0.01,"flow":1,"cwnd":29600,"pacing_bps":2000000,
                "srtt_s":null,"inflight":0,"phase":"startup"}],
            "queue_samples":[{"t_s":0.01,"backlog_pkts":9,"backlog_bytes":13500,
                "dropped":1,"marked":0,"control":0.5}],
            "events":[],"events_truncated":0}"#;
        let rec = FlightRecord::parse(json).unwrap();
        assert_eq!(rec.schema_version, 1);
        assert_eq!(rec.flow_samples[0].delivered_bytes, 0);
        assert_eq!(rec.flow_samples[0].retx, 0);
        assert_eq!(rec.queue_samples[0].link, 0, "v1 queue points map to link 0");
        assert_eq!(rec.queue_series_for(0).len(), 1);
    }

    #[test]
    fn probe_bw_cycle_counting() {
        // Three entries into the up-probe phase = 3 cycles; consecutive
        // up-probe samples count once.
        let rec = record_with_phases(&[
            "startup",
            "drain",
            "probe_bw:1.25",
            "probe_bw:1.25",
            "probe_bw:0.75",
            "probe_bw:1.00",
            "probe_bw:1.25",
            "probe_bw:0.75",
            "probe_rtt",
            "probe_bw:1.25",
        ]);
        assert_eq!(rec.probe_bw_cycles(0), 3);
        assert_eq!(rec.probe_bw_cycles(1), 0, "unknown flow has no cycles");
    }

    #[test]
    fn per_link_queue_series_split() {
        let mut rec = FlightRecorder::new();
        for (tick, link, pkts) in [(0u64, 4u32, 3u64), (0, 5, 7), (10, 4, 4), (10, 5, 8)] {
            rec.on_queue_sample(&QueueSample {
                t: SimTime::ZERO + SimDuration::from_millis(tick),
                link: LinkId(link),
                backlog_pkts: pkts,
                backlog_bytes: pkts * 1500,
                dropped: 0,
                marked: 0,
                control: None,
            });
        }
        let record = rec.into_record("pl".into(), 7, SimDuration::from_millis(10));
        assert_eq!(record.queue_link_ids(), vec![4, 5]);
        // The unqualified series is the lowest-id (primary) link.
        assert_eq!(record.queue_series(), record.queue_series_for(4));
        assert_eq!(record.queue_series_for(4).len(), 2);
        let deep: Vec<f64> = record.queue_series_for(5).iter().map(|p| p.1).collect();
        assert_eq!(deep, vec![7.0, 8.0]);
        assert!(record.queue_series_for(99).is_empty());
    }

    #[test]
    fn series_extraction() {
        let rec = record_with_phases(&["startup", "drain"]);
        let cwnd = rec.cwnd_series(0);
        assert_eq!(cwnd.len(), 2);
        assert!((cwnd[0].0 - 0.0).abs() < 1e-12);
        assert!((cwnd[1].0 - 0.01).abs() < 1e-12);
        assert_eq!(cwnd[0].1, 10_000.0);
        let delivered = rec.delivered_series(0);
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[1].1, 100_000.0, "cumulative counter rides the sample");
        assert_eq!(rec.retx_series(0)[1].1, 1.0);
        assert!(rec.queue_series().is_empty());
    }
}
