//! FQ-CoDel — flow-queuing CoDel (RFC 8290, `tc fq_codel`).
//!
//! Arriving packets are hashed by flow into one of `flows` sub-queues.
//! Sub-queues are served by deficit round robin (quantum = one MTU by
//! default) with the usual new-flow priority list, and each sub-queue is
//! governed by its own CoDel instance. On overflow, packets are dropped from
//! the head of the *fattest* sub-queue, which is what protects light flows
//! from heavy ones.

use crate::codel::{CodelConfig, CodelState};
use elephants_netsim::{Aqm, AqmStats, CheckFailure, DequeueResult, Packet, SimTime, Verdict};
use elephants_json::impl_json_struct;
use elephants_netsim::SmallRng;
use std::collections::VecDeque;

/// FQ-CoDel parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FqCodelConfig {
    /// Number of hash buckets (tc default 1024).
    pub flows: usize,
    /// DRR quantum in bytes (tc default: one MTU).
    pub quantum: u32,
    /// Hard limit on total queued packets (tc default 10240).
    pub limit_pkts: usize,
    /// Hard limit on total queued bytes (tc `memory_limit`, default 32 MB).
    pub memory_limit: u64,
    /// Per-bucket CoDel parameters.
    pub codel: CodelConfig,
    /// Salt mixed into the flow hash (set per run for collision realism).
    pub hash_salt: u64,
}

impl_json_struct!(FqCodelConfig { flows, quantum, limit_pkts, memory_limit, codel, hash_salt });

impl FqCodelConfig {
    /// `tc fq_codel` defaults for the given MTU, with the byte capacity of
    /// the configured buffer.
    pub fn tc_defaults(buffer_bytes: u64, mtu: u32) -> Self {
        FqCodelConfig {
            flows: 1024,
            quantum: mtu,
            // tc defaults to 10240 packets; honour the experiment's buffer
            // size in packets so the "queue length" knob stays meaningful.
            limit_pkts: ((buffer_bytes / mtu as u64) as usize).clamp(64, 10240 * 64),
            memory_limit: buffer_bytes.max(4 * mtu as u64),
            codel: CodelConfig {
                limit_bytes: u64::MAX, // bucket-level limit unused; global limits apply
                mtu,
                ..CodelConfig::default()
            },
            hash_salt: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ListState {
    Idle,
    New,
    Old,
}

#[derive(Debug)]
struct Bucket {
    queue: VecDeque<Packet>,
    codel: CodelState,
    deficit: i64,
    backlog: u64,
    state: ListState,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            queue: VecDeque::new(),
            codel: CodelState::default(),
            deficit: 0,
            backlog: 0,
            state: ListState::Idle,
        }
    }
}

/// The FQ-CoDel discipline.
pub struct FqCodel {
    cfg: FqCodelConfig,
    buckets: Vec<Bucket>,
    new_flows: VecDeque<usize>,
    old_flows: VecDeque<usize>,
    total_pkts: usize,
    total_bytes: u64,
    /// Packets accepted (counted in `stats.enqueued`) and later evicted by
    /// the fattest-flow overflow policy. Unlike the other disciplines, those
    /// drops remove packets that were already on the `enqueued` side of the
    /// ledger, so the accounting invariant needs them as a separate term.
    evicted_accepted: u64,
    stats: AqmStats,
}

impl FqCodel {
    /// Build an FQ-CoDel queue.
    pub fn new(cfg: FqCodelConfig) -> Self {
        assert!(cfg.flows > 0 && cfg.flows.is_power_of_two(), "flows must be a power of two");
        assert!(cfg.quantum > 0);
        FqCodel {
            buckets: (0..cfg.flows).map(|_| Bucket::new()).collect(),
            new_flows: VecDeque::new(),
            old_flows: VecDeque::new(),
            total_pkts: 0,
            total_bytes: 0,
            evicted_accepted: 0,
            stats: AqmStats::default(),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FqCodelConfig {
        &self.cfg
    }

    /// Bucket index for a flow (exposed for tests).
    pub fn bucket_of(&self, flow: u32) -> usize {
        // Fibonacci hashing mixed with the per-run salt.
        let h = (flow as u64 ^ self.cfg.hash_salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.cfg.flows - 1)
    }

    /// Number of distinct non-empty buckets (diagnostic).
    pub fn active_buckets(&self) -> usize {
        self.buckets.iter().filter(|b| !b.queue.is_empty()).count()
    }

    fn drop_from_fattest(&mut self) -> Option<Packet> {
        let (idx, _) = self
            .buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.backlog)?;
        let b = &mut self.buckets[idx];
        let pkt = b.queue.pop_front()?;
        b.backlog -= pkt.size as u64;
        self.total_pkts -= 1;
        self.total_bytes -= pkt.size as u64;
        self.stats.dropped_enqueue += 1;
        Some(pkt)
    }
}

impl Aqm for FqCodel {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime, _rng: &mut SmallRng) -> Verdict {
        let idx = self.bucket_of(pkt.flow.0);
        pkt.enqueued_at = now;
        let key = (pkt.flow, pkt.seq, pkt.kind);
        {
            let b = &mut self.buckets[idx];
            b.queue.push_back(pkt);
            b.backlog += pkt.size as u64;
            if b.state == ListState::Idle {
                b.state = ListState::New;
                b.deficit = self.cfg.quantum as i64;
                self.new_flows.push_back(idx);
            }
        }
        self.total_pkts += 1;
        self.total_bytes += pkt.size as u64;
        self.stats.enqueued += 1;

        let mut own_dropped = false;
        while self.total_pkts > self.cfg.limit_pkts || self.total_bytes > self.cfg.memory_limit {
            match self.drop_from_fattest() {
                Some(d) => {
                    if (d.flow, d.seq, d.kind) == key {
                        own_dropped = true;
                    } else {
                        self.evicted_accepted += 1;
                    }
                }
                None => break,
            }
        }
        if own_dropped {
            // The just-enqueued packet itself was evicted.
            self.stats.enqueued -= 1;
            Verdict::Dropped
        } else {
            Verdict::Enqueued
        }
    }

    fn dequeue(&mut self, now: SimTime, _rng: &mut SmallRng) -> DequeueResult {
        let mut dropped_total = 0u32;
        loop {
            let (idx, from_new) = if let Some(&idx) = self.new_flows.front() {
                (idx, true)
            } else if let Some(&idx) = self.old_flows.front() {
                (idx, false)
            } else {
                return DequeueResult { pkt: None, dropped: dropped_total };
            };

            if self.buckets[idx].deficit <= 0 {
                let q = self.cfg.quantum as i64;
                let b = &mut self.buckets[idx];
                b.deficit += q;
                b.state = ListState::Old;
                if from_new {
                    self.new_flows.pop_front();
                } else {
                    self.old_flows.pop_front();
                }
                self.old_flows.push_back(idx);
                continue;
            }

            // Run CoDel on this bucket.
            let cfg = self.cfg.codel;
            let popped_bytes = std::cell::Cell::new(0u64);
            let (pkt, outcome) = {
                let b = &mut self.buckets[idx];
                let backlog_ref = std::cell::RefCell::new(&mut b.backlog);
                let queue_ref = std::cell::RefCell::new(&mut b.queue);
                let pb = &popped_bytes;
                let mut pop = || {
                    let r = queue_ref.borrow_mut().pop_front();
                    if let Some(ref p) = r {
                        **backlog_ref.borrow_mut() -= p.size as u64;
                        pb.set(pb.get() + p.size as u64);
                    }
                    r
                };
                let backlog_fn = || **backlog_ref.borrow();
                b.codel.dequeue(&cfg, now, &mut pop, &backlog_fn)
            };
            let popped = outcome.dropped as usize + pkt.is_some() as usize;
            self.total_pkts -= popped;
            self.total_bytes -= popped_bytes.get();
            dropped_total += outcome.dropped;
            self.stats.dropped_dequeue += outcome.dropped as u64;
            self.stats.marked += outcome.marked as u64;

            match pkt {
                Some(p) => {
                    let b = &mut self.buckets[idx];
                    b.deficit -= p.size as i64;
                    self.stats.dequeued += 1;
                    return DequeueResult { pkt: Some(p), dropped: dropped_total };
                }
                None => {
                    // Bucket emptied (possibly after CoDel drops).
                    let b = &mut self.buckets[idx];
                    if from_new {
                        // Move to old list so it keeps its turn if it refills
                        // within this round (RFC 8290 §4.2.2).
                        self.new_flows.pop_front();
                        b.state = ListState::Old;
                        self.old_flows.push_back(idx);
                    } else {
                        self.old_flows.pop_front();
                        b.state = ListState::Idle;
                    }
                    continue;
                }
            }
        }
    }

    fn backlog_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn backlog_pkts(&self) -> usize {
        self.total_pkts
    }

    fn stats(&self) -> AqmStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "fq_codel"
    }

    fn check_invariants(&self, now: SimTime, deep: bool) -> Vec<CheckFailure> {
        let mut fails = Vec::new();
        // FQ-CoDel's overflow policy evicts packets that were already counted
        // as enqueued, so the shared accounting identity gains an eviction
        // term relative to the other disciplines.
        let s = self.stats;
        let expect = s.dequeued + s.dropped_dequeue + self.evicted_accepted + self.total_pkts as u64;
        if s.enqueued != expect {
            let (e, d, dd, ev, r) =
                (s.enqueued, s.dequeued, s.dropped_dequeue, self.evicted_accepted, self.total_pkts);
            fails.push(CheckFailure::new(
                "queue_accounting",
                format!("enqueued {e} != dequeued {d} + dropped_dequeue {dd} + evicted {ev} + resident {r}"),
            ));
        }
        if deep {
            let mut pkts = 0usize;
            let mut bytes = 0u64;
            for (idx, b) in self.buckets.iter().enumerate() {
                pkts += b.queue.len();
                bytes += b.backlog;
                let sum: u64 = b.queue.iter().map(|p| p.size as u64).sum();
                if sum != b.backlog {
                    let backlog = b.backlog;
                    fails.push(CheckFailure::new(
                        "queue_byte_accounting",
                        format!("bucket {idx}: backlog counter {backlog} != sum of resident sizes {sum}"),
                    ));
                }
                if let Some(p) = b.queue.iter().find(|p| p.enqueued_at > now) {
                    let at = p.enqueued_at;
                    fails.push(CheckFailure::new(
                        "queue_sojourn",
                        format!("bucket {idx}: resident packet enqueued in the future ({at} > {now})"),
                    ));
                }
                // DRR list discipline: a non-idle bucket sits on exactly one
                // service list, and an idle bucket never holds packets
                // (eviction may leave a listed bucket empty; dequeue reaps it
                // lazily, so the converse is allowed).
                let on_new = self.new_flows.iter().filter(|&&i| i == idx).count();
                let on_old = self.old_flows.iter().filter(|&&i| i == idx).count();
                let want = match b.state {
                    ListState::Idle => (0, 0),
                    ListState::New => (1, 0),
                    ListState::Old => (0, 1),
                };
                if (on_new, on_old) != want {
                    let state = b.state;
                    fails.push(CheckFailure::new(
                        "fq_codel_drr_lists",
                        format!("bucket {idx} state {state:?} but appears {on_new}x on new / {on_old}x on old list"),
                    ));
                }
                if b.state == ListState::Idle && !b.queue.is_empty() {
                    fails.push(CheckFailure::new(
                        "fq_codel_drr_lists",
                        format!("bucket {idx} idle with {} resident packets", b.queue.len()),
                    ));
                }
            }
            if pkts != self.total_pkts || bytes != self.total_bytes {
                let (tp, tb) = (self.total_pkts, self.total_bytes);
                fails.push(CheckFailure::new(
                    "queue_byte_accounting",
                    format!("totals ({tp} pkts, {tb} bytes) != bucket sums ({pkts} pkts, {bytes} bytes)"),
                ));
            }
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_netsim::{FlowId, NodeId, SimDuration};
    use elephants_netsim::SeedableRng;

    fn pkt(flow: u32, seq: u64, size: u32, t: SimTime) -> Packet {
        Packet::data(FlowId(flow), NodeId(0), NodeId(1), seq, size, t)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn cfg() -> FqCodelConfig {
        FqCodelConfig::tc_defaults(1_000_000, 1000)
    }

    #[test]
    fn single_flow_fifo_order() {
        let mut q = FqCodel::new(cfg());
        let mut r = rng();
        for i in 0..10 {
            assert_eq!(q.enqueue(pkt(7, i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r), Verdict::Enqueued);
        }
        for i in 0..10 {
            let p = q.dequeue(SimTime::ZERO, &mut r).pkt.unwrap();
            assert_eq!(p.seq, i);
        }
        assert!(q.dequeue(SimTime::ZERO, &mut r).pkt.is_none());
        assert_eq!(q.backlog_bytes(), 0);
        assert_eq!(q.backlog_pkts(), 0);
    }

    #[test]
    fn two_flows_interleave_round_robin() {
        let mut q = FqCodel::new(cfg());
        let mut r = rng();
        // Flow 1 queues 10 packets, flow 2 queues 10 packets, equal sizes.
        for i in 0..10 {
            q.enqueue(pkt(1, i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r);
        }
        for i in 0..10 {
            q.enqueue(pkt(2, i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r);
        }
        // Service alternates between the flows (quantum = 1 packet here).
        let mut seen = vec![];
        for _ in 0..20 {
            let p = q.dequeue(SimTime::ZERO, &mut r).pkt.unwrap();
            seen.push(p.flow.0);
        }
        let f1_first_half = seen[..10].iter().filter(|&&f| f == 1).count();
        assert!(
            (4..=6).contains(&f1_first_half),
            "flows must interleave, got {seen:?}"
        );
    }

    #[test]
    fn heavy_flow_cannot_starve_light_flow() {
        let mut q = FqCodel::new(cfg());
        let mut r = rng();
        // Heavy flow floods; light flow sends one packet afterwards.
        for i in 0..500 {
            q.enqueue(pkt(1, i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r);
        }
        q.enqueue(pkt(2, 0, 1000, SimTime::ZERO), SimTime::ZERO, &mut r);
        // The light flow's packet must be served within the first few
        // dequeues (it sits on the new-flows list).
        let mut position = None;
        for i in 0..10 {
            let p = q.dequeue(SimTime::ZERO, &mut r).pkt.unwrap();
            if p.flow.0 == 2 {
                position = Some(i);
                break;
            }
        }
        assert!(position.is_some() && position.unwrap() <= 2, "light flow served at {position:?}");
    }

    #[test]
    fn overflow_drops_from_fattest_flow() {
        let mut c = cfg();
        c.limit_pkts = 20;
        let mut q = FqCodel::new(c);
        let mut r = rng();
        // Flow 1 fills most of the queue; flow 2 adds two packets.
        for i in 0..19 {
            q.enqueue(pkt(1, i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r);
        }
        for i in 0..2 {
            let v = q.enqueue(pkt(2, i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r);
            // Flow 2's packets survive: the fattest flow (1) takes the hit.
            assert_eq!(v, Verdict::Enqueued);
        }
        assert_eq!(q.backlog_pkts(), 20);
        assert_eq!(q.stats().dropped_enqueue, 1);
    }

    #[test]
    fn memory_limit_enforced() {
        let mut c = cfg();
        c.memory_limit = 10_000;
        c.limit_pkts = usize::MAX >> 1;
        let mut q = FqCodel::new(c);
        let mut r = rng();
        for i in 0..50 {
            q.enqueue(pkt(1, i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r);
        }
        assert!(q.backlog_bytes() <= 10_000);
    }

    #[test]
    fn codel_drops_under_sustained_per_flow_delay() {
        let mut q = FqCodel::new(cfg());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        for i in 0..800 {
            q.enqueue(pkt(1, i, 1000, t0), t0, &mut r);
        }
        let mut dropped = 0;
        let mut t = t0 + SimDuration::from_millis(120);
        for _ in 0..400 {
            t += SimDuration::from_millis(2);
            dropped += q.dequeue(t, &mut r).dropped;
        }
        assert!(dropped > 0, "per-bucket CoDel must engage");
        assert_eq!(q.stats().dropped_dequeue as u32, dropped);
    }

    #[test]
    fn byte_and_packet_accounting_consistent() {
        let mut q = FqCodel::new(cfg());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        for f in 0..8 {
            for i in 0..50 {
                q.enqueue(pkt(f, i, 500 + 100 * f, t0), t0, &mut r);
            }
        }
        let mut t = t0 + SimDuration::from_millis(150);
        while q.backlog_pkts() > 0 {
            t += SimDuration::from_micros(100);
            q.dequeue(t, &mut r);
        }
        assert_eq!(q.backlog_bytes(), 0, "bytes must return to zero");
        let s = q.stats();
        assert_eq!(s.enqueued, s.dequeued + s.dropped_dequeue + s.dropped_enqueue);
    }

    #[test]
    fn hashing_is_stable_and_salted() {
        let q1 = FqCodel::new(cfg());
        assert_eq!(q1.bucket_of(42), q1.bucket_of(42));
        let mut c2 = cfg();
        c2.hash_salt = 0xDEAD_BEEF;
        let q2 = FqCodel::new(c2);
        // Different salts should move at least some flows.
        let moved = (0..1000u32).filter(|&f| q1.bucket_of(f) != q2.bucket_of(f)).count();
        assert!(moved > 900, "salt must perturb the hash ({moved}/1000 moved)");
    }

    #[test]
    fn quantum_respects_packet_size_fairness() {
        // Flow 1 sends big packets, flow 2 small; byte shares should be
        // approximately equal over a long service sequence.
        let mut c = cfg();
        c.quantum = 1000;
        let mut q = FqCodel::new(c);
        let mut r = rng();
        for i in 0..300 {
            q.enqueue(pkt(1, i, 2000, SimTime::ZERO), SimTime::ZERO, &mut r);
            q.enqueue(pkt(2, 1000 + i, 500, SimTime::ZERO), SimTime::ZERO, &mut r);
            q.enqueue(pkt(2, 2000 + i, 500, SimTime::ZERO), SimTime::ZERO, &mut r);
            q.enqueue(pkt(2, 3000 + i, 500, SimTime::ZERO), SimTime::ZERO, &mut r);
        }
        let (mut b1, mut b2) = (0u64, 0u64);
        for _ in 0..600 {
            if let Some(p) = q.dequeue(SimTime::ZERO, &mut r).pkt {
                if p.flow.0 == 1 {
                    b1 += p.size as u64;
                } else {
                    b2 += p.size as u64;
                }
            }
        }
        let ratio = b1 as f64 / b2 as f64;
        assert!((0.8..=1.25).contains(&ratio), "byte-fair DRR, ratio {ratio}");
    }
}
