//! # elephants-aqm
//!
//! The queue disciplines the paper evaluates on the bottleneck router:
//!
//! * **FIFO** — plain droptail ([`elephants_netsim::DropTail`], re-exported
//!   here for convenience);
//! * **RED** — Random Early Detection (Floyd & Jacobson 1993) with
//!   `tc red`-style parameters, including the "gentle" extension;
//! * **CoDel** — Controlled Delay (Nichols & Jacobson, RFC 8289);
//! * **FQ-CoDel** — flow-queuing CoDel (RFC 8290): 1024 DRR queues, each
//!   governed by CoDel, as in `tc fq_codel`.
//!
//! All disciplines implement [`elephants_netsim::Aqm`] and are deterministic
//! given the run RNG.
//!
//! The paper's central RED finding — utilization collapse on ≥1 Gbps links —
//! comes from *unscaled default parameters*: thresholds that are generous at
//! hundreds of Mbps but a tiny fraction of the BDP at 10–25 Gbps. The
//! defaults in [`RedConfig`] intentionally mirror that practice (fixed byte
//! thresholds, not BDP-proportional); see `DESIGN.md`.

pub mod codel;
pub mod config;
pub mod fq_codel;
pub mod pie;
pub mod red;

pub use codel::{Codel, CodelConfig, CodelState};
pub use config::{build_aqm, AqmKind};
pub use elephants_netsim::{Aqm, AqmStats, DequeueResult, DropTail, Verdict};
pub use fq_codel::{FqCodel, FqCodelConfig};
pub use pie::{Pie, PieConfig};
pub use red::{Red, RedConfig};
