//! Random Early Detection (Floyd & Jacobson 1993), `tc red` flavour.
//!
//! RED keeps an exponentially-weighted moving average of the queue length
//! and drops arriving packets with a probability that rises linearly between
//! a minimum and maximum threshold. The "gentle" extension (on by default,
//! as in modern `tc red`) extends the linear ramp from `max_p` at `max_th`
//! to 1.0 at `2 * max_th` instead of cliff-dropping.
//!
//! The EWMA decays during idle periods as if small packets had departed, per
//! the original paper (§Appendix) and `tc red`'s `red_calc_qavg_from_idle_time`.

use elephants_netsim::{queue_accounting_failure, Aqm, AqmStats, CheckFailure, DequeueResult, Packet, SimTime, Verdict};
use elephants_json::impl_json_struct;
use elephants_netsim::{RngExt, SmallRng};
use std::collections::VecDeque;

/// RED parameters (byte-based, like `tc red`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// Hard queue limit in bytes.
    pub limit_bytes: u64,
    /// Lower threshold on the average queue (bytes): below this, never drop.
    pub min_th: u64,
    /// Upper threshold (bytes): at this average the drop probability is `max_p`.
    pub max_th: u64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue size.
    pub w_q: f64,
    /// Mean packet size used for idle-time decay (avpkt).
    pub avpkt: u32,
    /// Link bandwidth in bits/s, used for idle-time decay.
    pub bandwidth_bps: u64,
    /// Gentle mode: linear ramp `max_p → 1` between `max_th` and `2*max_th`.
    pub gentle: bool,
    /// Mark ECN-capable packets instead of dropping (off in the paper).
    pub ecn: bool,
}

impl_json_struct!(RedConfig {
    limit_bytes,
    min_th,
    max_th,
    max_p,
    w_q,
    avpkt,
    bandwidth_bps,
    gentle,
    ecn,
});

impl RedConfig {
    /// Operator-style defaults, deliberately *not* scaled with the
    /// bandwidth-delay product.
    ///
    /// These mirror the ubiquitous `tc red` examples (fixed byte thresholds
    /// sized for sub-Gbps links): adequate headroom at 100–500 Mbps, but a
    /// tiny fraction of the BDP at 10–25 Gbps — which is exactly the
    /// mis-configuration regime the paper measures.
    pub fn tc_defaults(limit_bytes: u64, bandwidth_bps: u64, avpkt: u32) -> Self {
        // Classic guidance: max <= limit/4, min = max/3. But cap the
        // thresholds at fixed absolute values so they do not grow with
        // multi-gigabyte high-BDP buffers. The cap follows the canonical
        // `tc red` examples (min 30 kB / max 90 kB for 1.5 kB packets),
        // scaled by the jumbo-frame factor: ~0.35 BDP at 100 Mbps but a
        // sliver of the BDP at 10-25 Gbps, where the aggregate AIMD
        // sawtooth (~sqrt(n_flows) x per-flow amplitude) repeatedly drains
        // the queue to empty -- the paper's high-bandwidth RED collapse.
        let max_th_cap: u64 = 12 * avpkt as u64; // ~107 kB with jumbo frames
        let max_th = (limit_bytes / 4).min(max_th_cap).max(3 * avpkt as u64);
        let min_th = (max_th / 3).max(avpkt as u64);
        // tc derives the EWMA constant from `burst = (2 min + max)/(3 avpkt)`
        // -- i.e. the filter reacts within a couple dozen packets. At high
        // packet rates this makes the average track the instantaneous queue
        // almost exactly, which is the "arrival rate dependency" the paper
        // calls out.
        let burst = ((2 * min_th + max_th) as f64 / (3.0 * avpkt as f64)).max(2.0);
        let w_q = 1.0 - (-1.0 / burst).exp();
        RedConfig {
            limit_bytes,
            min_th,
            max_th,
            max_p: 0.02,
            w_q,
            avpkt,
            bandwidth_bps,
            // tc red is non-gentle unless explicitly configured otherwise;
            // the hard cliff above max_th (drop *everything* while the
            // average sits above the threshold) is the arrival-rate
            // sensitivity the paper's RED findings hinge on.
            gentle: false,
            ecn: false,
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_th >= self.max_th {
            return Err(format!("RED min_th {} >= max_th {}", self.min_th, self.max_th));
        }
        if self.max_th > self.limit_bytes {
            return Err("RED max_th exceeds limit".into());
        }
        if !(0.0..=1.0).contains(&self.max_p) {
            return Err("RED max_p out of range".into());
        }
        if !(self.w_q > 0.0 && self.w_q <= 1.0) {
            return Err("RED w_q out of range".into());
        }
        Ok(())
    }
}

/// The RED queue discipline.
#[derive(Debug)]
pub struct Red {
    cfg: RedConfig,
    queue: VecDeque<Packet>,
    backlog: u64,
    /// EWMA of the queue length in bytes.
    avg: f64,
    /// Packets enqueued since the last early drop/mark (Floyd's `count`).
    count_since_drop: u64,
    /// When the queue went idle (None while busy).
    idle_since: Option<SimTime>,
    stats: AqmStats,
}

impl Red {
    /// Build a RED queue; panics on invalid config.
    pub fn new(cfg: RedConfig) -> Self {
        cfg.validate().expect("invalid RED config");
        Red {
            cfg,
            queue: VecDeque::new(),
            backlog: 0,
            avg: 0.0,
            count_since_drop: 0,
            idle_since: None,
            stats: AqmStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RedConfig {
        &self.cfg
    }

    /// Current average queue estimate (bytes).
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    fn update_avg_on_arrival(&mut self, now: SimTime) {
        if let Some(idle_start) = self.idle_since.take() {
            // Decay the average as if `m` average-size packets departed
            // during the idle period.
            let idle = now.since(idle_start).as_secs_f64();
            let pkt_time = (self.cfg.avpkt as f64 * 8.0) / self.cfg.bandwidth_bps as f64;
            if pkt_time > 0.0 {
                let m = (idle / pkt_time).min(1e9);
                self.avg *= (1.0 - self.cfg.w_q).powf(m);
            }
        }
        self.avg += self.cfg.w_q * (self.backlog as f64 - self.avg);
    }

    /// Early-drop probability for the current average (Floyd's `p_b`),
    /// before the `count` correction. Exposed for tests.
    pub fn p_b(&self) -> f64 {
        let avg = self.avg;
        let min = self.cfg.min_th as f64;
        let max = self.cfg.max_th as f64;
        if avg < min {
            0.0
        } else if avg < max {
            self.cfg.max_p * (avg - min) / (max - min)
        } else if self.cfg.gentle && avg < 2.0 * max {
            self.cfg.max_p + (1.0 - self.cfg.max_p) * (avg - max) / max
        } else {
            1.0
        }
    }

    /// Decide whether to early-drop this arrival.
    fn should_early_drop(&mut self, rng: &mut SmallRng) -> bool {
        let p_b = self.p_b();
        if p_b <= 0.0 {
            self.count_since_drop = self.count_since_drop.saturating_add(1);
            return false;
        }
        if p_b >= 1.0 {
            self.count_since_drop = 0;
            return true;
        }
        // Floyd's uniformization: p_a = p_b / (1 - count * p_b), which spaces
        // drops more evenly than i.i.d. Bernoulli.
        let denom = 1.0 - self.count_since_drop as f64 * p_b;
        let p_a = if denom <= 0.0 { 1.0 } else { (p_b / denom).min(1.0) };
        if rng.random::<f64>() < p_a {
            self.count_since_drop = 0;
            true
        } else {
            self.count_since_drop += 1;
            false
        }
    }
}

impl Aqm for Red {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime, rng: &mut SmallRng) -> Verdict {
        self.update_avg_on_arrival(now);

        let early = self.avg >= self.cfg.min_th as f64 && self.should_early_drop(rng);
        if early {
            if self.cfg.ecn && pkt.ecn_capable && self.p_b() < 1.0 {
                pkt.ecn_ce = true;
                pkt.enqueued_at = now;
                self.backlog += pkt.size as u64;
                self.queue.push_back(pkt);
                self.stats.enqueued += 1;
                self.stats.marked += 1;
                return Verdict::Marked;
            }
            self.stats.dropped_enqueue += 1;
            return Verdict::Dropped;
        }
        if self.backlog + pkt.size as u64 > self.cfg.limit_bytes {
            // Hard (tail) drop.
            self.count_since_drop = 0;
            self.stats.dropped_enqueue += 1;
            return Verdict::Dropped;
        }
        pkt.enqueued_at = now;
        self.backlog += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued += 1;
        Verdict::Enqueued
    }

    fn dequeue(&mut self, now: SimTime, _rng: &mut SmallRng) -> DequeueResult {
        match self.queue.pop_front() {
            Some(pkt) => {
                self.backlog -= pkt.size as u64;
                self.stats.dequeued += 1;
                if self.queue.is_empty() {
                    self.idle_since = Some(now);
                }
                DequeueResult { pkt: Some(pkt), dropped: 0 }
            }
            None => {
                if self.idle_since.is_none() {
                    self.idle_since = Some(now);
                }
                DequeueResult::EMPTY
            }
        }
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn backlog_pkts(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> AqmStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "red"
    }

    fn control_state(&self) -> Option<f64> {
        Some(self.avg_queue())
    }

    fn check_invariants(&self, now: SimTime, deep: bool) -> Vec<CheckFailure> {
        let mut fails = Vec::new();
        if let Some(f) = queue_accounting_failure(self.stats, self.queue.len() as u64) {
            fails.push(f);
        }
        // The EWMA tracks the backlog, which the hard limit bounds; an
        // average outside [0, limit] (or NaN) means the control law drifted.
        let limit = self.cfg.limit_bytes as f64;
        if !self.avg.is_finite() || self.avg < 0.0 || self.avg > limit {
            let avg = self.avg;
            fails.push(CheckFailure::new(
                "red_avg_range",
                format!("average queue {avg} outside [0, {limit}]"),
            ));
        }
        if deep {
            let sum: u64 = self.queue.iter().map(|p| p.size as u64).sum();
            if sum != self.backlog {
                let backlog = self.backlog;
                fails.push(CheckFailure::new(
                    "queue_byte_accounting",
                    format!("backlog counter {backlog} != sum of resident sizes {sum}"),
                ));
            }
            if let Some(p) = self.queue.iter().find(|p| p.enqueued_at > now) {
                let at = p.enqueued_at;
                fails.push(CheckFailure::new(
                    "queue_sojourn",
                    format!("resident packet enqueued in the future ({at} > {now})"),
                ));
            }
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_netsim::{FlowId, NodeId};
    use elephants_netsim::SeedableRng;

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet::data(FlowId(0), NodeId(0), NodeId(1), seq, size, SimTime::ZERO)
    }

    fn cfg() -> RedConfig {
        RedConfig {
            limit_bytes: 100_000,
            min_th: 10_000,
            max_th: 30_000,
            max_p: 0.02,
            w_q: 0.2, // fast EWMA so tests converge quickly
            avpkt: 1000,
            bandwidth_bps: 10_000_000,
            gentle: true,
            ecn: false,
        }
    }

    #[test]
    fn below_min_th_never_drops() {
        let mut red = Red::new(cfg());
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..9 {
            assert_eq!(red.enqueue(pkt(i, 1000), SimTime::ZERO, &mut rng), Verdict::Enqueued);
        }
        assert_eq!(red.stats().dropped_enqueue, 0);
        assert!(red.avg_queue() < 10_000.0);
    }

    #[test]
    fn drop_probability_ramps_between_thresholds() {
        let mut red = Red::new(cfg());
        red.avg = 20_000.0; // midway between 10k and 30k
        let p = red.p_b();
        assert!((p - 0.01).abs() < 1e-12, "p_b={p}");
        red.avg = 30_000.0;
        assert!((red.p_b() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn gentle_ramp_above_max_th() {
        let mut red = Red::new(cfg());
        red.avg = 45_000.0; // max_th*1.5
        let p = red.p_b();
        // gentle: 0.02 + 0.98*(45k-30k)/30k = 0.51
        assert!((p - 0.51).abs() < 1e-9, "p={p}");
        red.avg = 60_000.0;
        assert_eq!(red.p_b(), 1.0);
    }

    #[test]
    fn non_gentle_cliff_at_max_th() {
        let mut c = cfg();
        c.gentle = false;
        let mut red = Red::new(c);
        red.avg = 31_000.0;
        assert_eq!(red.p_b(), 1.0);
    }

    #[test]
    fn sustained_overload_produces_early_drops() {
        let mut red = Red::new(cfg());
        let mut rng = SmallRng::seed_from_u64(7);
        // Enqueue far more than we dequeue.
        let mut t = SimTime::ZERO;
        let mut accepted = 0u64;
        for i in 0..200 {
            t += elephants_netsim::SimDuration::from_micros(10);
            if red.enqueue(pkt(i, 1000), t, &mut rng) != Verdict::Dropped {
                accepted += 1;
            }
            if i % 4 == 0 {
                red.dequeue(t, &mut rng);
            }
        }
        assert!(red.stats().dropped_enqueue > 0, "expected early drops");
        assert!(accepted > 0);
    }

    #[test]
    fn hard_limit_enforced() {
        let mut c = cfg();
        c.min_th = 90_000;
        c.max_th = 95_000;
        let mut red = Red::new(c);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut drops = 0;
        for i in 0..200 {
            if red.enqueue(pkt(i, 1000), SimTime::ZERO, &mut rng) == Verdict::Dropped {
                drops += 1;
            }
        }
        assert!(red.backlog_bytes() <= 100_000);
        assert!(drops >= 100);
    }

    #[test]
    fn idle_decay_reduces_average() {
        let mut red = Red::new(cfg());
        let mut rng = SmallRng::seed_from_u64(2);
        let mut t = SimTime::ZERO;
        for i in 0..8 {
            red.enqueue(pkt(i, 1000), t, &mut rng);
        }
        for _ in 0..8 {
            red.dequeue(t, &mut rng);
        }
        let before = red.avg_queue();
        assert!(before > 0.0);
        // One second idle at 10 Mbps with avpkt 1000 = 1250 virtual packets.
        t += elephants_netsim::SimDuration::from_secs(1);
        red.enqueue(pkt(100, 1000), t, &mut rng);
        assert!(red.avg_queue() < before * 0.01, "avg should decay: {} -> {}", before, red.avg_queue());
    }

    #[test]
    fn ecn_marks_instead_of_drops() {
        let mut c = cfg();
        c.ecn = true;
        let mut red = Red::new(c);
        let mut rng = SmallRng::seed_from_u64(3);
        red.avg = 29_000.0; // near max_th: p_b high
        let mut marked = 0;
        for i in 0..500 {
            let mut p = pkt(i, 100);
            p.ecn_capable = true;
            // keep avg pinned high by resetting it (unit-test shortcut)
            red.avg = 29_000.0;
            if red.enqueue(p, SimTime::ZERO, &mut rng) == Verdict::Marked {
                marked += 1;
            }
        }
        assert!(marked > 0);
        assert_eq!(red.stats().dropped_enqueue, 0);
        assert_eq!(red.stats().marked, marked);
    }

    #[test]
    fn tc_defaults_cap_thresholds() {
        // Small buffer: proportional thresholds (limit/4 below the cap).
        let c = RedConfig::tc_defaults(400_000, 100_000_000, 9000);
        assert_eq!(c.max_th, 100_000);
        assert_eq!(c.min_th, 33_333);
        // Huge (16 BDP @ 25G) buffer: capped absolute thresholds — the
        // unscaled-operator-defaults regime the paper measures.
        let c = RedConfig::tc_defaults(3_100_000_000, 25_000_000_000, 9000);
        assert_eq!(c.max_th, 12 * 9000);
        assert_eq!(c.min_th, 12 * 9000 / 3);
        assert!(c.validate().is_ok());
        // w_q is derived from the tc burst formula and sits well above the
        // classic 0.002 for these small thresholds.
        assert!(c.w_q > 0.01 && c.w_q < 0.2, "w_q = {}", c.w_q);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut c = cfg();
        c.min_th = c.max_th;
        assert!(c.validate().is_err());
        let mut c2 = cfg();
        c2.max_p = 1.5;
        assert!(c2.validate().is_err());
        let mut c3 = cfg();
        c3.max_th = c3.limit_bytes + 1;
        assert!(c3.validate().is_err());
    }
}
