//! Uniform construction of the paper's three AQMs from scenario parameters.

use crate::codel::{Codel, CodelConfig};
use crate::fq_codel::{FqCodel, FqCodelConfig};
use crate::pie::{Pie, PieConfig};
use crate::red::{Red, RedConfig};
use elephants_netsim::{Aqm, DropTail};
use elephants_json::impl_json_unit_enum;

/// The queue disciplines evaluated by the paper (plus plain CoDel for
/// completeness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AqmKind {
    /// Droptail FIFO.
    Fifo,
    /// Random Early Detection.
    Red,
    /// Flow-queuing CoDel (`tc fq_codel`).
    FqCodel,
    /// Plain single-queue CoDel (not in the paper's grid; kept for ablations).
    Codel,
    /// PIE, RFC 8033 (extension: the paper's "future AQM" direction).
    Pie,
}

impl_json_unit_enum!(AqmKind { Fifo, Red, FqCodel, Codel, Pie });

impl AqmKind {
    /// The grid the paper sweeps (Table 1).
    pub const PAPER_SET: [AqmKind; 3] = [AqmKind::Fifo, AqmKind::FqCodel, AqmKind::Red];

    /// Lower-case name used in reports and file names.
    pub fn name(self) -> &'static str {
        match self {
            AqmKind::Fifo => "fifo",
            AqmKind::Red => "red",
            AqmKind::FqCodel => "fq_codel",
            AqmKind::Codel => "codel",
            AqmKind::Pie => "pie",
        }
    }
}

impl std::fmt::Display for AqmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AqmKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" | "pfifo" | "droptail" => Ok(AqmKind::Fifo),
            "red" => Ok(AqmKind::Red),
            "fq_codel" | "fqcodel" | "fq-codel" => Ok(AqmKind::FqCodel),
            "codel" => Ok(AqmKind::Codel),
            "pie" => Ok(AqmKind::Pie),
            other => Err(format!("unknown AQM '{other}'")),
        }
    }
}

/// Build the bottleneck queue discipline for a scenario.
///
/// * `buffer_bytes` — the experiment's queue length (a BDP multiple).
/// * `bandwidth_bps` — bottleneck rate (RED uses it for idle decay).
/// * `mtu` — the jumbo-frame size (8900 in the paper).
/// * `ecn` — enable ECN marking (off in the paper).
/// * `hash_salt` — per-run salt for FQ-CoDel's flow hash.
pub fn build_aqm(
    kind: AqmKind,
    buffer_bytes: u64,
    bandwidth_bps: u64,
    mtu: u32,
    ecn: bool,
    hash_salt: u64,
) -> Box<dyn Aqm> {
    match kind {
        AqmKind::Fifo => Box::new(DropTail::new(buffer_bytes.max(mtu as u64))),
        AqmKind::Red => {
            let mut cfg = RedConfig::tc_defaults(buffer_bytes.max(4 * mtu as u64), bandwidth_bps, mtu);
            cfg.ecn = ecn;
            Box::new(Red::new(cfg))
        }
        AqmKind::FqCodel => {
            let mut cfg = FqCodelConfig::tc_defaults(buffer_bytes, mtu);
            cfg.codel.ecn = ecn;
            cfg.hash_salt = hash_salt;
            Box::new(FqCodel::new(cfg))
        }
        AqmKind::Codel => {
            let mut cfg = CodelConfig { limit_bytes: buffer_bytes.max(4 * mtu as u64), mtu, ..CodelConfig::default() };
            cfg.ecn = ecn;
            Box::new(Codel::new(cfg))
        }
        AqmKind::Pie => {
            let mut cfg = PieConfig { limit_bytes: buffer_bytes.max(4 * mtu as u64), ..PieConfig::default() };
            cfg.ecn = ecn;
            Box::new(Pie::new(cfg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in [AqmKind::Fifo, AqmKind::Red, AqmKind::FqCodel, AqmKind::Codel, AqmKind::Pie] {
            let parsed: AqmKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<AqmKind>().is_err());
    }

    #[test]
    fn builds_every_kind() {
        for kind in [AqmKind::Fifo, AqmKind::Red, AqmKind::FqCodel, AqmKind::Codel, AqmKind::Pie] {
            let aqm = build_aqm(kind, 1_000_000, 100_000_000, 8900, false, 1);
            assert_eq!(aqm.name(), kind.name());
            assert_eq!(aqm.backlog_pkts(), 0);
        }
    }

    #[test]
    fn every_discipline_holds_its_invariants_under_drop_heavy_traffic() {
        use elephants_netsim::{FlowId, NodeId, Packet, SeedableRng, SimDuration, SimTime, SmallRng};
        for kind in [AqmKind::Fifo, AqmKind::Red, AqmKind::FqCodel, AqmKind::Codel, AqmKind::Pie] {
            // A buffer small enough that the workload overflows it, forcing
            // every drop path (tail, probabilistic, eviction) to fire.
            let mut aqm = build_aqm(kind, 40_000, 100_000_000, 1000, false, 7);
            let mut rng = SmallRng::seed_from_u64(42);
            let mut t = SimTime::ZERO;
            for round in 0..200u64 {
                t += SimDuration::from_micros(50);
                for f in 0..4u32 {
                    let p = Packet::data(FlowId(f), NodeId(0), NodeId(1), round, 900 + 50 * f, t);
                    aqm.enqueue(p, t, &mut rng);
                }
                if round % 3 == 0 {
                    aqm.dequeue(t, &mut rng);
                }
                let fails = aqm.check_invariants(t, false);
                assert!(fails.is_empty(), "{kind}: shallow check failed: {fails:?}");
            }
            // Drain, deep-checking along the way.
            loop {
                t += SimDuration::from_micros(200);
                let done = aqm.dequeue(t, &mut rng).pkt.is_none();
                let fails = aqm.check_invariants(t, true);
                assert!(fails.is_empty(), "{kind}: deep check failed: {fails:?}");
                if done {
                    break;
                }
            }
            assert_eq!(aqm.backlog_pkts(), 0, "{kind}: queue must drain");
            assert!(aqm.stats().dropped_enqueue + aqm.stats().dropped_dequeue > 0, "{kind}: workload must overflow");
        }
    }

    #[test]
    fn tiny_buffers_are_clamped_to_sane_minimums() {
        // A 0.5 BDP buffer at 100 Mbps is ~390 kB, but make sure degenerate
        // small values don't produce unusable queues.
        let aqm = build_aqm(AqmKind::Red, 1, 100_000_000, 8900, false, 0);
        assert_eq!(aqm.name(), "red");
        let aqm = build_aqm(AqmKind::Fifo, 1, 100_000_000, 8900, false, 0);
        assert_eq!(aqm.name(), "fifo");
    }
}
