//! CoDel — Controlled Delay AQM (Nichols & Jacobson, RFC 8289).
//!
//! CoDel watches each packet's *sojourn time* through the queue. If the
//! sojourn stays above `target` for longer than `interval`, it enters a
//! dropping state and drops packets on dequeue at increasing frequency
//! (`interval / sqrt(count)`) until the delay falls back under `target`.
//!
//! [`CodelState`] is the reusable control-law core; [`Codel`] wraps it into
//! a standalone discipline, and `FqCodel` embeds one state per flow queue.

use elephants_netsim::{
    queue_accounting_failure, Aqm, AqmStats, CheckFailure, DequeueResult, Packet, SimDuration,
    SimTime, Verdict,
};
use elephants_json::impl_json_struct;
use elephants_netsim::SmallRng;
use std::collections::VecDeque;

/// CoDel parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodelConfig {
    /// Acceptable standing queue delay (RFC default 5 ms).
    pub target: SimDuration,
    /// Sliding window over which to observe the minimum sojourn
    /// (RFC default 100 ms — a worst-case expected RTT).
    pub interval: SimDuration,
    /// Hard byte limit on the queue.
    pub limit_bytes: u64,
    /// Link MTU: dropping is suppressed when less than one MTU is queued.
    pub mtu: u32,
    /// Mark ECN-capable packets instead of dropping them.
    pub ecn: bool,
}

impl_json_struct!(CodelConfig { target, interval, limit_bytes, mtu, ecn });

impl Default for CodelConfig {
    fn default() -> Self {
        CodelConfig {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
            limit_bytes: 32 * 1024 * 1024,
            mtu: 8900,
            ecn: false,
        }
    }
}

/// The CoDel control-law state machine (one per queue).
#[derive(Debug, Clone, Copy, Default)]
pub struct CodelState {
    first_above_time: Option<SimTime>,
    drop_next: SimTime,
    /// Drops since entering the current dropping state.
    pub count: u32,
    lastcount: u32,
    /// Whether we are in the dropping state.
    pub dropping: bool,
}

/// What `CodelState::dequeue` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodelOutcome {
    /// Packets dropped during this dequeue.
    pub dropped: u32,
    /// Packets ECN-marked during this dequeue.
    pub marked: u32,
}

impl CodelState {
    #[inline]
    fn control_law(t: SimTime, interval: SimDuration, count: u32) -> SimTime {
        t + interval.mul_f64(1.0 / (count.max(1) as f64).sqrt())
    }

    /// Check a freshly popped packet's sojourn time; returns `true` if the
    /// delay has been above target for a full interval ("ok to drop").
    fn sojourn_above(
        &mut self,
        cfg: &CodelConfig,
        now: SimTime,
        pkt: &Packet,
        backlog_after: u64,
    ) -> bool {
        let sojourn = now.since(pkt.enqueued_at);
        if sojourn < cfg.target || backlog_after <= cfg.mtu as u64 {
            self.first_above_time = None;
            false
        } else {
            match self.first_above_time {
                None => {
                    self.first_above_time = Some(now + cfg.interval);
                    false
                }
                Some(fat) => now >= fat,
            }
        }
    }

    /// RFC 8289 dequeue: pop packets from `pop`, dropping (or marking)
    /// according to the control law. `backlog` must report bytes remaining
    /// *after* the most recent pop.
    pub fn dequeue(
        &mut self,
        cfg: &CodelConfig,
        now: SimTime,
        pop: &mut dyn FnMut() -> Option<Packet>,
        backlog: &dyn Fn() -> u64,
    ) -> (Option<Packet>, CodelOutcome) {
        let mut out = CodelOutcome { dropped: 0, marked: 0 };

        let mut pkt = match pop() {
            Some(p) => p,
            None => {
                self.first_above_time = None;
                return (None, out);
            }
        };
        let mut ok_to_drop = self.sojourn_above(cfg, now, &pkt, backlog());

        if self.dropping {
            if !ok_to_drop {
                self.dropping = false;
            } else {
                while self.dropping && now >= self.drop_next {
                    if cfg.ecn && pkt.ecn_capable {
                        pkt.ecn_ce = true;
                        out.marked += 1;
                        self.count += 1;
                        self.drop_next = Self::control_law(self.drop_next, cfg.interval, self.count);
                        // Marked packets are delivered, not dropped: stop here.
                        return (Some(pkt), out);
                    }
                    out.dropped += 1;
                    self.count += 1;
                    pkt = match pop() {
                        Some(p) => p,
                        None => {
                            self.dropping = false;
                            self.first_above_time = None;
                            return (None, out);
                        }
                    };
                    ok_to_drop = self.sojourn_above(cfg, now, &pkt, backlog());
                    if !ok_to_drop {
                        self.dropping = false;
                    } else {
                        self.drop_next = Self::control_law(self.drop_next, cfg.interval, self.count);
                    }
                }
            }
        } else if ok_to_drop {
            // Enter dropping state.
            if cfg.ecn && pkt.ecn_capable {
                pkt.ecn_ce = true;
                out.marked += 1;
            } else {
                out.dropped += 1;
                pkt = match pop() {
                    Some(p) => p,
                    None => {
                        self.first_above_time = None;
                        self.dropping = true;
                        self.count = 1;
                        self.lastcount = 1;
                        self.drop_next = Self::control_law(now, cfg.interval, 1);
                        return (None, out);
                    }
                };
                let _ = self.sojourn_above(cfg, now, &pkt, backlog());
            }
            self.dropping = true;
            // If we recently stopped dropping, resume the drop rate where we
            // left off instead of restarting from 1 (RFC 8289 §5.4).
            let delta = self.count.saturating_sub(self.lastcount);
            self.count = if delta > 1 && now.since(self.drop_next) < cfg.interval * 16 {
                delta
            } else {
                1
            };
            self.drop_next = Self::control_law(now, cfg.interval, self.count);
            self.lastcount = self.count;
        }
        (Some(pkt), out)
    }
}

/// Standalone CoDel queue discipline.
#[derive(Debug)]
pub struct Codel {
    cfg: CodelConfig,
    state: CodelState,
    queue: VecDeque<Packet>,
    backlog: u64,
    stats: AqmStats,
}

impl Codel {
    /// Build a CoDel queue.
    pub fn new(cfg: CodelConfig) -> Self {
        assert!(cfg.limit_bytes > 0);
        Codel { cfg, state: CodelState::default(), queue: VecDeque::new(), backlog: 0, stats: AqmStats::default() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CodelConfig {
        &self.cfg
    }

    /// The control-law state (for tests).
    pub fn state(&self) -> &CodelState {
        &self.state
    }
}

impl Aqm for Codel {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime, _rng: &mut SmallRng) -> Verdict {
        if self.backlog + pkt.size as u64 > self.cfg.limit_bytes {
            self.stats.dropped_enqueue += 1;
            return Verdict::Dropped;
        }
        pkt.enqueued_at = now;
        self.backlog += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued += 1;
        Verdict::Enqueued
    }

    fn dequeue(&mut self, now: SimTime, _rng: &mut SmallRng) -> DequeueResult {
        let state = &mut self.state;
        let cfg = &self.cfg;
        // `pop` mutates both the queue and the byte count while `backlog_fn`
        // reads the count, so both go through RefCells.
        let (pkt, outcome) = {
            let backlog_ref = std::cell::RefCell::new(&mut self.backlog);
            let queue_ref = std::cell::RefCell::new(&mut self.queue);
            let mut pop = || {
                let r = queue_ref.borrow_mut().pop_front();
                if let Some(ref p) = r {
                    **backlog_ref.borrow_mut() -= p.size as u64;
                }
                r
            };
            let backlog_fn = || **backlog_ref.borrow();
            state.dequeue(cfg, now, &mut pop, &backlog_fn)
        };
        self.stats.dropped_dequeue += outcome.dropped as u64;
        self.stats.marked += outcome.marked as u64;
        if pkt.is_some() {
            self.stats.dequeued += 1;
        }
        DequeueResult { pkt, dropped: outcome.dropped }
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn backlog_pkts(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> AqmStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "codel"
    }

    fn check_invariants(&self, now: SimTime, deep: bool) -> Vec<CheckFailure> {
        let mut fails = Vec::new();
        if let Some(f) = queue_accounting_failure(self.stats, self.queue.len() as u64) {
            fails.push(f);
        }
        if deep {
            let sum: u64 = self.queue.iter().map(|p| p.size as u64).sum();
            if sum != self.backlog {
                let backlog = self.backlog;
                fails.push(CheckFailure::new(
                    "queue_byte_accounting",
                    format!("backlog counter {backlog} != sum of resident sizes {sum}"),
                ));
            }
            // Sojourn ≥ 0 by construction (`SimTime::since` saturates), so
            // the checkable form is: no resident enqueue stamp in the future.
            if let Some(p) = self.queue.iter().find(|p| p.enqueued_at > now) {
                let at = p.enqueued_at;
                fails.push(CheckFailure::new(
                    "queue_sojourn",
                    format!("resident packet enqueued in the future ({at} > {now})"),
                ));
            }
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_netsim::{FlowId, NodeId};
    use elephants_netsim::SeedableRng;

    fn pkt(seq: u64, size: u32, t: SimTime) -> Packet {
        Packet::data(FlowId(0), NodeId(0), NodeId(1), seq, size, t)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn no_drops_when_sojourn_below_target() {
        let mut q = Codel::new(CodelConfig::default());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        for i in 0..100 {
            q.enqueue(pkt(i, 1000, t0), t0, &mut r);
        }
        // Dequeue 2 ms later: sojourn 2 ms < 5 ms target.
        let t1 = t0 + ms(2);
        for _ in 0..100 {
            let res = q.dequeue(t1, &mut r);
            assert_eq!(res.dropped, 0);
        }
        assert_eq!(q.stats().dropped_dequeue, 0);
    }

    #[test]
    fn sustained_delay_triggers_dropping_state() {
        let mut q = Codel::new(CodelConfig::default());
        let mut r = rng();
        // Fill with packets all enqueued at t=0.
        let t0 = SimTime::ZERO;
        for i in 0..5000 {
            q.enqueue(pkt(i, 1000, t0), t0, &mut r);
        }
        // Dequeue slowly starting 50 ms later: sojourn far above target.
        let mut t = t0 + ms(50);
        let mut dropped = 0;
        for _ in 0..2000 {
            t += ms(1);
            let res = q.dequeue(t, &mut r);
            dropped += res.dropped;
        }
        assert!(dropped > 0, "CoDel must start dropping under sustained delay");
        assert!(q.state().count > 0);
    }

    #[test]
    fn first_drop_only_after_full_interval() {
        let mut q = Codel::new(CodelConfig::default());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        for i in 0..1000 {
            q.enqueue(pkt(i, 1000, t0), t0, &mut r);
        }
        // First dequeue at t=10ms: sojourn 10 ms > target, starts the clock.
        let res = q.dequeue(t0 + ms(10), &mut r);
        assert_eq!(res.dropped, 0);
        // 50 ms later (short of 10+100 ms): still no drop.
        let res = q.dequeue(t0 + ms(60), &mut r);
        assert_eq!(res.dropped, 0);
        // Past the interval: drops begin.
        let res = q.dequeue(t0 + ms(111), &mut r);
        assert!(res.dropped >= 1);
    }

    #[test]
    fn drop_clock_resets_when_queue_drains() {
        let mut q = Codel::new(CodelConfig::default());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        for i in 0..10 {
            q.enqueue(pkt(i, 9000, t0), t0, &mut r);
        }
        let _ = q.dequeue(t0 + ms(10), &mut r); // starts first_above clock
        // Drain to below one MTU.
        let mut t = t0 + ms(11);
        while q.backlog_pkts() > 0 {
            t += ms(1);
            q.dequeue(t, &mut r);
        }
        assert_eq!(q.stats().dropped_dequeue, 0);
        // Refill; the old clock must not carry over.
        for i in 0..1000 {
            q.enqueue(pkt(i, 1000, t), t, &mut r);
        }
        let res = q.dequeue(t + ms(10), &mut r);
        assert_eq!(res.dropped, 0, "clock must restart after drain");
    }

    #[test]
    fn control_law_shrinks_interval_with_sqrt_count() {
        let t = SimTime::ZERO;
        let i = ms(100);
        let d1 = CodelState::control_law(t, i, 1) - t;
        let d4 = CodelState::control_law(t, i, 4) - t;
        let d16 = CodelState::control_law(t, i, 16) - t;
        assert_eq!(d1, ms(100));
        assert_eq!(d4, ms(50));
        assert_eq!(d16, ms(25));
    }

    #[test]
    fn hard_limit_tail_drops() {
        let cfg = CodelConfig { limit_bytes: 5_000, ..Default::default() };
        let mut q = Codel::new(cfg);
        let mut r = rng();
        let mut drops = 0;
        for i in 0..10 {
            if q.enqueue(pkt(i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r) == Verdict::Dropped {
                drops += 1;
            }
        }
        assert_eq!(drops, 5);
        assert_eq!(q.backlog_bytes(), 5_000);
    }

    #[test]
    fn ecn_marks_instead_of_dropping() {
        let cfg = CodelConfig { ecn: true, ..Default::default() };
        let mut q = Codel::new(cfg);
        let mut r = rng();
        let t0 = SimTime::ZERO;
        for i in 0..1000 {
            let mut p = pkt(i, 1000, t0);
            p.ecn_capable = true;
            q.enqueue(p, t0, &mut r);
        }
        let mut marked = 0;
        let mut t = t0 + ms(120);
        for _ in 0..500 {
            t += ms(2);
            let res = q.dequeue(t, &mut r);
            if let Some(p) = res.pkt {
                if p.ecn_ce {
                    marked += 1;
                }
            }
        }
        assert!(marked > 0, "expected CE marks");
        assert_eq!(q.stats().dropped_dequeue, 0);
    }
}
