//! PIE — Proportional Integral controller Enhanced (RFC 8033).
//!
//! Not part of the paper's grid (FIFO/RED/FQ_CODEL), but the paper closes
//! by calling for "future research on optimizing these algorithms to
//! operate in a wide range of BW scenarios"; PIE is the obvious modern
//! candidate next to CoDel, so the reproduction ships it as an extension
//! for ablations and follow-up experiments.
//!
//! This is the timestamp variant (RFC 8033 §5.3): queueing delay is
//! measured directly from packet sojourn times, and the drop probability
//! is updated by a proportional-integral controller every `t_update`:
//!
//! ```text
//! p += alpha * (qdelay - target) + beta * (qdelay - qdelay_old)
//! ```
//!
//! with the RFC's auto-scaling of `alpha`/`beta` when `p` is small, burst
//! allowance, and the p < 0.2 ⇒ "don't drop below-target" safeguards.

use elephants_netsim::{
    queue_accounting_failure, Aqm, AqmStats, CheckFailure, DequeueResult, Packet, SimDuration,
    SimTime, Verdict,
};
use elephants_json::impl_json_struct;
use elephants_netsim::{RngExt, SmallRng};
use std::collections::VecDeque;

/// PIE parameters (RFC 8033 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PieConfig {
    /// Target queueing delay (RFC default 15 ms).
    pub target: SimDuration,
    /// Controller update interval (RFC default 15 ms).
    pub t_update: SimDuration,
    /// Proportional gain per update (RFC default 0.125 Hz scale).
    pub alpha: f64,
    /// Derivative gain per update (RFC default 1.25).
    pub beta: f64,
    /// Initial burst allowance (RFC default 150 ms).
    pub max_burst: SimDuration,
    /// Hard queue limit in bytes.
    pub limit_bytes: u64,
    /// Mark ECN-capable packets instead of dropping, below this p.
    pub ecn: bool,
    /// Max drop probability at which ECN marking is still used (RFC: 10 %).
    pub mark_ecn_thresh: f64,
}

impl_json_struct!(PieConfig {
    target,
    t_update,
    alpha,
    beta,
    max_burst,
    limit_bytes,
    ecn,
    mark_ecn_thresh,
});

impl Default for PieConfig {
    fn default() -> Self {
        PieConfig {
            target: SimDuration::from_millis(15),
            t_update: SimDuration::from_millis(15),
            alpha: 0.125,
            beta: 1.25,
            max_burst: SimDuration::from_millis(150),
            limit_bytes: 32 * 1024 * 1024,
            ecn: false,
            mark_ecn_thresh: 0.1,
        }
    }
}

/// The PIE queue discipline (timestamp variant).
#[derive(Debug)]
pub struct Pie {
    cfg: PieConfig,
    queue: VecDeque<Packet>,
    backlog: u64,
    /// Current drop probability.
    p: f64,
    qdelay_old: SimDuration,
    /// Most recent sojourn observation.
    qdelay: SimDuration,
    burst_left: SimDuration,
    next_update: SimTime,
    stats: AqmStats,
}

impl Pie {
    /// Build a PIE queue.
    pub fn new(cfg: PieConfig) -> Self {
        assert!(cfg.limit_bytes > 0);
        assert!(!cfg.t_update.is_zero());
        Pie {
            burst_left: cfg.max_burst,
            cfg,
            queue: VecDeque::new(),
            backlog: 0,
            p: 0.0,
            qdelay_old: SimDuration::ZERO,
            qdelay: SimDuration::ZERO,
            next_update: SimTime::ZERO,
            stats: AqmStats::default(),
        }
    }

    /// Current drop probability (test hook).
    pub fn drop_probability(&self) -> f64 {
        self.p
    }

    /// Latest queue-delay estimate (test hook).
    pub fn qdelay(&self) -> SimDuration {
        self.qdelay
    }

    /// RFC 8033 §4.2 auto-tuning: scale the gains down while p is small so
    /// the controller stays stable near zero.
    fn scale(&self) -> f64 {
        if self.p < 0.000001 {
            1.0 / 2048.0
        } else if self.p < 0.00001 {
            1.0 / 512.0
        } else if self.p < 0.0001 {
            1.0 / 128.0
        } else if self.p < 0.001 {
            1.0 / 32.0
        } else if self.p < 0.01 {
            1.0 / 8.0
        } else if self.p < 0.1 {
            1.0 / 2.0
        } else {
            1.0
        }
    }

    fn maybe_update(&mut self, now: SimTime) {
        while now >= self.next_update {
            let qd = self.qdelay.as_secs_f64();
            let target = self.cfg.target.as_secs_f64();
            let s = self.scale();
            let mut p = self.p
                + self.cfg.alpha * s * (qd - target)
                + self.cfg.beta * s * (qd - self.qdelay_old.as_secs_f64());

            // RFC 8033: exponential decay when the queue is idle/empty.
            if self.backlog == 0 && self.qdelay.is_zero() {
                p *= 0.98;
            }
            self.p = p.clamp(0.0, 1.0);
            self.qdelay_old = self.qdelay;

            // Burn down the burst allowance.
            self.burst_left = self.burst_left.saturating_sub(self.cfg.t_update);
            self.next_update += self.cfg.t_update;
        }
    }

    fn should_drop(&mut self, rng: &mut SmallRng) -> bool {
        if self.burst_left > SimDuration::ZERO {
            return false;
        }
        // Safeguards (RFC 8033 §4.1): don't drop when the delay is clearly
        // below half target and p is modest, or when only one packet sits
        // in the queue.
        if (self.p < 0.2 && self.qdelay < self.cfg.target.mul_f64(0.5)) || self.queue.len() <= 1 {
            return false;
        }
        rng.random::<f64>() < self.p
    }
}

impl Aqm for Pie {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime, rng: &mut SmallRng) -> Verdict {
        self.maybe_update(now);
        if self.backlog + pkt.size as u64 > self.cfg.limit_bytes {
            self.stats.dropped_enqueue += 1;
            return Verdict::Dropped;
        }
        if self.should_drop(rng) {
            if self.cfg.ecn && pkt.ecn_capable && self.p < self.cfg.mark_ecn_thresh {
                pkt.ecn_ce = true;
                pkt.enqueued_at = now;
                self.backlog += pkt.size as u64;
                self.queue.push_back(pkt);
                self.stats.enqueued += 1;
                self.stats.marked += 1;
                return Verdict::Marked;
            }
            self.stats.dropped_enqueue += 1;
            return Verdict::Dropped;
        }
        pkt.enqueued_at = now;
        self.backlog += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued += 1;
        Verdict::Enqueued
    }

    fn dequeue(&mut self, now: SimTime, _rng: &mut SmallRng) -> DequeueResult {
        self.maybe_update(now);
        match self.queue.pop_front() {
            Some(pkt) => {
                self.backlog -= pkt.size as u64;
                self.qdelay = now.since(pkt.enqueued_at);
                self.stats.dequeued += 1;
                DequeueResult { pkt: Some(pkt), dropped: 0 }
            }
            None => {
                self.qdelay = SimDuration::ZERO;
                DequeueResult::EMPTY
            }
        }
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn backlog_pkts(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> AqmStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "pie"
    }

    fn control_state(&self) -> Option<f64> {
        Some(self.drop_probability())
    }

    fn check_invariants(&self, now: SimTime, deep: bool) -> Vec<CheckFailure> {
        let mut fails = Vec::new();
        if let Some(f) = queue_accounting_failure(self.stats, self.queue.len() as u64) {
            fails.push(f);
        }
        if !self.p.is_finite() || !(0.0..=1.0).contains(&self.p) {
            let p = self.p;
            fails.push(CheckFailure::new(
                "pie_drop_probability",
                format!("drop probability {p} outside [0, 1]"),
            ));
        }
        if deep {
            let sum: u64 = self.queue.iter().map(|p| p.size as u64).sum();
            if sum != self.backlog {
                let backlog = self.backlog;
                fails.push(CheckFailure::new(
                    "queue_byte_accounting",
                    format!("backlog counter {backlog} != sum of resident sizes {sum}"),
                ));
            }
            if let Some(p) = self.queue.iter().find(|p| p.enqueued_at > now) {
                let at = p.enqueued_at;
                fails.push(CheckFailure::new(
                    "queue_sojourn",
                    format!("resident packet enqueued in the future ({at} > {now})"),
                ));
            }
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_netsim::{FlowId, NodeId};
    use elephants_netsim::SeedableRng;

    fn pkt(seq: u64, size: u32, t: SimTime) -> Packet {
        Packet::data(FlowId(0), NodeId(0), NodeId(1), seq, size, t)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn no_drops_while_burst_allowance_lasts() {
        let mut q = Pie::new(PieConfig::default());
        let mut r = rng();
        // Heavy overload inside the first 150 ms.
        let mut t = SimTime::ZERO;
        for i in 0..500 {
            t += SimDuration::from_micros(200); // 100 ms total
            assert_ne!(q.enqueue(pkt(i, 1000, t), t, &mut r), Verdict::Dropped);
        }
        assert_eq!(q.stats().dropped_enqueue, 0);
    }

    #[test]
    fn sustained_overload_raises_p_and_drops() {
        let mut q = Pie::new(PieConfig::default());
        let mut r = rng();
        let mut t = SimTime::ZERO;
        let mut seq = 0;
        // 2 s of 2:1 overload: enqueue twice per dequeue.
        for _ in 0..2000 {
            t += ms(1);
            q.enqueue(pkt(seq, 1000, t), t, &mut r);
            seq += 1;
            q.enqueue(pkt(seq, 1000, t), t, &mut r);
            seq += 1;
            q.dequeue(t, &mut r);
        }
        assert!(q.drop_probability() > 0.01, "p = {}", q.drop_probability());
        assert!(q.stats().dropped_enqueue > 0);
    }

    #[test]
    fn p_decays_when_queue_drains() {
        let mut q = Pie::new(PieConfig::default());
        let mut r = rng();
        let mut t = SimTime::ZERO;
        let mut seq = 0;
        for _ in 0..2000 {
            t += ms(1);
            q.enqueue(pkt(seq, 1000, t), t, &mut r);
            seq += 1;
            q.enqueue(pkt(seq, 1000, t), t, &mut r);
            seq += 1;
            q.dequeue(t, &mut r);
        }
        let p_high = q.drop_probability();
        assert!(p_high > 0.0);
        // Drain completely and idle for 5 s.
        while q.dequeue(t, &mut r).pkt.is_some() {}
        t += SimDuration::from_secs(5);
        q.dequeue(t, &mut r); // trigger updates
        assert!(
            q.drop_probability() < p_high / 2.0,
            "p must decay: {} -> {}",
            p_high,
            q.drop_probability()
        );
    }

    #[test]
    fn below_half_target_never_drops_at_modest_p() {
        let mut q = Pie::new(PieConfig::default());
        let mut r = rng();
        q.p = 0.19;
        q.burst_left = SimDuration::ZERO;
        q.qdelay = ms(5); // below target/2 = 7.5 ms
        let mut t = SimTime::from_nanos(1);
        for i in 0..100 {
            t += SimDuration::from_micros(100);
            // keep p pinned: bypass updates by setting next_update far out
            q.next_update = SimTime::MAX;
            assert_ne!(q.enqueue(pkt(i, 1000, t), t, &mut r), Verdict::Dropped);
        }
    }

    #[test]
    fn hard_limit_always_enforced() {
        let cfg = PieConfig { limit_bytes: 5_000, ..Default::default() };
        let mut q = Pie::new(cfg);
        let mut r = rng();
        for i in 0..10 {
            q.enqueue(pkt(i, 1000, SimTime::ZERO), SimTime::ZERO, &mut r);
        }
        assert_eq!(q.backlog_bytes(), 5_000);
        assert_eq!(q.stats().dropped_enqueue, 5);
    }

    #[test]
    fn qdelay_tracks_sojourn() {
        let mut q = Pie::new(PieConfig::default());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        q.enqueue(pkt(0, 1000, t0), t0, &mut r);
        let t1 = t0 + ms(42);
        q.dequeue(t1, &mut r);
        assert_eq!(q.qdelay(), ms(42));
    }
}
