//! The TCP receiver endpoint: reorder buffer, SACK generation, delayed ACKs.

use elephants_netsim::{
    AckInfo, Ctx, EndpointReport, FlowEndpoint, NodeId, Packet, SimDuration, SimTime, TimerKind,
    SACK_MAX,
};
use std::any::Any;
use std::collections::BTreeMap;

/// Receiver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverConfig {
    /// ACK every n-th in-order segment (Linux delayed ACK ≈ 2).
    ///
    /// `0` is normalized to `1` (immediate ACK for every segment) at
    /// receiver construction — the literal reading ("never ACK on a count
    /// threshold") would leave every in-order window stalled on the
    /// delayed-ACK timer, which no TCP does.
    pub ack_every: u32,
    /// Delayed-ACK timeout.
    ///
    /// A zero timeout means ACKs are never delayed; it is normalized to
    /// immediate ACKing (`ack_every = 1`) rather than arming a timer for
    /// "now", which would ACK one event later and double the timer load.
    pub delack_timeout: SimDuration,
    /// Throughput time-series bucket width (0 disables the series).
    pub series_interval: SimDuration,
    /// GRO-style receive coalescing: batch up to this many back-to-back
    /// in-order segments into one cumulative ACK (`0` disables coalescing,
    /// the default). When enabled this *replaces* the delayed-ACK policy:
    /// the count threshold is `coalesce_segs` and the flush timer is
    /// [`ReceiverConfig::coalesce_timeout`]. Reordering, duplicates and
    /// ECN marks still force an immediate ACK, so loss recovery and ECN
    /// feedback latency are unchanged.
    pub coalesce_segs: u32,
    /// Deadline for flushing a partially filled coalescing batch (the
    /// GRO flush timer). Zero is normalized to immediate ACKing
    /// (`coalesce_segs = 1`). Only meaningful when `coalesce_segs > 0`.
    pub coalesce_timeout: SimDuration,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        ReceiverConfig {
            ack_every: 2,
            delack_timeout: SimDuration::from_millis(40),
            series_interval: SimDuration::ZERO,
            coalesce_segs: 0,
            coalesce_timeout: SimDuration::from_micros(500),
        }
    }
}

impl ReceiverConfig {
    /// The default coalescing preset: aggregate up to 16 back-to-back
    /// in-order segments (~142 KB of paper-MSS data, comfortably under a
    /// 25 Gbps link's 50 µs of wire time) into one ACK, with a 500 µs
    /// flush deadline so low-rate flows still see a prompt ACK clock.
    pub fn coalesced() -> Self {
        ReceiverConfig { coalesce_segs: 16, ..Default::default() }
    }

    /// Degenerate-value normalization (see the field docs): `ack_every == 0`
    /// and zero timeouts all collapse to immediate-ACK semantics instead of
    /// stalling on (or spamming) the flush timer. Applied by
    /// [`TcpReceiver::new`]; idempotent.
    pub fn normalized(mut self) -> Self {
        if self.ack_every == 0 || self.delack_timeout.is_zero() {
            self.ack_every = 1;
        }
        if self.coalesce_segs > 0 && self.coalesce_timeout.is_zero() {
            self.coalesce_segs = 1;
        }
        self
    }

    /// The in-order segment count that triggers an ACK, and the timer
    /// deadline for a partial batch — the delayed-ACK pair, or the
    /// coalescing pair when coalescing is enabled.
    fn ack_policy(&self) -> (u32, SimDuration) {
        if self.coalesce_segs > 0 {
            (self.coalesce_segs, self.coalesce_timeout)
        } else {
            (self.ack_every, self.delack_timeout)
        }
    }
}

/// The receiver endpoint for one flow.
pub struct TcpReceiver {
    cfg: ReceiverConfig,
    peer: NodeId,
    /// Next expected in-order sequence.
    rcv_nxt: u64,
    /// Out-of-order ranges `[start, end)`, disjoint and non-adjacent.
    ooo: BTreeMap<u64, u64>,
    /// Most recently changed SACK ranges (newest first).
    recent_sacks: Vec<(u64, u64)>,
    /// Unacked in-order arrivals since the last ACK.
    unacked_count: u32,
    delack_deadline: Option<SimTime>,
    ack_serial: u64,
    /// Pending ECN echo (a CE-marked packet arrived).
    ecn_pending: bool,
    // Stats.
    delivered_bytes: u64,
    delivered_segments: u64,
    delivered_bytes_at_mark: u64,
    ecn_marks: u64,
    /// Optional goodput time series: bytes delivered per interval bucket.
    series: Vec<u64>,
}

impl TcpReceiver {
    /// A receiver whose ACKs go to `peer`. Degenerate configuration values
    /// are normalized here (see [`ReceiverConfig::normalized`]).
    pub fn new(cfg: ReceiverConfig, peer: NodeId) -> Self {
        TcpReceiver {
            cfg: cfg.normalized(),
            peer,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            recent_sacks: Vec::with_capacity(4),
            unacked_count: 0,
            delack_deadline: None,
            ack_serial: 0,
            ecn_pending: false,
            delivered_bytes: 0,
            delivered_segments: 0,
            delivered_bytes_at_mark: 0,
            ecn_marks: 0,
            series: Vec::new(),
        }
    }

    /// Next expected sequence (test hook).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Current out-of-order ranges (test hook).
    pub fn ooo_ranges(&self) -> Vec<(u64, u64)> {
        self.ooo.iter().map(|(&s, &e)| (s, e)).collect()
    }

    /// Per-interval delivered-byte series (empty unless enabled).
    pub fn series(&self) -> &[u64] {
        &self.series
    }

    /// Total delivered payload bytes.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    fn note_delivered(&mut self, bytes: u64, now: SimTime) {
        self.delivered_bytes += bytes;
        self.delivered_segments += 1;
        if !self.cfg.series_interval.is_zero() {
            let bucket = (now.as_nanos() / self.cfg.series_interval.as_nanos()) as usize;
            if self.series.len() <= bucket {
                self.series.resize(bucket + 1, 0);
            }
            self.series[bucket] += bytes;
        }
    }

    /// Insert an out-of-order segment `[seq, seq+1)`, merging neighbours.
    fn insert_ooo(&mut self, seq: u64) -> (u64, u64) {
        let mut start = seq;
        let mut end = seq + 1;
        // Merge with a predecessor range that touches us.
        if let Some((&ps, &pe)) = self.ooo.range(..=seq).next_back() {
            if pe >= seq {
                if pe >= end {
                    // Duplicate: fully contained.
                    return (ps, pe);
                }
                start = ps;
                self.ooo.remove(&ps);
            }
        }
        // Merge with successor ranges we now touch.
        while let Some((&ns, &ne)) = self.ooo.range(start..).next() {
            if ns <= end {
                end = end.max(ne);
                self.ooo.remove(&ns);
            } else {
                break;
            }
        }
        self.ooo.insert(start, end);
        (start, end)
    }

    fn remember_sack(&mut self, range: (u64, u64)) {
        // Keep only entries disjoint from the new range (overlapping or
        // contained ones are superseded by it).
        self.recent_sacks.retain(|r| r.1 < range.0 || range.1 < r.0);
        self.recent_sacks.insert(0, range);
        self.recent_sacks.truncate(SACK_MAX);
    }

    fn build_ack(&mut self, ctx: &Ctx) -> Packet {
        let mut info = AckInfo::cumulative(self.rcv_nxt);
        let mut n = 0usize;
        for &(s, e) in &self.recent_sacks {
            if e <= self.rcv_nxt {
                continue; // already covered cumulatively
            }
            info.sacks[n] = (s.max(self.rcv_nxt), e);
            n += 1;
            if n == SACK_MAX {
                break;
            }
        }
        info.n_sacks = n as u8;
        info.ecn_echo = self.ecn_pending;
        self.ecn_pending = false;
        self.ack_serial += 1;
        Packet::ack(ctx.flow, ctx.local, self.peer, self.ack_serial, info, ctx.now)
    }

    fn send_ack(&mut self, ctx: &mut Ctx) {
        let ack = self.build_ack(ctx);
        ctx.send(ack);
        self.unacked_count = 0;
        // An immediate ACK covers the pending delayed one: disarm it so the
        // simulator never dispatches the superseded firing.
        if self.delack_deadline.take().is_some() {
            ctx.cancel_timer(TimerKind::DelAck);
        }
    }
}

impl FlowEndpoint for TcpReceiver {
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        if !pkt.is_data() {
            return;
        }
        if pkt.ecn_ce {
            self.ecn_pending = true;
            self.ecn_marks += 1;
        }
        let seq = pkt.seq;
        let mut out_of_order = false;
        if seq == self.rcv_nxt {
            self.rcv_nxt += 1;
            self.note_delivered(pkt.size as u64, ctx.now);
            // Pull in any now-contiguous out-of-order data.
            if let Some((&s, &e)) = self.ooo.iter().next() {
                if s == self.rcv_nxt {
                    self.ooo.remove(&s);
                    let n = e - s;
                    self.rcv_nxt = e;
                    for _ in 0..n {
                        self.note_delivered(pkt.size as u64, ctx.now);
                    }
                }
            }
            self.unacked_count += 1;
        } else if seq > self.rcv_nxt {
            let range = self.insert_ooo(seq);
            self.remember_sack(range);
            out_of_order = true;
        } else {
            // Duplicate of already-delivered data (spurious retransmission):
            // ACK immediately so the sender resynchronizes.
            out_of_order = true;
        }

        // Immediate ACK on reordering/dup/ECN; otherwise the delayed-ACK
        // policy, or — when receive coalescing is on — the GRO-style batch
        // policy (bigger count budget, much shorter flush deadline).
        let (threshold, flush_after) = self.cfg.ack_policy();
        if out_of_order || self.ecn_pending || self.unacked_count >= threshold {
            self.send_ack(ctx);
        } else if self.delack_deadline.is_none() {
            let at = ctx.now + flush_after;
            self.delack_deadline = Some(at);
            ctx.set_timer(TimerKind::DelAck, at);
        }
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
        // Superseded firings are cancelled at the source, so a DelAck
        // arriving here is always the live one.
        if kind == TimerKind::DelAck {
            self.delack_deadline = None;
            if self.unacked_count > 0 {
                self.send_ack(ctx);
            }
        }
    }

    fn on_mark(&mut self, _now: SimTime) {
        self.delivered_bytes_at_mark = self.delivered_bytes;
    }

    fn report(&self) -> EndpointReport {
        EndpointReport {
            delivered_bytes: self.delivered_bytes,
            delivered_bytes_window: self.delivered_bytes - self.delivered_bytes_at_mark,
            delivered_segments: self.delivered_segments,
            ecn_marks: self.ecn_marks,
            ..Default::default()
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_netsim::{DumbbellSpec, PacketKind, SimConfig, Simulator};
    use elephants_netsim::Bandwidth;

    // The Ctx type cannot be constructed outside the simulator, so receiver
    // behaviour is tested through one-flow micro-simulations.

    struct ScriptedSender {
        peer: NodeId,
        script: Vec<(u64, u64)>, // (delay_ms from start, seq), chronological
        next: usize,
        acks_seen: Vec<AckInfo>,
    }

    impl ScriptedSender {
        /// Arm one chained timer for the next scripted transmission (only
        /// one instance of a timer kind can be armed at a time).
        fn arm_next(&self, ctx: &mut Ctx) {
            if let Some(&(ms, _)) = self.script.get(self.next) {
                ctx.set_timer(TimerKind::Custom(0), SimTime::ZERO + SimDuration::from_millis(ms));
            }
        }
    }

    impl FlowEndpoint for ScriptedSender {
        fn on_start(&mut self, ctx: &mut Ctx) {
            self.arm_next(ctx);
        }
        fn on_packet(&mut self, pkt: &Packet, _ctx: &mut Ctx) {
            if let PacketKind::Ack(info) = pkt.kind {
                self.acks_seen.push(info);
            }
        }
        fn on_timer(&mut self, _kind: TimerKind, ctx: &mut Ctx) {
            let (_, seq) = self.script[self.next];
            self.next += 1;
            let pkt = Packet::data(ctx.flow, ctx.local, self.peer, seq, 1000, ctx.now);
            ctx.send(pkt);
            self.arm_next(ctx);
        }
        fn report(&self) -> EndpointReport {
            EndpointReport::default()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn run_script(script: Vec<(u64, u64)>, cfg: ReceiverConfig) -> (Vec<AckInfo>, EndpointReport) {
        let spec = DumbbellSpec::paper(Bandwidth::from_gbps(1));
        let topo = spec.build();
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                duration: SimDuration::from_secs(3),
                warmup: SimDuration::ZERO,
                max_events: 1_000_000,
            },
            7,
        );
        let s = spec.sender(0);
        let r = spec.receiver(0);
        let flow = sim.add_flow(
            s,
            r,
            Box::new(ScriptedSender { peer: r, script, next: 0, acks_seen: vec![] }),
            Box::new(TcpReceiver::new(cfg, s)),
            SimTime::ZERO,
        );
        let summary = sim.run();
        let sender = sim.sender(flow).as_any().downcast_ref::<ScriptedSender>().unwrap();
        (sender.acks_seen.clone(), summary.flows[flow.0 as usize].receiver)
    }

    #[test]
    fn in_order_delivery_acks_every_second_segment() {
        let script = (0..6).map(|i| (i * 10, i)).collect();
        let (acks, rep) = run_script(script, ReceiverConfig::default());
        assert_eq!(rep.delivered_segments, 6);
        assert_eq!(rep.delivered_bytes, 6000);
        // ack_every = 2: cumulative ACKs at 2, 4, 6.
        let cums: Vec<u64> = acks.iter().map(|a| a.cum).collect();
        assert_eq!(cums, vec![2, 4, 6]);
        assert!(acks.iter().all(|a| a.n_sacks == 0));
    }

    #[test]
    fn gap_triggers_immediate_sack() {
        // Sequence 0, 2 (gap at 1), then 1 heals it.
        let script = vec![(0, 0), (10, 2), (20, 1)];
        let (acks, rep) = run_script(script, ReceiverConfig::default());
        assert_eq!(rep.delivered_segments, 3);
        // The out-of-order arrival of 2 forces an immediate ACK with a SACK.
        let sacked = acks.iter().find(|a| a.n_sacks > 0).expect("expected SACK");
        assert_eq!(sacked.cum, 1);
        assert_eq!(sacked.sacks[0], (2, 3));
        // Final cumulative must reach 3.
        assert_eq!(acks.last().unwrap().cum, 3);
    }

    #[test]
    fn multiple_gaps_reported_as_multiple_sacks() {
        // Receive 0, 2, 4, 6: three OOO ranges after seq 0.
        let script = vec![(0, 0), (10, 2), (20, 4), (30, 6)];
        let (acks, _) = run_script(script, ReceiverConfig::default());
        let last = acks.last().unwrap();
        assert_eq!(last.cum, 1);
        assert_eq!(last.n_sacks, 3);
        let mut got: Vec<(u64, u64)> = last.sack_ranges().collect();
        got.sort();
        assert_eq!(got, vec![(2, 3), (4, 5), (6, 7)]);
    }

    #[test]
    fn adjacent_ooo_ranges_merge() {
        let script = vec![(0, 0), (10, 3), (20, 2)];
        let (acks, _) = run_script(script, ReceiverConfig::default());
        let last = acks.last().unwrap();
        assert_eq!(last.cum, 1);
        assert_eq!(last.n_sacks, 1);
        assert_eq!(last.sacks[0], (2, 4));
    }

    #[test]
    fn duplicate_data_is_acked_immediately() {
        let script = vec![(0, 0), (10, 1), (20, 0)]; // dup of 0
        let (acks, rep) = run_script(script, ReceiverConfig::default());
        assert_eq!(rep.delivered_segments, 2, "duplicate must not double-count");
        // Three ACKs: delayed/2nd-seg ack, then immediate dup-ack.
        assert!(acks.len() >= 2);
        assert_eq!(acks.last().unwrap().cum, 2);
    }

    #[test]
    fn delayed_ack_timer_fires_for_odd_tail() {
        let script = vec![(0, 0)]; // single segment, below ack_every
        let (acks, _) = run_script(script, ReceiverConfig::default());
        assert_eq!(acks.len(), 1, "delack timer must flush the pending ACK");
        assert_eq!(acks[0].cum, 1);
    }

    #[test]
    fn ack_every_one_acks_everything() {
        let cfg = ReceiverConfig { ack_every: 1, ..Default::default() };
        let script = (0..4).map(|i| (i * 10, i)).collect();
        let (acks, _) = run_script(script, cfg);
        assert_eq!(acks.len(), 4);
    }

    /// Regression (mirrors PR 6's `dupthresh == 0` fix on the sender side):
    /// `ack_every == 0` must mean "ACK every segment", not "never reach the
    /// count threshold and stall every window on the delayed-ACK timer".
    #[test]
    fn ack_every_zero_normalizes_to_immediate_ack() {
        let cfg = ReceiverConfig { ack_every: 0, ..Default::default() };
        let script = (0..4).map(|i| (i * 10, i)).collect();
        let (acks, _) = run_script(script, cfg);
        assert_eq!(acks.len(), 4, "ack_every = 0 must ACK every segment");
        assert_eq!(acks.last().unwrap().cum, 4);
    }

    /// A zero delayed-ACK timeout means "never delay an ACK" — normalized
    /// to immediate ACKing instead of arming a timer for the current
    /// instant on every odd segment.
    #[test]
    fn zero_delack_timeout_means_never_delayed() {
        let cfg = ReceiverConfig { delack_timeout: SimDuration::ZERO, ..Default::default() };
        let script = (0..4).map(|i| (i * 10, i)).collect();
        let (acks, _) = run_script(script, cfg);
        assert_eq!(acks.len(), 4, "zero delack timeout must ACK immediately");
    }

    #[test]
    fn zero_coalesce_timeout_normalizes_to_immediate_ack() {
        let cfg = ReceiverConfig {
            coalesce_segs: 16,
            coalesce_timeout: SimDuration::ZERO,
            ..Default::default()
        };
        let script = (0..4).map(|i| (i * 10, i)).collect();
        let (acks, _) = run_script(script, cfg);
        assert_eq!(acks.len(), 4, "zero flush deadline must ACK immediately");
    }

    #[test]
    fn coalescing_batches_in_order_segments_into_one_ack() {
        let cfg = ReceiverConfig {
            coalesce_segs: 4,
            coalesce_timeout: SimDuration::from_millis(200),
            ..Default::default()
        };
        let script = (0..8).map(|i| (i, i)).collect();
        let (acks, rep) = run_script(script, cfg);
        assert_eq!(rep.delivered_segments, 8, "coalescing must not lose data");
        let cums: Vec<u64> = acks.iter().map(|a| a.cum).collect();
        assert_eq!(cums, vec![4, 8], "4-segment batches → one ACK per batch");
    }

    #[test]
    fn coalescing_flush_timer_flushes_partial_batch() {
        let cfg = ReceiverConfig {
            coalesce_segs: 8,
            coalesce_timeout: SimDuration::from_millis(5),
            ..Default::default()
        };
        let script = vec![(0, 0), (1, 1), (2, 2)];
        let (acks, rep) = run_script(script, cfg);
        assert_eq!(rep.delivered_segments, 3);
        assert_eq!(acks.len(), 1, "partial batch must be flushed by the timer");
        assert_eq!(acks[0].cum, 3);
    }

    #[test]
    fn coalescing_still_acks_reordering_immediately() {
        let cfg = ReceiverConfig {
            coalesce_segs: 16,
            coalesce_timeout: SimDuration::from_millis(200),
            ..Default::default()
        };
        // Seq 2 arrives out of order: the SACK must go out at once, not
        // wait out the coalescing budget, or fast retransmit stalls.
        let script = vec![(0, 0), (10, 2), (20, 1)];
        let (acks, _) = run_script(script, cfg);
        let sacked = acks.iter().find(|a| a.n_sacks > 0).expect("expected immediate SACK");
        assert_eq!(sacked.cum, 1);
        assert_eq!(sacked.sacks[0], (2, 3));
        assert_eq!(acks.last().unwrap().cum, 3);
    }
}
