//! Delivery-rate sampling notes and standalone helpers.
//!
//! The sampling algorithm lives inline in [`crate::sender::TcpSender`]
//! (it needs the scoreboard's per-segment snapshots); this module holds the
//! pure arithmetic so it can be property-tested in isolation.
//!
//! The estimator follows Linux `tcp_rate.c`: every transmitted segment
//! records `(delivered, delivered_time, first_tx_time)` at send; when a
//! segment is delivered, the rate sample is
//!
//! ```text
//! interval = max(send_interval, ack_interval)
//!          = max(tx_time - first_tx_at_send, now - delivered_time_at_send)
//! rate     = (delivered_now - delivered_at_send) / interval
//! ```
//!
//! Using the *max* of the two intervals makes the estimator robust to both
//! sender-limited and ACK-compressed periods: it can underestimate but not
//! overestimate the true delivery rate.

use elephants_netsim::{SimDuration, SimTime};

/// Compute a delivery-rate sample in bits/s.
///
/// Returns `None` when the interval is degenerate (zero-width sample).
#[inline]
pub fn delivery_rate_bps(
    delivered_now: u64,
    delivered_at_send: u64,
    tx_time: SimTime,
    first_tx_at_send: SimTime,
    now: SimTime,
    delivered_time_at_send: SimTime,
) -> Option<u64> {
    let snd = tx_time.since(first_tx_at_send);
    let ack = now.since(delivered_time_at_send);
    let interval = snd.max(ack);
    if interval.is_zero() {
        return None;
    }
    let delta = delivered_now.saturating_sub(delivered_at_send);
    Some((delta as f64 * 8.0 / interval.as_secs_f64()) as u64)
}

/// The send-interval / ack-interval pair, exposed for tests.
#[inline]
pub fn sample_intervals(
    tx_time: SimTime,
    first_tx_at_send: SimTime,
    now: SimTime,
    delivered_time_at_send: SimTime,
) -> (SimDuration, SimDuration) {
    (tx_time.since(first_tx_at_send), now.since(delivered_time_at_send))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn steady_stream_measures_true_rate() {
        // 10 segments of 1000 B delivered over 10 ms = 8 Mbps.
        let rate = delivery_rate_bps(10_000, 0, t(10), t(0), t(20), t(10)).unwrap();
        assert_eq!(rate, 8_000_000);
    }

    #[test]
    fn ack_compression_does_not_inflate_rate() {
        // All ACKs arrive in a burst: ack interval tiny, send interval 100 ms.
        // The max() picks the send interval, keeping the sample honest.
        let rate = delivery_rate_bps(100_000, 0, t(100), t(0), t(101), t(100)).unwrap();
        assert_eq!(rate, 8_000_000); // 100 kB over 100 ms
    }

    #[test]
    fn sender_pause_does_not_inflate_rate() {
        // Sender idled: send interval tiny, ack interval long.
        let rate = delivery_rate_bps(10_000, 0, t(1), t(0), t(100), t(0)).unwrap();
        assert_eq!(rate, 800_000); // 10 kB over 100 ms
    }

    #[test]
    fn degenerate_interval_is_rejected() {
        assert!(delivery_rate_bps(1000, 0, t(5), t(5), t(5), t(5)).is_none());
    }

    #[test]
    fn intervals_reported_correctly() {
        let (snd, ack) = sample_intervals(t(10), t(2), t(30), t(25));
        assert_eq!(snd, SimDuration::from_millis(8));
        assert_eq!(ack, SimDuration::from_millis(5));
    }
}
