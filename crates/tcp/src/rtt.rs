//! RTT estimation and RTO computation (RFC 6298, Linux-flavoured).

use elephants_netsim::{SimDuration, SimTime};

/// Linux's minimum RTO (200 ms), far below RFC 6298's 1 s.
pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// Maximum RTO after backoff.
pub const MAX_RTO: SimDuration = SimDuration::from_secs(120);

/// SRTT/RTTVAR estimator with exponential RTO backoff.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: Option<SimDuration>,
    latest: Option<SimDuration>,
    /// Current backoff exponent (0 = no backoff).
    backoff: u32,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        RttEstimator { srtt: None, rttvar: SimDuration::ZERO, min_rtt: None, latest: None, backoff: 0 }
    }

    /// Incorporate an RTT sample (never from retransmitted segments — Karn).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.latest = Some(rtt);
        self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R'|
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar = (self.rttvar * 3 + err) / 4;
                // SRTT = 7/8 SRTT + 1/8 R'
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        // A valid sample ends any backoff episode.
        self.backoff = 0;
    }

    /// Smoothed RTT (None before the first sample).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Minimum RTT observed over the connection.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Most recent raw sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Current retransmission timeout, including backoff.
    ///
    /// Follows Linux semantics rather than the literal RFC 6298 formula:
    /// the variance term is floored at `MIN_RTO` (Linux clamps `rttvar` to
    /// `tcp_rto_min`), so `RTO ≈ SRTT + max(4·RTTVAR, 200 ms)`. The floor
    /// acting as a *margin above SRTT* (not an absolute minimum) is what
    /// keeps queue-delay growth from constantly firing spurious timeouts
    /// under bufferbloat.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            Some(srtt) => srtt + (self.rttvar * 4).max(MIN_RTO),
            None => SimDuration::from_secs(1), // RFC 6298 initial RTO
        };
        // Saturating: a pathological SRTT (e.g. tens of minutes under
        // extreme bufferbloat) times 2^16 overflows u64 nanoseconds; the
        // clamp below must see u64::MAX, not a wrapped small value.
        let backed = base.saturating_mul(1u64 << self.backoff.min(16));
        backed.max(MIN_RTO).min(MAX_RTO)
    }

    /// Double the RTO (called when the retransmission timer fires).
    pub fn backoff(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Deadline for data outstanding at `now`.
    pub fn rto_deadline(&self, now: SimTime) -> SimTime {
        now + self.rto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.on_sample(ms(100));
        assert_eq!(e.srtt(), Some(ms(100)));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), ms(300));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.on_sample(ms(62));
        }
        assert_eq!(e.srtt(), Some(ms(62)));
        // Variance decays toward zero; the floor acts as a margin above
        // SRTT (Linux semantics), not an absolute clamp.
        assert_eq!(e.rto(), ms(62) + MIN_RTO);
    }

    #[test]
    fn variance_reacts_to_jitter() {
        let mut e = RttEstimator::new();
        e.on_sample(ms(50));
        e.on_sample(ms(150));
        assert!(e.rto() > ms(200));
        assert!(e.min_rtt() == Some(ms(50)));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new();
        e.on_sample(ms(100)); // rto = 100 + max(4*50, 200) = 300 ms
        e.backoff();
        assert_eq!(e.rto(), ms(600));
        e.backoff();
        assert_eq!(e.rto(), ms(1200));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), MAX_RTO);
        // A new sample resets the backoff.
        e.on_sample(ms(100));
        assert!(e.rto() < ms(400));
    }

    #[test]
    fn rto_saturates_for_pathological_srtt() {
        let mut e = RttEstimator::new();
        // An absurd but representable sample: ~5.1 hours. With the full
        // 2^16 backoff the nanosecond product exceeds u64::MAX; the old
        // wrapping multiply produced a tiny RTO instead of MAX_RTO.
        e.on_sample(SimDuration::from_secs(300_000));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), MAX_RTO);
    }

    #[test]
    fn min_rtt_is_monotone_nonincreasing() {
        let mut e = RttEstimator::new();
        e.on_sample(ms(80));
        e.on_sample(ms(62));
        e.on_sample(ms(100));
        assert_eq!(e.min_rtt(), Some(ms(62)));
    }
}
