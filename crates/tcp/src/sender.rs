//! The TCP sender endpoint: window management, SACK-driven recovery, RTO,
//! pacing, and delivery-rate sampling for model-based CCAs.
//!
//! The sender models an *elephant flow*: an unbounded source (iperf3-style)
//! that always has data to send. Sequence numbers count MSS-sized segments.

use crate::rtt::RttEstimator;
use crate::scoreboard::{PktMeta, PktState, Scoreboard};
use elephants_cca::{AckEvent, CongestionControl, LossEvent};
use elephants_netsim::{
    CheckFailure, Ctx, EndpointReport, FlowEndpoint, FlowProbe, NodeId, Packet, PacketKind,
    SimDuration, SimTime, TimerKind,
};
use std::any::Any;

/// Duplicate-ACK / SACK reordering threshold, in segments.
pub const DUPTHRESH: u64 = 3;

/// Sender configuration.
#[derive(Debug, Clone, Copy)]
pub struct SenderConfig {
    /// Maximum segment size in bytes (on-wire size of data packets).
    pub mss: u32,
    /// Negotiate ECN (ECT(0) on data packets).
    pub ecn: bool,
    /// Optional cap on total segments to send (None = unbounded elephant).
    pub total_segments: Option<u64>,
    /// Burst cap per send opportunity when unpaced (segments).
    pub max_burst: u32,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig { mss: 8900, ecn: false, total_segments: None, max_burst: 64 }
    }
}

/// The sender endpoint for one flow.
pub struct TcpSender {
    cfg: SenderConfig,
    peer: NodeId,
    cca: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    board: Scoreboard,
    // --- delivery-rate sampling (Linux tcp_rate.c) ---
    delivered: u64,
    delivered_time: SimTime,
    first_tx_time: SimTime,
    // --- round tracking (for BBR) ---
    next_round_delivered: u64,
    round_count: u64,
    // --- recovery state ---
    recovery_high: Option<u64>,
    /// True between an RTO firing and either spurious-undo or episode end.
    rto_episode: bool,
    /// Spurious RTOs detected and undone (F-RTO/Eifel).
    spurious_rtos: u64,
    // --- RTO management ---
    rto_deadline: Option<SimTime>,
    rto_timer_scheduled_at: Option<SimTime>,
    // --- pacing ---
    next_release: SimTime,
    pace_timer_at: Option<SimTime>,
    // --- stats ---
    segments_sent: u64,
    retransmits: u64,
    retransmits_at_mark: u64,
    rto_count: u64,
    ecn_echoes: u64,
    started: bool,
}

impl TcpSender {
    /// A sender towards `peer` driven by the given congestion controller.
    pub fn new(cfg: SenderConfig, peer: NodeId, cca: Box<dyn CongestionControl>) -> Self {
        TcpSender {
            cfg,
            peer,
            cca,
            rtt: RttEstimator::new(),
            board: Scoreboard::new(),
            delivered: 0,
            delivered_time: SimTime::ZERO,
            first_tx_time: SimTime::ZERO,
            next_round_delivered: 0,
            round_count: 0,
            recovery_high: None,
            rto_episode: false,
            spurious_rtos: 0,
            rto_deadline: None,
            rto_timer_scheduled_at: None,
            next_release: SimTime::ZERO,
            pace_timer_at: None,
            segments_sent: 0,
            retransmits: 0,
            retransmits_at_mark: 0,
            rto_count: 0,
            ecn_echoes: 0,
            started: false,
        }
    }

    /// The congestion controller (for inspection).
    pub fn cca(&self) -> &dyn CongestionControl {
        self.cca.as_ref()
    }

    /// Bytes currently in flight.
    pub fn inflight_bytes(&self) -> u64 {
        self.board.inflight_segments() * self.cfg.mss as u64
    }

    /// Whether the sender is in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_high.is_some()
    }

    /// Total retransmitted segments so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Current round count (test hook).
    pub fn rounds(&self) -> u64 {
        self.round_count
    }

    /// Spurious RTOs detected and undone (test hook).
    pub fn spurious_rtos(&self) -> u64 {
        self.spurious_rtos
    }

    fn fresh_meta(&self, now: SimTime) -> PktMeta {
        PktMeta {
            state: PktState::Outstanding,
            tx_time: now,
            retx: false,
            delivered_at_send: self.delivered,
            delivered_time_at_send: self.delivered_time,
            first_tx_at_send: self.first_tx_time,
            app_limited_at_send: false,
        }
    }

    fn source_exhausted(&self) -> bool {
        match self.cfg.total_segments {
            Some(total) => self.board.snd_nxt() >= total,
            None => false,
        }
    }

    fn transmit_new(&mut self, ctx: &mut Ctx) -> bool {
        if self.source_exhausted() {
            return false;
        }
        let seq = self.board.snd_nxt();
        if self.board.is_empty() {
            // Pipe was empty: restart the rate-sample send window.
            self.first_tx_time = ctx.now;
            if self.delivered_time == SimTime::ZERO && self.delivered == 0 {
                self.delivered_time = ctx.now;
            }
        }
        let meta = self.fresh_meta(ctx.now);
        self.board.push_sent(seq, meta);
        let mut pkt = Packet::data(ctx.flow, ctx.local, self.peer, seq, self.cfg.mss, ctx.now);
        pkt.ecn_capable = self.cfg.ecn;
        ctx.send(pkt);
        self.segments_sent += 1;
        true
    }

    fn transmit_retx(&mut self, seq: u64, ctx: &mut Ctx) {
        let meta = self.fresh_meta(ctx.now);
        self.board.mark_retransmitted(seq, meta);
        let mut pkt = Packet::data(ctx.flow, ctx.local, self.peer, seq, self.cfg.mss, ctx.now);
        pkt.ecn_capable = self.cfg.ecn;
        pkt.retx = true;
        ctx.send(pkt);
        self.segments_sent += 1;
        self.retransmits += 1;
    }

    /// Send as much as the window (and pacing) allows.
    fn try_send(&mut self, ctx: &mut Ctx) {
        let mss = self.cfg.mss as u64;
        let pacing = self.cca.pacing_rate();
        let mut burst_left = self.cfg.max_burst;

        loop {
            let cwnd = self.cca.cwnd().max(mss);
            let inflight = self.board.inflight_segments() * mss;
            let has_retx = self.board.lost_pending() > 0;
            let want_new = inflight + mss <= cwnd && !self.source_exhausted();
            // Retransmissions get priority and a little window grace.
            let want_retx = has_retx && inflight < cwnd + mss;
            if !want_new && !want_retx {
                break;
            }
            if let Some(rate_bps) = pacing {
                if rate_bps == 0 {
                    break;
                }
                if ctx.now < self.next_release {
                    self.arm_pace_timer(ctx);
                    break;
                }
            } else if burst_left == 0 {
                // Unpaced sender: bound the burst per opportunity; the rest
                // goes out on subsequent ACK clocks (approximates the NIC
                // queue draining without modelling TSO).
                break;
            }

            if want_retx {
                let seq = self.board.next_lost().expect("lost_pending > 0");
                self.transmit_retx(seq, ctx);
            } else if !self.transmit_new(ctx) {
                break;
            }
            burst_left = burst_left.saturating_sub(1);
            if let Some(rate_bps) = pacing {
                let gap = SimDuration::from_nanos(
                    (self.cfg.mss as u128 * 8 * 1_000_000_000 / rate_bps as u128) as u64,
                );
                let base = if self.next_release > ctx.now { self.next_release } else { ctx.now };
                self.next_release = base + gap;
            }
        }
        self.ensure_rto_armed(ctx);
    }

    fn arm_pace_timer(&mut self, ctx: &mut Ctx) {
        if self.pace_timer_at != Some(self.next_release) {
            self.pace_timer_at = Some(self.next_release);
            ctx.set_timer(TimerKind::Pace, self.next_release);
        }
    }

    fn ensure_rto_armed(&mut self, ctx: &mut Ctx) {
        if self.board.is_empty() {
            self.rto_deadline = None;
            return;
        }
        // Anchor the deadline to the oldest in-flight transmission, not to
        // "now": otherwise a permanently stalled hole (retransmission lost
        // again) never times out as long as other ACKs keep arriving.
        let anchor = self.board.first_inflight_tx_time().unwrap_or(ctx.now);
        let deadline = self.rtt.rto_deadline(anchor).max(ctx.now);
        self.rto_deadline = Some(deadline);
        // Lazy re-arm: leave an already-pending earlier firing in place (it
        // re-checks the live deadline when it fires) instead of re-arming on
        // every ACK, which would churn the event queue.
        match self.rto_timer_scheduled_at {
            Some(at) if at <= deadline && at > ctx.now => {}
            _ => {
                self.rto_timer_scheduled_at = Some(deadline);
                ctx.set_timer(TimerKind::Rto, deadline);
            }
        }
    }

    fn handle_rto_fired(&mut self, ctx: &mut Ctx) {
        self.rto_timer_scheduled_at = None;
        let Some(deadline) = self.rto_deadline else { return };
        if ctx.now < deadline {
            // Data was acked since; re-arm at the true deadline.
            self.rto_timer_scheduled_at = Some(deadline);
            ctx.set_timer(TimerKind::Rto, deadline);
            return;
        }
        if self.board.is_empty() {
            self.rto_deadline = None;
            return;
        }
        // Genuine timeout (possibly spurious; detected on later ACKs).
        self.rto_count += 1;
        self.rto_episode = true;
        self.rtt.backoff();
        self.cca.on_rto(ctx.now);
        self.board.mark_all_lost();
        // RTO ends any fast-recovery episode; the retransmission sweep
        // restarts from snd_una.
        self.recovery_high = Some(self.board.snd_nxt());
        self.next_release = ctx.now;
        self.try_send(ctx);
    }

    fn process_ack(&mut self, info: &elephants_netsim::AckInfo, ecn_echo: bool, ctx: &mut Ctx) {
        let mss = self.cfg.mss as u64;
        let now = ctx.now;

        // Gather newly delivered segments (cumulative + SACK), tracking the
        // most recently transmitted one for the rate sample and RTT.
        let mut newly_acked_bytes: u64 = 0;
        let mut sample: Option<PktMeta> = None;
        let mut sample_seq = 0u64;
        let mut rtt_sample: Option<SimDuration> = None;

        let mut spurious_evidence = false;
        if info.cum > self.board.snd_una() {
            // One scoreboard pass folds the whole cumulative advance — a
            // GRO-coalesced ACK can cover dozens of segments — into a
            // fixed-size batch. Sacked segments were already counted as
            // delivered; a Lost-but-never-retransmitted segment covered
            // cumulatively is F-RTO/Eifel evidence the timeout in progress
            // was spurious (its original transmission arrived).
            let batch = self.board.advance_una_batch(info.cum);
            newly_acked_bytes += batch.newly_acked * mss;
            if self.rto_episode && batch.lost_never_retx {
                spurious_evidence = true;
            }
            if let Some((seq, meta)) = batch.sample {
                if sample.is_none_or(|s| meta.delivered_at_send >= s.delivered_at_send) {
                    sample = Some(meta);
                    sample_seq = seq;
                }
            }
            if let Some(tx) = batch.latest_clean_tx {
                let r = now.since(tx);
                rtt_sample = Some(rtt_sample.map_or(r, |x: SimDuration| x.min(r)));
            }
        }
        for (s, e) in info.sack_ranges() {
            self.board.apply_sack(s, e, |seq, meta| {
                newly_acked_bytes += mss;
                if sample.is_none_or(|s| meta.delivered_at_send >= s.delivered_at_send) {
                    sample = Some(*meta);
                    sample_seq = seq;
                }
                if !meta.retx {
                    let r = now.since(meta.tx_time);
                    rtt_sample = Some(rtt_sample.map_or(r, |x: SimDuration| x.min(r)));
                }
            });
        }

        if newly_acked_bytes > 0 {
            self.delivered += newly_acked_bytes;
            self.delivered_time = now;
        }
        if spurious_evidence {
            // Undo the collapse: restore the window and put the falsely
            // "lost" segments back in flight.
            self.spurious_rtos += 1;
            self.rto_episode = false;
            self.recovery_high = None;
            self.board.revert_lost_to_outstanding();
            self.cca.on_spurious_rto(now);
        }
        if let Some(r) = rtt_sample {
            self.rtt.on_sample(r);
        }

        // Round accounting (Linux: round advances when a packet sent after
        // the previous round's delivered milestone is acked).
        let mut round_start = false;
        if let Some(s) = sample {
            if s.delivered_at_send >= self.next_round_delivered {
                self.next_round_delivered = self.delivered;
                self.round_count += 1;
                round_start = true;
            }
        }

        // Delivery-rate sample (Linux tcp_rate_gen).
        let delivery_rate = sample.and_then(|s| {
            let snd_us = s.tx_time.since(s.first_tx_at_send);
            let ack_us = now.since(s.delivered_time_at_send);
            let interval = snd_us.max(ack_us);
            if interval.is_zero() {
                return None;
            }
            let delivered_delta = self.delivered - s.delivered_at_send;
            Some((delivered_delta as f64 * 8.0 / interval.as_secs_f64()) as u64)
        });
        if let Some(s) = sample {
            // Slide the send-rate window start to this sample's tx time.
            if s.tx_time > self.first_tx_time {
                self.first_tx_time = s.tx_time;
            }
            let _ = sample_seq;
        }

        // Loss detection (FACK-style with DUPTHRESH).
        let mut newly_lost = 0u64;
        self.board.detect_losses(DUPTHRESH, |_seq| newly_lost += mss);

        // Recovery entry / exit.
        if newly_lost > 0 && self.recovery_high.is_none() {
            self.recovery_high = Some(self.board.snd_nxt());
            let ev = LossEvent {
                now,
                inflight: self.board.inflight_segments() * mss,
                delivered: self.delivered,
                min_rtt: self.rtt.min_rtt().unwrap_or(SimDuration::from_millis(1)),
                max_rtt_epoch: self.rtt.latest().unwrap_or(SimDuration::from_millis(1)),
            };
            self.cca.on_loss_event(&ev);
        }
        let mut exited_recovery = false;
        if let Some(high) = self.recovery_high {
            if self.board.snd_una() >= high {
                self.recovery_high = None;
                self.rto_episode = false;
                exited_recovery = true;
            }
        }

        // Hand the ACK to the congestion controller.
        if ecn_echo {
            self.ecn_echoes += 1;
        }
        let srtt = self.rtt.srtt().unwrap_or(SimDuration::from_millis(1));
        let ev = AckEvent {
            now,
            rtt: self.rtt.latest().unwrap_or(srtt),
            min_rtt: self.rtt.min_rtt().unwrap_or(srtt),
            srtt,
            newly_acked: newly_acked_bytes,
            newly_lost,
            inflight: self.board.inflight_segments() * mss,
            delivery_rate,
            app_limited: sample.map(|s| s.app_limited_at_send).unwrap_or(false),
            delivered: self.delivered,
            round_start,
            ecn_ce: ecn_echo,
            is_app_limited_now: self.source_exhausted(),
        };
        self.cca.on_ack(&ev, self.in_recovery());
        if exited_recovery {
            self.cca.on_recovery_exit(now);
        }

        self.try_send(ctx);
    }
}

impl FlowEndpoint for TcpSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.started = true;
        self.next_release = ctx.now;
        self.try_send(ctx);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        if let PacketKind::Ack(info) = pkt.kind {
            self.process_ack(&info, info.ecn_echo, ctx);
        }
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
        match kind {
            TimerKind::Pace => {
                // Re-arming cancels superseded instances, so any firing
                // that reaches us is the live one.
                self.pace_timer_at = None;
                self.try_send(ctx);
            }
            TimerKind::Rto => self.handle_rto_fired(ctx),
            _ => {}
        }
    }

    fn on_mark(&mut self, _now: SimTime) {
        self.retransmits_at_mark = self.retransmits;
    }

    fn telemetry_probe(&self, _now: SimTime) -> Option<FlowProbe> {
        let snap = self.cca.state_snapshot();
        Some(FlowProbe {
            cwnd: snap.cwnd,
            pacing_rate: snap.pacing_rate,
            srtt: self.rtt.srtt(),
            inflight: self.inflight_bytes(),
            phase: snap.phase,
        })
    }

    fn check_invariants(&self) -> Vec<CheckFailure> {
        let mut fails = Vec::new();
        if !self.board.check_conservation() {
            let (o, s, l, r) = self.board.state_counts();
            let n = self.board.len();
            fails.push(CheckFailure::new(
                "scoreboard_conservation",
                format!("outstanding {o} + sacked {s} + lost {l} + lost_retx {r} != tracked {n}"),
            ));
        }
        let (una, nxt) = (self.board.snd_una(), self.board.snd_nxt());
        if una > nxt {
            fails.push(CheckFailure::new(
                "scoreboard_window",
                format!("snd_una {una} above snd_nxt {nxt}"),
            ));
        }
        let inflight = self.board.inflight_segments();
        if inflight > self.board.len() as u64 {
            let n = self.board.len();
            fails.push(CheckFailure::new(
                "scoreboard_inflight",
                format!("inflight {inflight} segments exceeds tracked {n}"),
            ));
        }
        fails.extend(self.cca.check_invariants(self.cfg.mss));
        fails
    }

    fn report(&self) -> EndpointReport {
        EndpointReport {
            data_segments_sent: self.segments_sent,
            retransmits: self.retransmits,
            retransmits_window: self.retransmits - self.retransmits_at_mark,
            rto_count: self.rto_count,
            min_rtt: self.rtt.min_rtt(),
            srtt: self.rtt.srtt(),
            final_cwnd: self.cca.cwnd(),
            ecn_marks: self.ecn_echoes,
            ..Default::default()
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
