//! # elephants-tcp
//!
//! The TCP data plane connecting congestion controllers (`elephants-cca`)
//! to the network simulator (`elephants-netsim`):
//!
//! * [`TcpSender`] — window management, FACK/SACK loss detection, fast
//!   retransmit + recovery, RFC 6298 RTO with backoff, optional pacing
//!   (driven by the CCA's `pacing_rate()`), and Linux-`tcp_rate.c`-style
//!   delivery-rate sampling for BBR.
//! * [`TcpReceiver`] — reorder buffer, cumulative + 3-block SACK generation,
//!   delayed ACKs, ECN echo.
//!
//! Segments are sequenced in MSS units (the study's jumbo-frame MSS is
//! 8900 bytes), which keeps both ends allocation-free per packet.

pub mod rate;
pub mod receiver;
pub mod rtt;
pub mod scoreboard;
pub mod sender;

pub use receiver::{ReceiverConfig, TcpReceiver};
pub use rtt::{RttEstimator, MAX_RTO, MIN_RTO};
pub use scoreboard::{PktMeta, PktState, Scoreboard};
pub use sender::{SenderConfig, TcpSender, DUPTHRESH};

use elephants_cca::{build_cca, CcaKind};
use elephants_netsim::NodeId;

/// Build a matched sender/receiver endpoint pair for one flow.
pub fn flow_pair(
    kind: CcaKind,
    sender_cfg: SenderConfig,
    receiver_cfg: ReceiverConfig,
    sender_node: NodeId,
    receiver_node: NodeId,
) -> (TcpSender, TcpReceiver) {
    let cca = build_cca(kind, sender_cfg.mss);
    let tx = TcpSender::new(sender_cfg, receiver_node, cca);
    let rx = TcpReceiver::new(receiver_cfg, sender_node);
    (tx, rx)
}

#[cfg(test)]
mod e2e_tests {
    use super::*;
    use elephants_cca::CcaKind;
    use elephants_netsim::prelude::*;
    use elephants_netsim::RunSummary;

    /// Run one TCP flow through the paper dumbbell for `secs` seconds.
    fn run_single(kind: CcaKind, bw_mbps: u64, buffer_bdp: f64, secs: u64) -> RunSummary {
        let bw = Bandwidth::from_mbps(bw_mbps);
        let spec = DumbbellSpec::paper(bw);
        let mut topo = spec.build();
        let rtt = topo.base_rtt();
        let buffer = (elephants_netsim::bdp_bytes(bw, rtt) as f64 * buffer_bdp) as u64;
        topo.set_bottleneck_aqm(Box::new(DropTail::new(buffer.max(4 * 8900))));
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                duration: SimDuration::from_secs(secs),
                warmup: SimDuration::from_secs(secs / 2),
                max_events: u64::MAX,
            },
            1,
        );
        let (tx, rx) = flow_pair(
            kind,
            SenderConfig::default(),
            ReceiverConfig::default(),
            spec.sender(0),
            spec.receiver(0),
        );
        sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
        sim.run()
    }

    fn goodput_mbps(s: &RunSummary) -> f64 {
        s.flows[0].window_goodput_bps(s.window) / 1e6
    }

    #[test]
    fn cubic_fills_a_100mbps_pipe() {
        let s = run_single(CcaKind::Cubic, 100, 2.0, 12);
        let g = goodput_mbps(&s);
        assert!(g > 90.0, "CUBIC goodput {g:.1} Mbps, want > 90");
    }

    #[test]
    fn reno_fills_a_100mbps_pipe_with_bdp_buffer() {
        let s = run_single(CcaKind::Reno, 100, 1.0, 12);
        let g = goodput_mbps(&s);
        assert!(g > 85.0, "Reno goodput {g:.1} Mbps, want > 85");
    }

    #[test]
    fn htcp_fills_a_100mbps_pipe() {
        let s = run_single(CcaKind::Htcp, 100, 2.0, 12);
        let g = goodput_mbps(&s);
        assert!(g > 88.0, "HTCP goodput {g:.1} Mbps, want > 88");
    }

    #[test]
    fn bbr1_fills_a_100mbps_pipe() {
        let s = run_single(CcaKind::BbrV1, 100, 2.0, 12);
        let g = goodput_mbps(&s);
        assert!(g > 88.0, "BBRv1 goodput {g:.1} Mbps, want > 88");
    }

    #[test]
    fn bbr2_fills_a_100mbps_pipe() {
        let s = run_single(CcaKind::BbrV2, 100, 2.0, 12);
        let g = goodput_mbps(&s);
        assert!(g > 88.0, "BBRv2 goodput {g:.1} Mbps, want > 88");
    }

    #[test]
    fn cubic_scales_to_1gbps() {
        let s = run_single(CcaKind::Cubic, 1000, 2.0, 12);
        let g = goodput_mbps(&s);
        assert!(g > 850.0, "CUBIC goodput {g:.1} Mbps at 1G, want > 850");
    }

    #[test]
    fn tiny_buffer_hurts_loss_based_ccas() {
        // 0.1 BDP buffer: Reno cannot keep the pipe full at 62 ms RTT.
        let s = run_single(CcaKind::Reno, 100, 0.1, 12);
        let g = goodput_mbps(&s);
        assert!(g < 85.0, "Reno with 0.1 BDP buffer got {g:.1} Mbps; expected underutilization");
    }

    #[test]
    fn losses_are_repaired_exactly_once_per_drop() {
        // With a small buffer there must be drops, and every drop must be
        // matched by at least one retransmission, with goodput still sane.
        let s = run_single(CcaKind::Cubic, 100, 0.5, 12);
        let drops = s.bottleneck.aqm.dropped_total();
        let retx = s.flows[0].sender.retransmits;
        assert!(drops > 0, "expected drops with a 0.5 BDP buffer");
        assert!(retx >= drops, "every dropped segment needs a retransmit: drops={drops} retx={retx}");
        // No duplicate-delivery inflation: delivered segments == receiver's count.
        let delivered = s.flows[0].receiver.delivered_segments;
        assert!(delivered > 0);
    }

    #[test]
    fn no_rtos_on_a_clean_path() {
        let s = run_single(CcaKind::Cubic, 100, 4.0, 12);
        assert_eq!(s.flows[0].sender.rto_count, 0, "clean path must not time out");
    }

    #[test]
    fn determinism_end_to_end() {
        let a = run_single(CcaKind::Cubic, 100, 1.0, 6);
        let b = run_single(CcaKind::Cubic, 100, 1.0, 6);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.flows[0].receiver.delivered_bytes, b.flows[0].receiver.delivered_bytes);
        assert_eq!(a.flows[0].sender.retransmits, b.flows[0].sender.retransmits);
    }

    #[test]
    fn srtt_close_to_path_rtt() {
        let s = run_single(CcaKind::BbrV2, 100, 1.0, 8);
        let srtt = s.flows[0].sender.srtt.expect("srtt measured");
        let rtt_ms = srtt.as_millis_f64();
        assert!((61.0..200.0).contains(&rtt_ms), "srtt {rtt_ms:.1} ms");
        let min_rtt = s.flows[0].sender.min_rtt.unwrap().as_millis_f64();
        assert!((62.0..66.0).contains(&min_rtt), "min_rtt {min_rtt:.2} ms");
    }

    #[test]
    fn bounded_source_stops() {
        let bw = Bandwidth::from_mbps(100);
        let spec = DumbbellSpec::paper(bw);
        let topo = spec.build();
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                duration: SimDuration::from_secs(10),
                warmup: SimDuration::ZERO,
                max_events: u64::MAX,
            },
            3,
        );
        let cfg = SenderConfig { total_segments: Some(100), ..Default::default() };
        let (tx, rx) =
            flow_pair(CcaKind::Cubic, cfg, ReceiverConfig::default(), spec.sender(0), spec.receiver(0));
        sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
        let s = sim.run();
        assert_eq!(s.flows[0].receiver.delivered_segments, 100);
        assert_eq!(s.flows[0].sender.data_segments_sent, 100, "no spurious retx on clean path");
    }
}
