//! The sender's per-segment SACK scoreboard.
//!
//! Segments are sequenced in MSS units, so the scoreboard is a `VecDeque`
//! indexed by `seq - snd_una` — O(1) lookup, no allocation in steady state,
//! and exact conservation accounting (every segment is in exactly one of
//! the four states).

use elephants_netsim::SimTime;

/// Where a transmitted-but-unacked segment stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktState {
    /// In flight, no evidence either way.
    Outstanding,
    /// SACKed by the receiver (delivered out of order).
    Sacked,
    /// Declared lost, retransmission pending.
    Lost,
    /// Declared lost and retransmitted; the retransmission is in flight.
    LostRetx,
}

/// Per-segment bookkeeping (transmission time + rate-sampler snapshot).
#[derive(Debug, Clone, Copy)]
pub struct PktMeta {
    /// Current state.
    pub state: PktState,
    /// Most recent transmission time.
    pub tx_time: SimTime,
    /// Whether this segment was ever retransmitted (Karn's rule).
    pub retx: bool,
    /// `delivered` counter at (most recent) send.
    pub delivered_at_send: u64,
    /// `delivered_time` at (most recent) send.
    pub delivered_time_at_send: SimTime,
    /// Connection `first_tx_time` at (most recent) send.
    pub first_tx_at_send: SimTime,
    /// Whether the connection was app-limited at send.
    pub app_limited_at_send: bool,
}

/// Aggregate of everything ACK processing needs from the segments removed
/// by one cumulative-ACK advance ([`Scoreboard::advance_una_batch`]).
///
/// All four facts are associative folds over the removed segments, so one
/// GRO-coalesced ACK covering dozens of segments costs one scoreboard pass
/// and one fixed-size summary — no per-segment callback into the sender.
#[derive(Debug, Clone, Copy, Default)]
pub struct AckBatch {
    /// Removed segments that were not already SACK-delivered: the ones
    /// this ACK newly accounts as delivered.
    pub newly_acked: u64,
    /// Some removed segment was marked Lost and never retransmitted —
    /// its *original* transmission arrived, the F-RTO/Eifel evidence that
    /// a timeout in progress was spurious.
    pub lost_never_retx: bool,
    /// The removed segment with the highest `delivered_at_send` (later
    /// sequence wins ties) and its sequence: the delivery-rate and
    /// round-accounting sample candidate.
    pub sample: Option<(u64, PktMeta)>,
    /// Latest transmission time among never-retransmitted segments
    /// (Karn's rule): `now - latest_clean_tx` is the smallest — i.e. the
    /// taken — RTT sample of the batch.
    pub latest_clean_tx: Option<SimTime>,
}

impl AckBatch {
    /// Fold one removed segment into the aggregate (in sequence order —
    /// the tie-breaks match the per-segment callback spelling exactly).
    fn fold(&mut self, seq: u64, meta: &PktMeta) {
        if meta.state != PktState::Sacked {
            self.newly_acked += 1;
        }
        if meta.state == PktState::Lost && !meta.retx {
            self.lost_never_retx = true;
        }
        if !meta.retx {
            self.latest_clean_tx =
                Some(self.latest_clean_tx.map_or(meta.tx_time, |t| t.max(meta.tx_time)));
        }
        match self.sample {
            Some((_, best)) if meta.delivered_at_send < best.delivered_at_send => {}
            _ => self.sample = Some((seq, *meta)),
        }
    }
}

/// The scoreboard proper.
#[derive(Debug, Default)]
pub struct Scoreboard {
    /// Sequence number of the first entry (== snd_una).
    base: u64,
    entries: std::collections::VecDeque<PktMeta>,
    n_outstanding: usize,
    n_sacked: usize,
    n_lost: usize,
    n_lost_retx: usize,
    /// Highest sequence number SACKed so far (None until first SACK).
    highest_sacked: Option<u64>,
}

impl Scoreboard {
    /// Empty scoreboard starting at sequence 0.
    pub fn new() -> Self {
        Scoreboard::default()
    }

    /// First unacknowledged sequence number.
    pub fn snd_una(&self) -> u64 {
        self.base
    }

    /// One past the last tracked sequence (== snd_nxt).
    pub fn snd_nxt(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Number of tracked segments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Segments currently in flight (outstanding + retransmitted).
    pub fn inflight_segments(&self) -> u64 {
        (self.n_outstanding + self.n_lost_retx) as u64
    }

    /// Segments declared lost and not yet retransmitted.
    pub fn lost_pending(&self) -> usize {
        self.n_lost
    }

    /// Segments in the Sacked state.
    pub fn sacked_count(&self) -> usize {
        self.n_sacked
    }

    /// Highest SACKed sequence number.
    pub fn highest_sacked(&self) -> Option<u64> {
        self.highest_sacked
    }

    /// Track a newly transmitted segment (must be `snd_nxt`).
    pub fn push_sent(&mut self, seq: u64, meta: PktMeta) {
        debug_assert_eq!(seq, self.snd_nxt(), "segments must be pushed in order");
        debug_assert_eq!(meta.state, PktState::Outstanding);
        self.entries.push_back(meta);
        self.n_outstanding += 1;
    }

    /// Look up a segment.
    pub fn get(&self, seq: u64) -> Option<&PktMeta> {
        let idx = seq.checked_sub(self.base)? as usize;
        self.entries.get(idx)
    }

    fn dec_state(&mut self, st: PktState) {
        match st {
            PktState::Outstanding => self.n_outstanding -= 1,
            PktState::Sacked => self.n_sacked -= 1,
            PktState::Lost => self.n_lost -= 1,
            PktState::LostRetx => self.n_lost_retx -= 1,
        }
    }

    fn inc_state(&mut self, st: PktState) {
        match st {
            PktState::Outstanding => self.n_outstanding += 1,
            PktState::Sacked => self.n_sacked += 1,
            PktState::Lost => self.n_lost += 1,
            PktState::LostRetx => self.n_lost_retx += 1,
        }
    }

    fn set_state(&mut self, seq: u64, st: PktState) {
        let idx = (seq - self.base) as usize;
        let old = self.entries[idx].state;
        if old != st {
            self.dec_state(old);
            self.inc_state(st);
            self.entries[idx].state = st;
        }
    }

    /// Advance the cumulative ACK point to `new_una`, invoking `f` for every
    /// segment removed (newly fully acknowledged), in sequence order.
    pub fn advance_una(&mut self, new_una: u64, mut f: impl FnMut(u64, &PktMeta)) {
        // An ACK below snd_una is old or reordered — a legitimate no-op.
        // Subtracting without this guard would wrap in release builds and
        // drain the whole scoreboard.
        if new_una <= self.base {
            return;
        }
        let n = (new_una - self.base).min(self.entries.len() as u64);
        for _ in 0..n {
            let meta = self.entries.pop_front().expect("length checked");
            self.dec_state(meta.state);
            f(self.base, &meta);
            self.base += 1;
        }
    }

    /// Advance the cumulative ACK point to `new_una`, folding the removed
    /// segments into one [`AckBatch`] in a single pass.
    ///
    /// This is the coalescing-era spelling of [`Scoreboard::advance_una`]:
    /// a GRO-batched ACK can cover dozens of segments, and everything the
    /// sender's ACK processing needs from them is associative — so the
    /// scoreboard folds the batch itself instead of invoking a callback
    /// per segment. The fold is exactly equivalent to the callback
    /// spelling (same iteration order, same tie-breaks), so non-coalesced
    /// runs are byte-identical either way.
    pub fn advance_una_batch(&mut self, new_una: u64) -> AckBatch {
        let mut batch = AckBatch::default();
        self.advance_una(new_una, |seq, meta| batch.fold(seq, meta));
        batch
    }

    /// Apply a SACK range `[start, end)`; invokes `f` for every segment
    /// *newly* marked Sacked.
    pub fn apply_sack(&mut self, start: u64, end: u64, mut f: impl FnMut(u64, &PktMeta)) {
        let lo = start.max(self.base);
        let hi = end.min(self.snd_nxt());
        for seq in lo..hi {
            let idx = (seq - self.base) as usize;
            let st = self.entries[idx].state;
            if st != PktState::Sacked {
                self.set_state(seq, PktState::Sacked);
                let meta = self.entries[(seq - self.base) as usize];
                f(seq, &meta);
            }
        }
        if hi > lo {
            self.highest_sacked = Some(self.highest_sacked.map_or(hi - 1, |h| h.max(hi - 1)));
        }
    }

    /// FACK-style loss marking: any Outstanding segment more than
    /// `dupthresh` below the highest SACK is lost. Invokes `f` per newly
    /// lost segment; returns the count.
    pub fn detect_losses(&mut self, dupthresh: u64, mut f: impl FnMut(u64)) -> u64 {
        let Some(hs) = self.highest_sacked else { return 0 };
        // dupthresh == 0 would underflow below (debug panic, huge cutoff in
        // release); treat it as the most aggressive sensible threshold.
        let dupthresh = dupthresh.max(1);
        let cutoff = hs.saturating_sub(dupthresh - 1); // seq < cutoff ⇒ lost
        let mut newly = 0;
        let base = self.base;
        let limit = cutoff.saturating_sub(base).min(self.entries.len() as u64) as usize;
        for idx in 0..limit {
            if self.entries[idx].state == PktState::Outstanding {
                let seq = base + idx as u64;
                self.set_state(seq, PktState::Lost);
                f(seq);
                newly += 1;
            }
        }
        newly
    }

    /// Undo an RTO's loss marking (spurious-RTO recovery): segments still
    /// waiting for retransmission go back to Outstanding — their original
    /// transmissions are evidently still being delivered.
    pub fn revert_lost_to_outstanding(&mut self) -> usize {
        let mut reverted = 0;
        for idx in 0..self.entries.len() {
            if self.entries[idx].state == PktState::Lost {
                let seq = self.base + idx as u64;
                self.set_state(seq, PktState::Outstanding);
                reverted += 1;
            }
        }
        reverted
    }

    /// Mark every non-SACKed segment lost (RTO recovery).
    pub fn mark_all_lost(&mut self) {
        for idx in 0..self.entries.len() {
            let seq = self.base + idx as u64;
            match self.entries[idx].state {
                PktState::Outstanding | PktState::LostRetx => self.set_state(seq, PktState::Lost),
                _ => {}
            }
        }
    }

    /// Transmission time of the oldest segment currently in flight
    /// (Outstanding or LostRetx). Anchors the retransmission timer, so that
    /// a stalled head-of-line hole eventually times out even while later
    /// SACK-carrying ACKs keep arriving (Linux `tcp_rearm_rto` semantics).
    pub fn first_inflight_tx_time(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .find(|m| matches!(m.state, PktState::Outstanding | PktState::LostRetx))
            .map(|m| m.tx_time)
    }

    /// Next lost segment to retransmit (lowest sequence first).
    pub fn next_lost(&self) -> Option<u64> {
        if self.n_lost == 0 {
            return None;
        }
        self.entries
            .iter()
            .position(|m| m.state == PktState::Lost)
            .map(|idx| self.base + idx as u64)
    }

    /// Record the retransmission of `seq` with a fresh rate-sampler snapshot.
    pub fn mark_retransmitted(&mut self, seq: u64, meta_update: PktMeta) {
        let idx = (seq - self.base) as usize;
        debug_assert_eq!(self.entries[idx].state, PktState::Lost, "only lost segments are retransmitted");
        self.set_state(seq, PktState::LostRetx);
        let e = &mut self.entries[idx];
        e.tx_time = meta_update.tx_time;
        e.retx = true;
        e.delivered_at_send = meta_update.delivered_at_send;
        e.delivered_time_at_send = meta_update.delivered_time_at_send;
        e.first_tx_at_send = meta_update.first_tx_at_send;
        e.app_limited_at_send = meta_update.app_limited_at_send;
    }

    /// Conservation check: segments in each state sum to the total
    /// (diagnostic; enforced per event by the strict-mode checker).
    pub fn check_conservation(&self) -> bool {
        self.n_outstanding + self.n_sacked + self.n_lost + self.n_lost_retx == self.entries.len()
    }

    /// The incrementally maintained per-state counters:
    /// `(outstanding, sacked, lost, lost_retx)`.
    pub fn state_counts(&self) -> (usize, usize, usize, usize) {
        (self.n_outstanding, self.n_sacked, self.n_lost, self.n_lost_retx)
    }

    /// Recount the states by scanning every entry — the O(n) ground truth
    /// the incremental counters must agree with. Diagnostic; used by the
    /// property suite, not the per-event checker.
    pub fn recount_states(&self) -> (usize, usize, usize, usize) {
        let (mut o, mut s, mut l, mut r) = (0, 0, 0, 0);
        for e in &self.entries {
            match e.state {
                PktState::Outstanding => o += 1,
                PktState::Sacked => s += 1,
                PktState::Lost => l += 1,
                PktState::LostRetx => r += 1,
            }
        }
        (o, s, l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(t: u64) -> PktMeta {
        PktMeta {
            state: PktState::Outstanding,
            tx_time: SimTime::from_nanos(t),
            retx: false,
            delivered_at_send: 0,
            delivered_time_at_send: SimTime::ZERO,
            first_tx_at_send: SimTime::ZERO,
            app_limited_at_send: false,
        }
    }

    fn board_with(n: u64) -> Scoreboard {
        let mut sb = Scoreboard::new();
        for seq in 0..n {
            sb.push_sent(seq, meta(seq));
        }
        sb
    }

    #[test]
    fn push_and_cumulative_ack() {
        let mut sb = board_with(5);
        assert_eq!(sb.snd_una(), 0);
        assert_eq!(sb.snd_nxt(), 5);
        assert_eq!(sb.inflight_segments(), 5);
        let mut acked = vec![];
        sb.advance_una(3, |seq, _| acked.push(seq));
        assert_eq!(acked, vec![0, 1, 2]);
        assert_eq!(sb.snd_una(), 3);
        assert_eq!(sb.inflight_segments(), 2);
        assert!(sb.check_conservation());
    }

    #[test]
    fn sack_marks_and_counts_once() {
        let mut sb = board_with(10);
        let mut newly = vec![];
        sb.apply_sack(4, 7, |seq, _| newly.push(seq));
        assert_eq!(newly, vec![4, 5, 6]);
        assert_eq!(sb.sacked_count(), 3);
        // Re-applying the same range marks nothing new.
        let mut again = vec![];
        sb.apply_sack(4, 7, |seq, _| again.push(seq));
        assert!(again.is_empty());
        assert_eq!(sb.highest_sacked(), Some(6));
        assert!(sb.check_conservation());
    }

    #[test]
    fn fack_loss_detection() {
        let mut sb = board_with(10);
        // SACK 5..8: highest_sacked = 7; dupthresh 3 ⇒ seqs < 5 are lost.
        sb.apply_sack(5, 8, |_, _| {});
        let mut lost = vec![];
        let n = sb.detect_losses(3, |s| lost.push(s));
        assert_eq!(n, 5);
        assert_eq!(lost, vec![0, 1, 2, 3, 4]);
        assert_eq!(sb.lost_pending(), 5);
        assert_eq!(sb.inflight_segments(), 2); // seqs 8, 9
        assert!(sb.check_conservation());
    }

    #[test]
    fn loss_detection_respects_dupthresh_boundary() {
        let mut sb = board_with(6);
        sb.apply_sack(3, 4, |_, _| {}); // highest_sacked = 3
        let mut lost = vec![];
        sb.detect_losses(3, |s| lost.push(s));
        // cutoff = 3 - 2 = 1: only seq 0 is lost.
        assert_eq!(lost, vec![0]);
    }

    #[test]
    fn retransmit_cycle() {
        let mut sb = board_with(6);
        sb.apply_sack(3, 6, |_, _| {});
        sb.detect_losses(3, |_| {});
        assert_eq!(sb.next_lost(), Some(0));
        sb.mark_retransmitted(0, meta(99));
        assert_eq!(sb.next_lost(), Some(1));
        assert!(sb.get(0).unwrap().retx);
        assert_eq!(sb.get(0).unwrap().tx_time, SimTime::from_nanos(99));
        // Only the retransmitted segment is in flight (3..6 are SACKed,
        // 1 and 2 are still awaiting retransmission).
        assert_eq!(sb.inflight_segments(), 1);
        assert!(sb.check_conservation());
    }

    #[test]
    fn rto_marks_everything_unsacked_lost() {
        let mut sb = board_with(8);
        sb.apply_sack(5, 6, |_, _| {});
        sb.mark_all_lost();
        assert_eq!(sb.lost_pending(), 7);
        assert_eq!(sb.sacked_count(), 1);
        assert_eq!(sb.inflight_segments(), 0);
        assert!(sb.check_conservation());
    }

    #[test]
    fn cumulative_ack_clears_sacked_and_lost() {
        let mut sb = board_with(10);
        sb.apply_sack(4, 8, |_, _| {});
        sb.detect_losses(3, |_| {});
        let mut removed = 0;
        sb.advance_una(10, |_, _| removed += 1);
        assert_eq!(removed, 10);
        assert!(sb.is_empty());
        assert_eq!(sb.inflight_segments(), 0);
        assert_eq!(sb.lost_pending(), 0);
        assert!(sb.check_conservation());
    }

    #[test]
    fn stale_ack_below_una_is_a_noop() {
        let mut sb = board_with(8);
        sb.advance_una(5, |_, _| {});
        assert_eq!(sb.snd_una(), 5);
        // A reordered ACK for an already-acknowledged point must not drain
        // the scoreboard (regression: `new_una - base` wrapped in release).
        let mut removed = 0;
        sb.advance_una(3, |_, _| removed += 1);
        assert_eq!(removed, 0);
        assert_eq!(sb.snd_una(), 5);
        assert_eq!(sb.len(), 3);
        assert!(sb.check_conservation());
    }

    #[test]
    fn detect_losses_with_zero_dupthresh() {
        let mut sb = board_with(6);
        sb.apply_sack(3, 4, |_, _| {}); // highest_sacked = 3
        let mut lost = vec![];
        // dupthresh 0 is clamped to 1 (regression: `dupthresh - 1`
        // underflowed): cutoff = 3, so seqs 0..3 are lost.
        let n = sb.detect_losses(0, |s| lost.push(s));
        assert_eq!(n, 3);
        assert_eq!(lost, vec![0, 1, 2]);
        assert!(sb.check_conservation());
    }

    #[test]
    fn random_op_sequences_conserve_the_scoreboard() {
        use elephants_netsim::prop::{run_cases, DEFAULT_CASES};
        use elephants_netsim::{prop_check, prop_check_eq, RngExt};
        // Drive random push/ack/sack/loss/retransmit sequences and assert
        // the checker's scoreboard invariants after every single operation:
        // conservation, counter-vs-scan agreement, and window ordering.
        run_cases("scoreboard_random_ops", DEFAULT_CASES, |rng| {
            let mut sb = Scoreboard::new();
            let mut tx = 0u64;
            let ops = rng.random_range(20usize..120);
            for _ in 0..ops {
                match rng.random_range(0u32..7) {
                    0 | 1 => {
                        for _ in 0..rng.random_range(1u64..8) {
                            sb.push_sent(sb.snd_nxt(), meta(tx));
                            tx += 1;
                        }
                    }
                    2 => {
                        // Anywhere from a stale ACK to one past snd_nxt.
                        let target = rng.random_range(0..sb.snd_nxt() + 3);
                        sb.advance_una(target, |_, _| {});
                    }
                    3 => {
                        let lo = rng.random_range(0..sb.snd_nxt() + 2);
                        let hi = lo + rng.random_range(0u64..5);
                        sb.apply_sack(lo, hi, |_, _| {});
                    }
                    4 => {
                        // Includes the once-underflowing dupthresh == 0.
                        sb.detect_losses(rng.random_range(0u64..4), |_| {});
                    }
                    5 => {
                        if let Some(seq) = sb.next_lost() {
                            sb.mark_retransmitted(seq, meta(tx));
                            tx += 1;
                        }
                    }
                    _ => {
                        if rng.random_range(0u32..2) == 0 {
                            sb.mark_all_lost();
                        } else {
                            sb.revert_lost_to_outstanding();
                        }
                    }
                }
                prop_check!(
                    sb.check_conservation(),
                    "state counters {:?} do not sum to len {}",
                    sb.state_counts(),
                    sb.len()
                );
                prop_check_eq!(sb.state_counts(), sb.recount_states());
                prop_check!(sb.snd_una() <= sb.snd_nxt());
                prop_check!(sb.inflight_segments() <= sb.len() as u64);
                if let Some(hs) = sb.highest_sacked() {
                    prop_check!(hs < sb.snd_nxt(), "highest_sacked {hs} >= snd_nxt");
                }
            }
            Ok(())
        });
    }

    #[test]
    fn sack_ranges_clamped_to_window() {
        let mut sb = board_with(5);
        let mut newly = vec![];
        sb.apply_sack(0, 100, |seq, _| newly.push(seq));
        assert_eq!(newly, vec![0, 1, 2, 3, 4]);
        sb.advance_una(5, |_, _| {});
        // SACK below snd_una is a no-op.
        let mut again = vec![];
        sb.apply_sack(0, 3, |seq, _| again.push(seq));
        assert!(again.is_empty());
    }
}
