//! Focused behavioural tests for the TCP stack: pacing, RTO backoff under
//! blackholes, spurious-RTO undo, ECN echo.

use elephants_cca::{build_cca_seeded, CcaKind};
use elephants_netsim::prelude::*;
use elephants_netsim::{FaultPlan, LossModel};
use elephants_tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};

fn paper_sim(bw_mbps: u64, buffer_bdp: f64, secs: u64, seed: u64) -> (Simulator, DumbbellSpec) {
    let bw = Bandwidth::from_mbps(bw_mbps);
    let spec = DumbbellSpec::paper(bw);
    let mut topo = spec.build();
    let bdp = elephants_netsim::bdp_bytes(bw, topo.base_rtt());
    topo.set_bottleneck_aqm(Box::new(DropTail::new(
        ((bdp as f64 * buffer_bdp) as u64).max(4 * 8900),
    )));
    let sim = Simulator::new(
        topo,
        SimConfig {
            duration: SimDuration::from_secs(secs),
            warmup: SimDuration::from_secs(secs / 4),
            max_events: u64::MAX,
        },
        seed,
    );
    (sim, spec)
}

fn add_tcp(sim: &mut Simulator, spec: &DumbbellSpec, pair: usize, kind: CcaKind) -> FlowId {
    let tx = TcpSender::new(
        SenderConfig::default(),
        spec.receiver(pair),
        build_cca_seeded(kind, 8900, 42 + pair as u64),
    );
    let rx = TcpReceiver::new(ReceiverConfig::default(), spec.sender(pair));
    sim.add_flow(spec.sender(pair), spec.receiver(pair), Box::new(tx), Box::new(rx), SimTime::ZERO)
}

#[test]
fn bbr_pacing_smooths_the_bottleneck_queue() {
    // A paced BBRv2 flow should keep the standing queue tiny compared to an
    // unpaced CUBIC flow at the same (deep) buffer.
    let run = |kind: CcaKind| {
        let (mut sim, spec) = paper_sim(100, 8.0, 15, 7);
        let flow = add_tcp(&mut sim, &spec, 0, kind);
        let bn = sim.topology().bottleneck_link().unwrap();
        // Sample peak queue over the second half of the run.
        let mut peak = 0usize;
        for step in 1..=60 {
            sim.run_until(SimTime::ZERO + SimDuration::from_millis(step * 250));
            if step > 30 {
                peak = peak.max(sim.topology().link(bn).aqm.backlog_pkts());
            }
        }
        let _ = flow;
        peak
    };
    let bbr_peak = run(CcaKind::BbrV2);
    let cubic_peak = run(CcaKind::Cubic);
    assert!(
        bbr_peak < cubic_peak / 2,
        "paced BBRv2 queue ({bbr_peak} pkts) must stay far below CUBIC's ({cubic_peak} pkts)"
    );
}

#[test]
fn blackhole_triggers_rto_with_backoff() {
    // Kill the bottleneck entirely shortly after start: the sender must
    // RTO, back off exponentially, and not melt down.
    let (mut sim, spec) = paper_sim(100, 2.0, 20, 1);
    let flow = add_tcp(&mut sim, &spec, 0, CcaKind::Cubic);
    // Let it get going, then blackhole the forward path.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    let bn = sim.topology().bottleneck_link().unwrap();
    sim.topology_mut().link_mut(bn).loss_model = LossModel::Bernoulli { p: 1.0 };
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
    let sender = sim.sender(flow).as_any().downcast_ref::<TcpSender>().unwrap();
    let report = sender.report();
    assert!(report.rto_count >= 2, "expected repeated RTOs, got {}", report.rto_count);
    // Exponential backoff bounds the attempts in 18 s to a handful.
    assert!(report.rto_count <= 12, "backoff must throttle RTOs, got {}", report.rto_count);
}

#[test]
fn path_recovers_after_transient_blackhole() {
    let (mut sim, spec) = paper_sim(100, 2.0, 30, 1);
    let flow = add_tcp(&mut sim, &spec, 0, CcaKind::Cubic);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
    let bn = sim.topology().bottleneck_link().unwrap();
    sim.topology_mut().link_mut(bn).loss_model = LossModel::Bernoulli { p: 1.0 };
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(7));
    sim.topology_mut().link_mut(bn).loss_model = LossModel::None;
    // Give the RTO backoff + slow-start ramp time, then measure the final
    // five seconds only.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(25));
    let rx_before = sim
        .receiver(flow)
        .as_any()
        .downcast_ref::<TcpReceiver>()
        .unwrap()
        .delivered_bytes();
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    let rx_after = sim
        .receiver(flow)
        .as_any()
        .downcast_ref::<TcpReceiver>()
        .unwrap()
        .delivered_bytes();
    let recovered_mbps = (rx_after - rx_before) as f64 * 8.0 / 5.0 / 1e6;
    assert!(
        recovered_mbps > 70.0,
        "flow must recover to near line rate after the outage: {recovered_mbps:.1} Mbps"
    );
}

#[test]
fn flow_survives_a_two_second_link_flap() {
    // Tentpole behaviour: a scheduled LinkDown/LinkUp flap (2 s outage,
    // injected through the fault plan rather than by poking the loss
    // model) must not deadlock the sender. RTO backoff rides out the
    // outage and the flow re-attains at least 80% of its pre-flap goodput
    // once the link returns.
    let (mut sim, spec) = paper_sim(100, 2.0, 30, 1);
    let flow = add_tcp(&mut sim, &spec, 0, CcaKind::Cubic);
    let bn = sim.topology().bottleneck_link().unwrap();
    sim.install_fault_plan(
        bn,
        &FaultPlan::flap(SimDuration::from_secs(10), SimDuration::from_secs(2)),
    );
    let delivered = |sim: &Simulator| {
        sim.receiver(flow).as_any().downcast_ref::<TcpReceiver>().unwrap().delivered_bytes()
    };

    // Pre-flap goodput over t = 5..10 s (past slow start).
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
    let rx5 = delivered(&sim);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
    let rx10 = delivered(&sim);
    let pre_mbps = (rx10 - rx5) as f64 * 8.0 / 5.0 / 1e6;

    // Ride through the outage plus RTO-backoff recovery, then measure the
    // final five seconds.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(25));
    let rx25 = delivered(&sim);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    let rx30 = delivered(&sim);
    let post_mbps = (rx30 - rx25) as f64 * 8.0 / 5.0 / 1e6;

    let sender = sim.sender(flow).as_any().downcast_ref::<TcpSender>().unwrap();
    assert!(sender.report().rto_count >= 1, "a 2 s outage must trigger at least one RTO");
    assert!(pre_mbps > 50.0, "sanity: healthy pre-flap goodput, got {pre_mbps:.1} Mbps");
    assert!(
        post_mbps >= 0.8 * pre_mbps,
        "flow must re-attain >=80% of pre-flap goodput: {post_mbps:.1} vs {pre_mbps:.1} Mbps"
    );
    let stats = sim.topology().link(bn).stats();
    assert!(stats.down_drops > 0, "packets offered during the outage are destroyed and counted");
    assert_eq!(stats.fault_events_applied, 2, "LinkDown + LinkUp both dispatched");
}

#[test]
fn ecn_marks_flow_back_to_sender() {
    // ECN-capable sender + marking FQ-CoDel: receiver echoes CE, sender
    // counts echoes, and drops stay at zero on a clean path.
    let bw = Bandwidth::from_mbps(100);
    let spec = DumbbellSpec::paper(bw);
    let mut topo = spec.build();
    let bdp = elephants_netsim::bdp_bytes(bw, topo.base_rtt());
    topo.set_bottleneck_aqm(elephants_aqm::build_aqm(
        elephants_aqm::AqmKind::FqCodel,
        2 * bdp,
        100_000_000,
        8900,
        true, // ECN on
        9,
    ));
    let mut sim = Simulator::new(
        topo,
        SimConfig {
            duration: SimDuration::from_secs(15),
            warmup: SimDuration::from_secs(3),
            max_events: u64::MAX,
        },
        9,
    );
    let tx = TcpSender::new(
        SenderConfig { ecn: true, ..Default::default() },
        spec.receiver(0),
        build_cca_seeded(CcaKind::Cubic, 8900, 5),
    );
    let rx = TcpReceiver::new(ReceiverConfig::default(), spec.sender(0));
    let flow = sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
    let summary = sim.run();
    let rep = &summary.flows[flow.0 as usize];
    assert!(rep.receiver.ecn_marks > 0, "CoDel must CE-mark the CUBIC queue");
    assert!(rep.sender.ecn_marks > 0, "sender must see the echoes");
}

#[test]
fn spurious_rto_counter_stays_zero_on_clean_path() {
    let (mut sim, spec) = paper_sim(100, 4.0, 15, 3);
    let flow = add_tcp(&mut sim, &spec, 0, CcaKind::Cubic);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(15));
    let sender = sim.sender(flow).as_any().downcast_ref::<TcpSender>().unwrap();
    assert_eq!(sender.report().rto_count, 0);
    assert_eq!(sender.spurious_rtos(), 0);
}

#[test]
fn two_competing_flows_are_deterministic_per_seed_and_differ_across_seeds() {
    let run = |seed: u64| {
        let (mut sim, spec) = paper_sim(100, 1.0, 10, seed);
        let f0 = add_tcp(&mut sim, &spec, 0, CcaKind::BbrV1);
        let f1 = add_tcp(&mut sim, &spec, 1, CcaKind::Cubic);
        let s = sim.run();
        (
            s.flows[f0.0 as usize].receiver.delivered_bytes,
            s.flows[f1.0 as usize].receiver.delivered_bytes,
        )
    };
    assert_eq!(run(5), run(5));
    // Different seeds shift the start jitter... but these flows start at
    // t=0 exactly, so the difference comes from RED-style randomness only;
    // FIFO runs may legitimately match. Just assert both complete sanely.
    let (a, b) = run(6);
    assert!(a > 0 && b > 0);
}
