//! Property-based tests for the TCP machinery.

use elephants_netsim::{SimDuration, SimTime};
use elephants_tcp::{PktMeta, PktState, RttEstimator, Scoreboard};
use proptest::prelude::*;

fn meta(t: u64) -> PktMeta {
    PktMeta {
        state: PktState::Outstanding,
        tx_time: SimTime::from_nanos(t),
        retx: false,
        delivered_at_send: 0,
        delivered_time_at_send: SimTime::ZERO,
        first_tx_at_send: SimTime::ZERO,
        app_limited_at_send: false,
    }
}

/// Random scoreboard operations that mirror what the sender does.
#[derive(Debug, Clone)]
enum Op {
    Send(u8),
    CumAck(u8),
    Sack { lo: u8, len: u8 },
    DetectLosses,
    RetxOne,
    MarkAllLost,
    Revert,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (1u8..8).prop_map(Op::Send),
            2 => (1u8..8).prop_map(Op::CumAck),
            2 => (0u8..40, 1u8..6).prop_map(|(lo, len)| Op::Sack { lo, len }),
            1 => Just(Op::DetectLosses),
            1 => Just(Op::RetxOne),
            1 => Just(Op::MarkAllLost),
            1 => Just(Op::Revert),
        ],
        1..200,
    )
}

proptest! {
    /// Conservation: every tracked segment is in exactly one state, SACKs
    /// are idempotent, cumulative ACKs only move forward.
    #[test]
    fn scoreboard_conservation(ops in arb_ops()) {
        let mut sb = Scoreboard::new();
        let mut t = 0u64;
        for op in &ops {
            match *op {
                Op::Send(n) => {
                    for _ in 0..n {
                        t += 1;
                        let seq = sb.snd_nxt();
                        sb.push_sent(seq, meta(t));
                    }
                }
                Op::CumAck(n) => {
                    let target = (sb.snd_una() + n as u64).min(sb.snd_nxt());
                    let mut prev = None;
                    sb.advance_una(target, |seq, _| {
                        if let Some(p) = prev {
                            assert_eq!(seq, p + 1, "cum ack must visit in order");
                        }
                        prev = Some(seq);
                    });
                    prop_assert_eq!(sb.snd_una(), target);
                }
                Op::Sack { lo, len } => {
                    let s = sb.snd_una() + lo as u64;
                    let e = s + len as u64;
                    let before = sb.sacked_count();
                    let mut newly = 0;
                    sb.apply_sack(s, e, |_, _| newly += 1);
                    prop_assert_eq!(sb.sacked_count(), before + newly);
                    // Idempotent.
                    let mut again = 0;
                    sb.apply_sack(s, e, |_, _| again += 1);
                    prop_assert_eq!(again, 0);
                }
                Op::DetectLosses => {
                    sb.detect_losses(3, |_| {});
                }
                Op::RetxOne => {
                    if let Some(seq) = sb.next_lost() {
                        t += 1;
                        sb.mark_retransmitted(seq, meta(t));
                        prop_assert!(sb.get(seq).unwrap().retx);
                    }
                }
                Op::MarkAllLost => sb.mark_all_lost(),
                Op::Revert => {
                    sb.revert_lost_to_outstanding();
                    prop_assert_eq!(sb.lost_pending(), 0);
                }
            }
            prop_assert!(sb.check_conservation(), "state counters drifted");
            prop_assert!(sb.snd_una() <= sb.snd_nxt());
            prop_assert!(sb.inflight_segments() as usize + sb.lost_pending() + sb.sacked_count() <= sb.len());
        }
    }

    /// The RTO estimator never returns less than the minimum or more than
    /// the maximum, and is monotone under backoff.
    #[test]
    fn rto_bounds(samples in proptest::collection::vec(1u64..5_000, 1..100), backoffs in 0u32..20) {
        let mut e = RttEstimator::new();
        for &ms in &samples {
            e.on_sample(SimDuration::from_millis(ms));
            prop_assert!(e.rto() >= elephants_tcp::MIN_RTO);
            prop_assert!(e.rto() <= elephants_tcp::MAX_RTO);
            let srtt = e.srtt().unwrap();
            prop_assert!(e.rto() >= srtt, "RTO must exceed SRTT");
        }
        let mut prev = e.rto();
        for _ in 0..backoffs {
            e.backoff();
            prop_assert!(e.rto() >= prev);
            prev = e.rto();
        }
    }

    /// SRTT stays within the convex hull of its samples.
    #[test]
    fn srtt_bounded_by_samples(samples in proptest::collection::vec(1u64..10_000, 1..200)) {
        let mut e = RttEstimator::new();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &ms in &samples {
            lo = lo.min(ms);
            hi = hi.max(ms);
            e.on_sample(SimDuration::from_millis(ms));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        prop_assert!(srtt >= lo as f64 - 1.0 && srtt <= hi as f64 + 1.0, "srtt {srtt} outside [{lo},{hi}]");
        prop_assert_eq!(e.min_rtt().unwrap(), SimDuration::from_millis(lo));
    }

    /// Rate samples never exceed the true send/ack rate envelope.
    #[test]
    fn rate_sample_honest(
        delivered_delta in 1u64..10_000_000,
        snd_us in 1u64..1_000_000,
        ack_us in 1u64..1_000_000,
    ) {
        let t0 = SimTime::ZERO;
        let rate = elephants_tcp::rate::delivery_rate_bps(
            delivered_delta,
            0,
            t0 + SimDuration::from_micros(snd_us),
            t0,
            t0 + SimDuration::from_micros(snd_us + ack_us),
            t0 + SimDuration::from_micros(snd_us),
        ).unwrap();
        // Max of both intervals: rate is at most delta/max(snd,ack).
        let max_int = snd_us.max(ack_us) as f64 / 1e6;
        let ceiling = delivered_delta as f64 * 8.0 / max_int;
        prop_assert!(rate as f64 <= ceiling * 1.001, "rate {rate} over ceiling {ceiling}");
    }
}
