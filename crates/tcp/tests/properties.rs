//! Property-based tests for the TCP machinery (seeded harness).

use elephants_netsim::prop::{run_cases, vec_of, DEFAULT_CASES};
use elephants_netsim::{prop_check, prop_check_eq, RngExt, SimDuration, SimTime, SmallRng};
use elephants_tcp::{PktMeta, PktState, RttEstimator, Scoreboard};

fn meta(t: u64) -> PktMeta {
    PktMeta {
        state: PktState::Outstanding,
        tx_time: SimTime::from_nanos(t),
        retx: false,
        delivered_at_send: 0,
        delivered_time_at_send: SimTime::ZERO,
        first_tx_at_send: SimTime::ZERO,
        app_limited_at_send: false,
    }
}

/// Random scoreboard operations that mirror what the sender does.
#[derive(Debug, Clone)]
enum Op {
    Send(u8),
    CumAck(u8),
    Sack { lo: u8, len: u8 },
    DetectLosses,
    RetxOne,
    MarkAllLost,
    Revert,
}

fn gen_ops(rng: &mut SmallRng) -> Vec<Op> {
    vec_of(rng, 1, 200, |r| {
        // Weights mirror the old proptest strategy: 4:2:2:1:1:1:1.
        match r.random_range(0u32..12) {
            0..=3 => Op::Send(r.random_range(1u8..8)),
            4..=5 => Op::CumAck(r.random_range(1u8..8)),
            6..=7 => Op::Sack { lo: r.random_range(0u8..40), len: r.random_range(1u8..6) },
            8 => Op::DetectLosses,
            9 => Op::RetxOne,
            10 => Op::MarkAllLost,
            _ => Op::Revert,
        }
    })
}

/// Conservation: every tracked segment is in exactly one state, SACKs
/// are idempotent, cumulative ACKs only move forward.
#[test]
fn scoreboard_conservation() {
    run_cases("scoreboard_conservation", DEFAULT_CASES, |rng| {
        let ops = gen_ops(rng);
        let mut sb = Scoreboard::new();
        let mut t = 0u64;
        for op in &ops {
            match *op {
                Op::Send(n) => {
                    for _ in 0..n {
                        t += 1;
                        let seq = sb.snd_nxt();
                        sb.push_sent(seq, meta(t));
                    }
                }
                Op::CumAck(n) => {
                    let target = (sb.snd_una() + n as u64).min(sb.snd_nxt());
                    let mut prev = None;
                    sb.advance_una(target, |seq, _| {
                        if let Some(p) = prev {
                            assert_eq!(seq, p + 1, "cum ack must visit in order");
                        }
                        prev = Some(seq);
                    });
                    prop_check_eq!(sb.snd_una(), target);
                }
                Op::Sack { lo, len } => {
                    let s = sb.snd_una() + lo as u64;
                    let e = s + len as u64;
                    let before = sb.sacked_count();
                    let mut newly = 0;
                    sb.apply_sack(s, e, |_, _| newly += 1);
                    prop_check_eq!(sb.sacked_count(), before + newly);
                    // Idempotent.
                    let mut again = 0;
                    sb.apply_sack(s, e, |_, _| again += 1);
                    prop_check_eq!(again, 0);
                }
                Op::DetectLosses => {
                    sb.detect_losses(3, |_| {});
                }
                Op::RetxOne => {
                    if let Some(seq) = sb.next_lost() {
                        t += 1;
                        sb.mark_retransmitted(seq, meta(t));
                        prop_check!(sb.get(seq).unwrap().retx);
                    }
                }
                Op::MarkAllLost => sb.mark_all_lost(),
                Op::Revert => {
                    sb.revert_lost_to_outstanding();
                    prop_check_eq!(sb.lost_pending(), 0);
                }
            }
            prop_check!(sb.check_conservation(), "state counters drifted");
            prop_check!(sb.snd_una() <= sb.snd_nxt());
            prop_check!(
                sb.inflight_segments() as usize + sb.lost_pending() + sb.sacked_count() <= sb.len()
            );
        }
        Ok(())
    });
}

/// The RTO estimator never returns less than the minimum or more than
/// the maximum, and is monotone under backoff.
#[test]
fn rto_bounds() {
    run_cases("rto_bounds", DEFAULT_CASES, |rng| {
        let samples = vec_of(rng, 1, 100, |r| r.random_range(1u64..5_000));
        let backoffs = rng.random_range(0u32..20);
        let mut e = RttEstimator::new();
        for &ms in &samples {
            e.on_sample(SimDuration::from_millis(ms));
            prop_check!(e.rto() >= elephants_tcp::MIN_RTO);
            prop_check!(e.rto() <= elephants_tcp::MAX_RTO);
            let srtt = e.srtt().unwrap();
            prop_check!(e.rto() >= srtt, "RTO must exceed SRTT");
        }
        let mut prev = e.rto();
        for _ in 0..backoffs {
            e.backoff();
            prop_check!(e.rto() >= prev);
            prev = e.rto();
        }
        Ok(())
    });
}

/// SRTT stays within the convex hull of its samples.
#[test]
fn srtt_bounded_by_samples() {
    run_cases("srtt_bounded_by_samples", DEFAULT_CASES, |rng| {
        let samples = vec_of(rng, 1, 200, |r| r.random_range(1u64..10_000));
        let mut e = RttEstimator::new();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &ms in &samples {
            lo = lo.min(ms);
            hi = hi.max(ms);
            e.on_sample(SimDuration::from_millis(ms));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        prop_check!(
            srtt >= lo as f64 - 1.0 && srtt <= hi as f64 + 1.0,
            "srtt {srtt} outside [{lo},{hi}]"
        );
        prop_check_eq!(e.min_rtt().unwrap(), SimDuration::from_millis(lo));
        Ok(())
    });
}

/// Rate samples never exceed the true send/ack rate envelope.
#[test]
fn rate_sample_honest() {
    run_cases("rate_sample_honest", DEFAULT_CASES, |rng| {
        let delivered_delta = rng.random_range(1u64..10_000_000);
        let snd_us = rng.random_range(1u64..1_000_000);
        let ack_us = rng.random_range(1u64..1_000_000);
        let t0 = SimTime::ZERO;
        let rate = elephants_tcp::rate::delivery_rate_bps(
            delivered_delta,
            0,
            t0 + SimDuration::from_micros(snd_us),
            t0,
            t0 + SimDuration::from_micros(snd_us + ack_us),
            t0 + SimDuration::from_micros(snd_us),
        )
        .unwrap();
        // Max of both intervals: rate is at most delta/max(snd,ack).
        let max_int = snd_us.max(ack_us) as f64 / 1e6;
        let ceiling = delivered_delta as f64 * 8.0 / max_int;
        prop_check!(rate as f64 <= ceiling * 1.001, "rate {rate} over ceiling {ceiling}");
        Ok(())
    });
}
