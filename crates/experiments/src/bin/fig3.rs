//! Regenerates paper Figure 3. See `--help` for flags.

use elephants_experiments::prelude::*;

fn main() {
    let cli = Cli::parse();
    let out = fig3(&cli.opts, &cli.cache, &cli.bws);
    println!("{}", out.caption);
    println!("{}", out.text);
    if let Err(e) = out.write_csvs(&cli.out_dir).and_then(|_| out.write_svgs(&cli.out_dir)) {
        eprintln!("warning: failed to write CSV/SVG: {e}");
    } else {
        println!("CSV + SVG written under {}/fig3/", cli.out_dir);
    }
}
