//! RTT-unfairness experiment: a short-RTT BBRv1 group sharing one
//! bottleneck with a CUBIC group whose RTT grows through 1:1, 2:1 and
//! 4:1 ratios (multi-dumbbell topology, heterogeneous access delays).
//!
//! BBR's model-based pacing holds its sending rate roughly constant as
//! the competitor's RTT grows, while CUBIC's window growth slows in
//! proportion — so the short-RTT BBR group's bottleneck share must grow
//! monotonically with the ratio. The binary prints one line per ratio
//! and exits nonzero if the monotonicity breaks, making the asymmetry a
//! checkable claim rather than a plot to eyeball.
//!
//! Usage:
//! `cargo run --release -p elephants-experiments --bin rtt_unfair -- \
//!    [--bw 100M] [--base-rtt 31] [--secs 20] [--seed 1] [--scale 1.0]`

use elephants_experiments::prelude::*;
use elephants_netsim::SimDuration;

fn main() {
    let mut bw = 100_000_000u64;
    let mut base_rtt = 31u64;
    let mut secs = 20u64;
    let mut seed = 1u64;
    let mut scale = 1.0f64;

    let fail = |msg: String| -> ! {
        eprintln!("rtt_unfair: {msg}");
        std::process::exit(2);
    };

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| fail(format!("{a} needs a value")));
        match a.as_str() {
            "--bw" => {
                let v = val().to_ascii_uppercase();
                bw = if let Some(x) = v.strip_suffix('G') {
                    x.parse::<u64>().unwrap_or_else(|e| fail(format!("bad --bw: {e}"))) * 1_000_000_000
                } else if let Some(x) = v.strip_suffix('M') {
                    x.parse::<u64>().unwrap_or_else(|e| fail(format!("bad --bw: {e}"))) * 1_000_000
                } else {
                    v.parse().unwrap_or_else(|e| fail(format!("bad --bw: {e}")))
                };
            }
            "--base-rtt" => {
                base_rtt = val().parse().unwrap_or_else(|e| fail(format!("bad --base-rtt: {e}")))
            }
            "--secs" => secs = val().parse().unwrap_or_else(|e| fail(format!("bad --secs: {e}"))),
            "--seed" => seed = val().parse().unwrap_or_else(|e| fail(format!("bad --seed: {e}"))),
            "--scale" => scale = val().parse().unwrap_or_else(|e| fail(format!("bad --scale: {e}"))),
            other => fail(format!("unknown flag {other}")),
        }
    }

    let mut shares: Vec<(u64, f64)> = Vec::new();
    for ratio in [1u64, 2, 4] {
        let opts = RunOptions { seed, flow_scale: scale, ..RunOptions::standard() };
        let cfg = ScenarioConfig::builder(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 2.0, bw, &opts)
            .duration(SimDuration::from_secs(secs))
            .topology(TopologySpec::MultiDumbbell { rtts_ms: vec![base_rtt, base_rtt * ratio] })
            .build()
            .unwrap_or_else(|e| fail(format!("invalid scenario: {e}")));
        let outcome = Runner::new(&cfg)
            .seed(seed)
            .run()
            .unwrap_or_else(|e| fail(format!("run failed ({}): {e}", cfg.label())));
        let r = outcome.into_first();
        let bbr = r.sender_mbps[0];
        let cubic = r.sender_mbps.get(1).copied().unwrap_or(0.0);
        let share = bbr / (bbr + cubic);
        println!(
            "rtt-unfair: ratio={ratio} bbr_rtt={base_rtt}ms cubic_rtt={}ms \
             bbr={bbr:.2}Mbps cubic={cubic:.2}Mbps bbr_share={share:.4}",
            base_rtt * ratio
        );
        shares.push((ratio, share));
    }

    let monotone = shares.windows(2).all(|w| w[1].1 > w[0].1);
    println!("rtt-unfair: monotone={}", if monotone { "yes" } else { "no" });
    if !monotone {
        eprintln!(
            "rtt_unfair: short-RTT BBR share did not grow with the RTT ratio: {shares:?}"
        );
        std::process::exit(1);
    }
}
