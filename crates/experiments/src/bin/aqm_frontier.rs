//! Extension experiment: the full AQM frontier — the paper's three
//! disciplines plus plain CoDel and PIE (RFC 8033) — compared on the same
//! intra-CUBIC workload. This is the follow-up the paper's conclusion asks
//! for ("further research on optimizing these algorithms ... for future
//! Internet").
//!
//! `cargo run --release -p elephants-experiments --bin aqm_frontier`

use elephants_experiments::prelude::*;

fn main() {
    let cli = Cli::parse();
    let aqms = [AqmKind::Fifo, AqmKind::Red, AqmKind::FqCodel, AqmKind::Codel, AqmKind::Pie];
    let mut t = TextTable::new(vec!["bw", "aqm", "phi", "jain", "retx", "drops"]);
    for &bw in &cli.bws {
        for aqm in aqms {
            let cfg = ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, aqm, 2.0, bw, &cli.opts);
            let r = Runner::new(&cfg)
                .seed(cli.opts.seed)
                .run()
                .unwrap_or_else(|e| panic!("run failed ({}): {e}", cfg.label()))
                .into_first();
            t.row(vec![
                bw_label(bw),
                aqm.name().to_string(),
                format!("{:.3}", r.utilization),
                format!("{:.3}", r.jain),
                format!("{}", r.retransmits),
                format!("{}", r.drops),
            ]);
        }
    }
    println!("AQM frontier, intra-CCA CUBIC, 2 BDP buffer\n");
    println!("{}", t.render());
    if let Err(e) = t.write_csv(format!("{}/aqm_frontier/frontier.csv", cli.out_dir)) {
        eprintln!("warning: failed to write CSV: {e}");
    }
}
