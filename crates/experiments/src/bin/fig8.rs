//! Regenerates paper Figure 8. See `--help` for flags.

use elephants_experiments::prelude::*;

fn main() {
    let cli = Cli::parse();
    let out = fig8(&cli.opts, &cli.cache, &cli.bws);
    println!("{}", out.caption);
    println!("{}", out.text);
    if let Err(e) = out.write_csvs(&cli.out_dir).and_then(|_| out.write_svgs(&cli.out_dir)) {
        eprintln!("warning: failed to write CSV/SVG: {e}");
    } else {
        println!("CSV + SVG written under {}/fig8/", cli.out_dir);
    }
}
