//! Prints the paper's Table 2: iperf3 configuration per bottleneck bandwidth.

use elephants_experiments::prelude::*;
use elephants_netsim::Bandwidth;
use elephants_workload::{table2_config, table2_total_flows};

fn main() {
    let mut t = TextTable::new(vec!["Bottleneck BW", "Total #Flows", "iperf3 configuration"]);
    for &bw in &PAPER_BWS {
        let b = Bandwidth::from_bps(bw);
        let c = table2_config(b);
        t.row(vec![
            format!("{b}"),
            format!("{}", table2_total_flows(b)),
            format!("{} iperf3 process(es)/node, {} stream(s) each", c.processes, c.streams),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv("results/table2/table2.csv") {
        eprintln!("warning: failed to write CSV: {e}");
    }
}
