//! Generate the study's "reproducible dataset": JSON time-series logs
//! (iperf3-interval-style per-sender throughput + router queue log) for a
//! slice of the grid.
//!
//! Usage (defaults: all 9 pairs, FIFO, 2 BDP, 100 Mbps):
//! `cargo run --release -p elephants-experiments --bin dataset -- --bw 100M --out results`

use elephants_experiments::prelude::*;
use elephants_netsim::SimDuration;

fn main() {
    let cli = Cli::parse();
    let mut written = 0;
    for (cca1, cca2) in paper_pairs() {
        for &bw in &cli.bws {
            for aqm in AqmKind::PAPER_SET {
                let cfg = ScenarioConfig::new(cca1, cca2, aqm, 2.0, bw, &cli.opts);
                let trace = run_scenario_traced(&cfg, cli.opts.seed, SimDuration::from_millis(500));
                let path = format!(
                    "{}/dataset/{}_vs_{}_{}_{}.json",
                    cli.out_dir,
                    cca1.name(),
                    cca2.name(),
                    aqm.name(),
                    bw_label(bw),
                );
                match trace.write_json(&path) {
                    Ok(()) => {
                        written += 1;
                        eprintln!("wrote {path} ({} samples)", trace.samples.len());
                    }
                    Err(e) => eprintln!("failed to write {path}: {e}"),
                }
            }
        }
    }
    println!("dataset: {written} trace files under {}/dataset/", cli.out_dir);
}
