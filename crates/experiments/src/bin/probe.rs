//! Probe a single scenario cell and print its raw metrics.
//!
//! Usage:
//! `cargo run --release -p elephants-experiments --bin probe -- \
//!    --cca1 bbr1 --cca2 cubic --aqm fq_codel --queue 2 --bw1 100M --secs 20`

use elephants_experiments::prelude::*;
use elephants_netsim::SimDuration;

fn main() {
    let mut cca1 = CcaKind::Cubic;
    let mut cca2 = CcaKind::Cubic;
    let mut aqm = AqmKind::Fifo;
    let mut queue = 2.0f64;
    let mut bw = 100_000_000u64;
    let mut secs = 20u64;
    let mut seed = 1u64;
    let mut scale = 1.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().expect("flag needs a value");
        match a.as_str() {
            "--cca1" => cca1 = val().parse().unwrap(),
            "--cca2" => cca2 = val().parse().unwrap(),
            "--aqm" => aqm = val().parse().unwrap(),
            "--queue" => queue = val().parse().unwrap(),
            "--bw1" | "--bw" => {
                let v = val().to_ascii_uppercase();
                bw = if let Some(x) = v.strip_suffix('G') {
                    x.parse::<u64>().unwrap() * 1_000_000_000
                } else if let Some(x) = v.strip_suffix('M') {
                    x.parse::<u64>().unwrap() * 1_000_000
                } else {
                    v.parse().unwrap()
                };
            }
            "--secs" => secs = val().parse().unwrap(),
            "--seed" => seed = val().parse().unwrap(),
            "--scale" => scale = val().parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }

    let opts = RunOptions { seed, flow_scale: scale, ..RunOptions::standard() };
    let mut cfg = ScenarioConfig::new(cca1, cca2, aqm, queue, bw, &opts);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.warmup = cfg.duration.mul_f64(0.25);

    let r = run_scenario(&cfg, seed)
        .unwrap_or_else(|e| panic!("run failed ({}): {e}", cfg.label()));
    println!("{}", cfg.label());
    println!("  flows        : {}", r.flows);
    println!("  sender1      : {:.2} Mbps ({})", r.sender_mbps[0], cca1.pretty());
    println!("  sender2      : {:.2} Mbps ({})", r.sender_mbps.get(1).copied().unwrap_or(0.0), cca2.pretty());
    println!("  jain         : {:.4}", r.jain);
    println!("  utilization  : {:.4}", r.utilization);
    println!("  retransmits  : {}", r.retransmits);
    println!("  rtos         : {}", r.rtos);
    println!("  drops        : {}", r.drops);
    println!("  events       : {}", r.events);
}
