//! Probe a single scenario cell: print its raw metrics and, with
//! `--record`, write a flight record plus dynamics figures and verify the
//! artifact parses back. The scenario-shaping flags (`--loss`, `--flap`,
//! `--record`, `--sample-interval`, `--check`, `--coalesce`, `--topology`,
//! `--fault-link`) are the shared set from `elephants_experiments::cli`,
//! spelled identically across `probe`, `sweep`, the figure binaries and
//! the chaos fuzzer.
//!
//! Usage:
//! `cargo run --release -p elephants-experiments --bin probe -- \
//!    --cca1 bbr1 --cca2 cubic --aqm fq_codel --queue 2 --bw1 100M --secs 20 \
//!    --topology parking-lot:3 --check strict \
//!    --record flows,queue,events --sample-interval 10 --out results`

use elephants_experiments::prelude::*;
use elephants_netsim::{CheckMode, SimDuration};
use elephants_telemetry::FlightRecord;

fn main() {
    let mut cca1 = CcaKind::Cubic;
    let mut cca2 = CcaKind::Cubic;
    let mut aqm = AqmKind::Fifo;
    let mut queue = 2.0f64;
    let mut bw = 100_000_000u64;
    let mut secs = 20u64;
    let mut seed = 1u64;
    let mut scale = 1.0f64;
    let mut out_dir = "results".to_string();
    let mut shared = SharedFlags::default();

    let fail = |msg: String| -> ! {
        eprintln!("probe: {msg}");
        std::process::exit(2);
    };

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match shared.try_parse(&a, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => fail(e),
        }
        let mut val = || args.next().unwrap_or_else(|| fail(format!("{a} needs a value")));
        match a.as_str() {
            "--cca1" => cca1 = val().parse().unwrap_or_else(|e| fail(e)),
            "--cca2" => cca2 = val().parse().unwrap_or_else(|e| fail(e)),
            "--aqm" => aqm = val().parse().unwrap_or_else(|e| fail(e)),
            "--queue" => queue = val().parse().unwrap_or_else(|e| fail(format!("bad --queue: {e}"))),
            "--bw1" | "--bw" => {
                let v = val().to_ascii_uppercase();
                bw = if let Some(x) = v.strip_suffix('G') {
                    x.parse::<u64>().unwrap_or_else(|e| fail(format!("bad --bw: {e}"))) * 1_000_000_000
                } else if let Some(x) = v.strip_suffix('M') {
                    x.parse::<u64>().unwrap_or_else(|e| fail(format!("bad --bw: {e}"))) * 1_000_000
                } else {
                    v.parse().unwrap_or_else(|e| fail(format!("bad --bw: {e}")))
                };
            }
            "--secs" => secs = val().parse().unwrap_or_else(|e| fail(format!("bad --secs: {e}"))),
            "--seed" => seed = val().parse().unwrap_or_else(|e| fail(format!("bad --seed: {e}"))),
            "--scale" => scale = val().parse().unwrap_or_else(|e| fail(format!("bad --scale: {e}"))),
            "--out" => out_dir = val(),
            other => fail(format!("unknown flag {other}")),
        }
    }

    let opts = RunOptions { seed, flow_scale: scale, ..RunOptions::standard() };
    let mut cfg = ScenarioConfig::builder(cca1, cca2, aqm, queue, bw, &opts)
        .duration(SimDuration::from_secs(secs))
        .build()
        .unwrap_or_else(|e| fail(format!("invalid scenario: {e}")));
    shared.apply(&mut cfg).unwrap_or_else(|e| fail(format!("invalid scenario: {e}")));

    let check = shared.check.unwrap_or(CheckMode::Off);
    let mut runner = Runner::new(&cfg).seed(seed).check(check);
    if let Some(rec) = shared.recording(&out_dir).unwrap_or_else(|e| fail(e)) {
        runner = runner.recorder(rec);
    }
    let outcome = runner
        .run()
        .unwrap_or_else(|e| panic!("run failed ({}): {e}", cfg.label()));
    let check_summary = outcome.check_reports.first().map(|rep| rep.summary_line());
    let r = outcome.into_first();
    println!("{}", cfg.label());
    println!("  flows        : {}", r.flows);
    println!("  sender1      : {:.2} Mbps ({})", r.sender_mbps[0], cca1.pretty());
    println!("  sender2      : {:.2} Mbps ({})", r.sender_mbps.get(1).copied().unwrap_or(0.0), cca2.pretty());
    println!("  jain         : {:.4}", r.jain);
    println!("  utilization  : {:.4}", r.utilization);
    println!("  retransmits  : {}", r.retransmits);
    println!("  rtos         : {}", r.rtos);
    println!("  drops        : {}", r.drops);
    println!("  events       : {}", r.events);
    if r.links.len() > 1 {
        for l in &r.links {
            println!(
                "  link{:<9}: util={:.4} drops={} down_drops={} peak_queue={} pkts",
                l.link, l.utilization, l.drops, l.down_drops, l.peak_queue_pkts
            );
        }
    }
    if let Some(line) = check_summary {
        println!("  check        : {line}");
    }

    // Close the loop on the artifact: read it back through the versioned
    // parser so a schema regression fails here, not in a notebook later.
    if let Some(path) = r.record_path.as_deref() {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading flight record {path}: {e}"));
        let rec = FlightRecord::parse(&text)
            .unwrap_or_else(|e| panic!("flight record {path} failed to parse back: {e}"));
        println!(
            "  record       : {path} (v{}, {} flow samples, {} queue samples, {} events{})",
            rec.schema_version,
            rec.flow_samples.len(),
            rec.queue_samples.len(),
            rec.events.len(),
            if rec.events_truncated > 0 {
                format!(", {} truncated", rec.events_truncated)
            } else {
                String::new()
            },
        );
        for flow in rec.flow_ids() {
            let cycles = rec.probe_bw_cycles(flow);
            if cycles > 0 {
                println!("  probe_bw     : flow {flow} completed {cycles} ProbeBW cycles");
            }
        }
    }
}
