//! Fairness-dynamics experiment: run the CCA-pair matrix with the flight
//! recorder on, difference each record into windowed per-group shares,
//! and report `J(t)`, convergence time and the late-joiner responsiveness
//! of a staggered CUBIC-vs-CUBIC run.
//!
//! Two qualitative claims from the paper are *checked*, not just plotted:
//!
//! 1. BBRv1-vs-CUBIC shows the paper's shape — CUBIC's share is
//!    suppressed well below fair early in the run, with partial recovery
//!    later (suppression without total starvation).
//! 2. A CUBIC group joining a CUBIC incumbent late claims its fair share
//!    in finite time (AIMD converges; the joiner is not locked out).
//!
//! The binary exits nonzero if either fails, making the dynamics layer a
//! CI gate. Artifacts land in `--out`: a markdown report (`dynamics.md`),
//! plus `J(t)` and windowed-share SVGs per pair.
//!
//! Usage:
//! `cargo run --release -p elephants-experiments --bin dynamics -- \
//!    [--bw 100M] [--secs 10] [--seed 1] [--scale 1.0] [--window-ms 250] \
//!    [--offset-ms 3000] [--out out/dynamics]`

use elephants_analysis::{
    convergence_time, late_joiner_response, suppression_shape, throughput_ratio, ConvergenceSpec,
};
use elephants_experiments::prelude::*;
use elephants_experiments::svg::{write_chart, ChartSpec, Series};
use elephants_netsim::SimDuration;
use std::path::Path;

struct PairRow {
    label: String,
    mean_jain: f64,
    final_jain: f64,
    convergence_s: Option<f64>,
    cubic_early: f64,
    cubic_late: f64,
    ratio_last: f64,
}

fn main() {
    let mut bw = 100_000_000u64;
    let mut secs = 10u64;
    let mut seed = 1u64;
    let mut scale = 1.0f64;
    let mut window_ms = 250u64;
    let mut offset_ms = 0u64; // 0 = 30% of the duration
    let mut out = "out/dynamics".to_string();

    let fail = |msg: String| -> ! {
        eprintln!("dynamics: {msg}");
        std::process::exit(2);
    };

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| fail(format!("{a} needs a value")));
        match a.as_str() {
            "--bw" => {
                let v = val().to_ascii_uppercase();
                bw = if let Some(x) = v.strip_suffix('G') {
                    x.parse::<u64>().unwrap_or_else(|e| fail(format!("bad --bw: {e}"))) * 1_000_000_000
                } else if let Some(x) = v.strip_suffix('M') {
                    x.parse::<u64>().unwrap_or_else(|e| fail(format!("bad --bw: {e}"))) * 1_000_000
                } else {
                    v.parse().unwrap_or_else(|e| fail(format!("bad --bw: {e}")))
                };
            }
            "--secs" => secs = val().parse().unwrap_or_else(|e| fail(format!("bad --secs: {e}"))),
            "--seed" => seed = val().parse().unwrap_or_else(|e| fail(format!("bad --seed: {e}"))),
            "--scale" => scale = val().parse().unwrap_or_else(|e| fail(format!("bad --scale: {e}"))),
            "--window-ms" => {
                window_ms = val().parse().unwrap_or_else(|e| fail(format!("bad --window-ms: {e}")))
            }
            "--offset-ms" => {
                offset_ms = val().parse().unwrap_or_else(|e| fail(format!("bad --offset-ms: {e}")))
            }
            "--out" => out = val(),
            other => fail(format!("unknown flag {other}")),
        }
    }
    if offset_ms == 0 {
        offset_ms = secs * 300; // 30% of the run
    }
    let window_s = window_ms as f64 / 1e3;
    let out_dir = Path::new(&out);
    std::fs::create_dir_all(out_dir).unwrap_or_else(|e| fail(format!("mkdir {out}: {e}")));

    let opts = RunOptions { seed, flow_scale: scale, ..RunOptions::standard() };
    let spec = ConvergenceSpec { epsilon: 0.1, hold_s: (secs as f64 * 0.2).max(1.0) };
    let early_until = secs as f64 * 0.25;
    let late_from = secs as f64 * 0.6;

    // --- The pair matrix: the four inter pairs plus the CUBIC baseline.
    let pairs: Vec<(CcaKind, CcaKind)> =
        INTER_PAIRS.iter().copied().chain([(CcaKind::Cubic, CcaKind::Cubic)]).collect();
    let mut rows: Vec<PairRow> = Vec::new();
    let mut bbr1_shape = None;
    for (cca1, cca2) in pairs {
        let cfg = ScenarioConfig::builder(cca1, cca2, AqmKind::Fifo, 2.0, bw, &opts)
            .duration(SimDuration::from_secs(secs))
            .build()
            .unwrap_or_else(|e| fail(format!("invalid scenario: {e}")));
        let outcome = Runner::new(&cfg)
            .seed(seed)
            .recorder(Recording::flows_only().out_dir(out_dir).svg(false))
            .run()
            .unwrap_or_else(|e| fail(format!("run failed ({}): {e}", cfg.label())));
        let d = outcome.analysis(window_s).unwrap_or_else(|e| fail(format!("analysis: {e}")));
        if d.t.is_empty() {
            fail(format!("no complete {window_ms}ms windows in a {secs}s run"));
        }

        let mean_jain = d.jain.iter().sum::<f64>() / d.jain.len() as f64;
        let shape = suppression_shape(&d, 1, early_until, late_from)
            .unwrap_or_else(|| fail("early/late spans hold no windows".into()));
        let row = PairRow {
            label: format!("{} vs {}", cca1.pretty(), cca2.pretty()),
            mean_jain,
            final_jain: *d.jain.last().unwrap(),
            convergence_s: convergence_time(&d, &spec),
            cubic_early: shape.early_share,
            cubic_late: shape.late_share,
            ratio_last: throughput_ratio(&d, 0, 1).map_or(f64::INFINITY, |r| r.last),
        };
        println!(
            "dynamics: pair={}-{} mean_jain={:.4} final_jain={:.4} convergence={} \
             cca2_share_early={:.4} cca2_share_late={:.4}",
            cca1,
            cca2,
            row.mean_jain,
            row.final_jain,
            row.convergence_s.map_or("none".to_string(), |t| format!("{t:.2}s")),
            row.cubic_early,
            row.cubic_late,
        );
        if (cca1, cca2) == (CcaKind::BbrV1, CcaKind::Cubic) {
            bbr1_shape = Some(shape);
        }

        // J(t) and windowed-share figures for this pair.
        let key = cfg.cache_key(seed);
        write_chart(
            out_dir.join(format!("{key}.jain.svg")),
            &ChartSpec {
                title: format!("J(t), {}ms windows — {}", window_ms, cfg.label()),
                x_label: "time (s)".into(),
                y_label: "Jain index".into(),
                y_from_zero: true,
                ..ChartSpec::default()
            },
            &[Series { name: "J(t)".into(), points: d.jain_series() }],
        )
        .unwrap_or_else(|e| fail(format!("write J(t) figure: {e}")));
        let share_series: Vec<Series> = (0..d.n_groups())
            .map(|g| Series {
                name: format!("group {g} ({})", if g == 0 { cca1 } else { cca2 }),
                points: d.share_series(g),
            })
            .collect();
        write_chart(
            out_dir.join(format!("{key}.shares.svg")),
            &ChartSpec {
                title: format!("windowed shares — {}", cfg.label()),
                x_label: "time (s)".into(),
                y_label: "share of goodput".into(),
                y_from_zero: true,
                ..ChartSpec::default()
            },
            &share_series,
        )
        .unwrap_or_else(|e| fail(format!("write share figure: {e}")));
        rows.push(row);
    }

    // --- Late joiner: CUBIC joins a CUBIC incumbent at +offset.
    let offset_s = offset_ms as f64 / 1e3;
    let late_cfg =
        ScenarioConfig::builder(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, bw, &opts)
            .duration(SimDuration::from_secs(secs))
            .start_offset_ms(vec![0, offset_ms])
            .build()
            .unwrap_or_else(|e| fail(format!("invalid late-join scenario: {e}")));
    let late_outcome = Runner::new(&late_cfg)
        .seed(seed)
        .recorder(Recording::flows_only().out_dir(out_dir).svg(false))
        .run()
        .unwrap_or_else(|e| fail(format!("late-join run failed: {e}")));
    // Late-join responsiveness is judged on 1 s windows (noise in 250 ms
    // windows is ±0.08 of share, which would defeat any sustained-hold
    // criterion) and ε=0.3: the joiner must claim 70% of fair share.
    let late_window = window_s.max(1.0);
    let late_d =
        late_outcome.analysis(late_window).unwrap_or_else(|e| fail(format!("analysis: {e}")));
    let late_spec = ConvergenceSpec { epsilon: 0.3, hold_s: 1.0 };
    let join = late_joiner_response(&late_d, 1, offset_s, &late_spec);
    println!(
        "dynamics: late_join=cubic-cubic offset={offset_s:.1}s time_to_fair={} concession={:.3}",
        join.time_to_fair_share_s.map_or("none".to_string(), |t| format!("{t:.2}s")),
        join.concession,
    );
    write_chart(
        out_dir.join(format!("{}.shares.svg", late_cfg.cache_key(seed))),
        &ChartSpec {
            title: format!("late joiner (+{offset_s:.1}s) — {}", late_cfg.label()),
            x_label: "time (s)".into(),
            y_label: "share of goodput".into(),
            y_from_zero: true,
            ..ChartSpec::default()
        },
        &[
            Series { name: "incumbent".into(), points: late_d.share_series(0) },
            Series { name: "late joiner".into(), points: late_d.share_series(1) },
        ],
    )
    .unwrap_or_else(|e| fail(format!("write late-join figure: {e}")));

    // --- Markdown report.
    let mut md = String::new();
    md.push_str("# Fairness dynamics\n\n");
    md.push_str(&format!(
        "bottleneck {} · {secs}s · seed {seed} · {window_ms}ms windows · \
         convergence ε={} hold={}s\n\n",
        bw_label(bw),
        spec.epsilon,
        spec.hold_s,
    ));
    md.push_str(
        "| pair | mean J(t) | final J | convergence | g1 share early | g1 share late | g0/g1 final |\n",
    );
    md.push_str("|---|---|---|---|---|---|---|\n");
    for r in &rows {
        md.push_str(&format!(
            "| {} | {:.4} | {:.4} | {} | {:.3} | {:.3} | {:.2} |\n",
            r.label,
            r.mean_jain,
            r.final_jain,
            r.convergence_s.map_or("never".to_string(), |t| format!("{t:.2}s")),
            r.cubic_early,
            r.cubic_late,
            r.ratio_last,
        ));
    }
    md.push_str(&format!(
        "\n## Late joiner (CUBIC vs CUBIC, +{offset_s:.1}s)\n\n\
         time to ≥{:.0}% of fair share: {} · incumbent concession: {:.1}%\n",
        (1.0 - late_spec.epsilon) * 100.0,
        join.time_to_fair_share_s.map_or("never".to_string(), |t| format!("{t:.2}s")),
        join.concession * 100.0,
    ));
    std::fs::write(out_dir.join("dynamics.md"), &md)
        .unwrap_or_else(|e| fail(format!("write report: {e}")));

    // --- The two checkable claims.
    let shape = bbr1_shape.expect("BBRv1-vs-CUBIC is always in the matrix");
    // Thresholds pinned on the 100 Mbps / 10 s / 62 ms dumbbell, seeds 1–5:
    // early CUBIC share 0.41–0.43, late 0.71–0.72 across all of them.
    let suppressed = shape.early_share < 0.9 * shape.fair_share;
    let recovers = shape.late_share > shape.early_share + 0.05;
    let late_ok = join.time_to_fair_share_s.is_some();
    let shape_ok = suppressed && recovers;
    println!(
        "dynamics: pairs={} shape={} late_join={}",
        rows.len(),
        if shape_ok { "ok" } else { "fail" },
        if late_ok { "ok" } else { "fail" },
    );
    if !shape_ok {
        eprintln!(
            "dynamics: BBRv1-vs-CUBIC lost the paper's shape: early CUBIC share {:.3} \
             (want < {:.3}), late {:.3} (want > early + 0.05)",
            shape.early_share,
            0.9 * shape.fair_share,
            shape.late_share
        );
        std::process::exit(1);
    }
    if !late_ok {
        eprintln!("dynamics: late CUBIC joiner never reached fair share against a CUBIC incumbent");
        std::process::exit(1);
    }
}
