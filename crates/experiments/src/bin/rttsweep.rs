//! RTT sensitivity sweep — the paper's "future work: different RTTs",
//! implemented. Holds the Table 1 knobs fixed (FIFO, 2 BDP, 100 Mbps) and
//! sweeps the end-to-end RTT, reporting the BBRv1-vs-CUBIC split, Jain
//! index and utilization.
//!
//! `cargo run --release -p elephants-experiments --bin rttsweep`

use elephants_experiments::prelude::*;
use elephants_netsim::SimDuration;

fn main() {
    let cli = Cli::parse();
    let mut t = TextTable::new(vec!["rtt_ms", "bbr1_mbps", "cubic_mbps", "jain", "phi"]);
    for rtt_ms in [12u64, 32, 62, 124, 248] {
        // Scale the run length with the RTT so each sees a similar number
        // of round trips.
        let cfg = ScenarioConfig::builder(
            CcaKind::BbrV1,
            CcaKind::Cubic,
            AqmKind::Fifo,
            2.0,
            100_000_000,
            &cli.opts,
        )
        .rtt_ms(rtt_ms)
        .duration(SimDuration::from_millis((rtt_ms * 800).max(20_000)))
        .build()
        .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        let mut runner = Runner::new(&cfg).seed(cli.opts.seed);
        if rtt_ms == 62 {
            if let Some(rec) = cli.record.clone() {
                runner = runner.recorder(rec);
            }
        }
        let r = runner
            .run()
            .unwrap_or_else(|e| panic!("run failed ({}): {e}", cfg.label()))
            .into_first();
        t.row(vec![
            format!("{rtt_ms}"),
            format!("{:.1}", r.sender_mbps[0]),
            format!("{:.1}", r.sender_mbps.get(1).copied().unwrap_or(0.0)),
            format!("{:.3}", r.jain),
            format!("{:.3}", r.utilization),
        ]);
    }
    println!("BBRv1 vs CUBIC across RTTs (FIFO, 2 BDP, 100 Mbps)\n");
    println!("{}", t.render());
    if let Err(e) = t.write_csv(format!("{}/rttsweep/rttsweep.csv", cli.out_dir)) {
        eprintln!("warning: failed to write CSV: {e}");
    }
}
