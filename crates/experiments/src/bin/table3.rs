//! Regenerates paper Table 3: Avg(phi), Avg(RR), Avg(J) per CCA-pair x AQM.
//!
//! By default this averages over the full queue-length set and the selected
//! bandwidths; pass `--bw` to restrict the sweep.

use elephants_experiments::prelude::*;

fn main() {
    let cli = Cli::parse();
    let rows = table3(&cli.opts, &cli.cache, &cli.bws, &PAPER_QUEUES_BDP);
    let t = render_table3(&rows);
    println!("Overall performance comparison (paper Table 3)");
    println!("{}", t.render());
    if let Err(e) = t.write_csv(format!("{}/table3/table3.csv", cli.out_dir)) {
        eprintln!("warning: failed to write CSV: {e}");
    } else {
        println!("CSV written under {}/table3/", cli.out_dir);
    }
}
