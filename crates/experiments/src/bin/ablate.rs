//! Ablations of design choices DESIGN.md calls out:
//!
//! 1. CUBIC HyStart on/off — startup retransmission cost vs shallow buffers.
//! 2. BBRv2 loss threshold (2% vs 10%) — the FIFO/RED asymmetry lever.
//! 3. RED gentle vs non-gentle — forced-drop cliff behaviour.
//!
//! `cargo run --release -p elephants-experiments --bin ablate`

use elephants_aqm::{Red, RedConfig};
use elephants_cca::{BbrV2, BbrV2Config, Cubic, CubicConfig, CongestionControl};
use elephants_experiments::TextTable;
use elephants_netsim::prelude::*;
use elephants_tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};

fn run_with(
    cca: Box<dyn CongestionControl>,
    aqm: Box<dyn Aqm>,
    secs: u64,
) -> (f64, u64) {
    let bw = Bandwidth::from_mbps(100);
    let spec = DumbbellSpec::paper(bw);
    let mut topo = spec.build();
    topo.set_bottleneck_aqm(aqm);
    let mut sim = Simulator::new(
        topo,
        SimConfig {
            duration: SimDuration::from_secs(secs),
            warmup: SimDuration::from_secs(secs / 4),
            max_events: u64::MAX,
        },
        11,
    );
    let tx = TcpSender::new(SenderConfig::default(), spec.receiver(0), cca);
    let rx = TcpReceiver::new(ReceiverConfig::default(), spec.sender(0));
    let f = sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
    let s = sim.run();
    (
        s.flows[f.0 as usize].window_goodput_bps(s.window) / 1e6,
        s.flows[f.0 as usize].sender.retransmits,
    )
}

fn small_fifo() -> Box<dyn Aqm> {
    let bdp = elephants_netsim::bdp_bytes(Bandwidth::from_mbps(100), SimDuration::from_millis(62));
    Box::new(DropTail::new(bdp / 2))
}

fn main() {
    let mut t = TextTable::new(vec!["ablation", "variant", "goodput_mbps", "retransmits"]);

    for hystart in [true, false] {
        let cca = Box::new(Cubic::new(CubicConfig { hystart, ..Default::default() }, 8900));
        let (g, r) = run_with(cca, small_fifo(), 20);
        t.row(vec![
            "cubic_hystart".to_string(),
            if hystart { "on" } else { "off" }.to_string(),
            format!("{g:.1}"),
            format!("{r}"),
        ]);
    }

    for thresh in [0.02, 0.10] {
        let cca = Box::new(BbrV2::new(BbrV2Config { loss_thresh: thresh, ..Default::default() }, 8900));
        let (g, r) = run_with(cca, small_fifo(), 20);
        t.row(vec![
            "bbr2_loss_thresh".to_string(),
            format!("{thresh}"),
            format!("{g:.1}"),
            format!("{r}"),
        ]);
    }

    for gentle in [false, true] {
        let mut cfg = RedConfig::tc_defaults(1_550_000, 100_000_000, 8900);
        cfg.gentle = gentle;
        let cca = Box::new(Cubic::new(CubicConfig::default(), 8900));
        let (g, r) = run_with(cca, Box::new(Red::new(cfg)), 20);
        t.row(vec![
            "red_gentle".to_string(),
            if gentle { "gentle" } else { "cliff" }.to_string(),
            format!("{g:.1}"),
            format!("{r}"),
        ]);
    }

    println!("Design-choice ablations (single flow, 100 Mbps, 62 ms RTT)\n");
    println!("{}", t.render());
    if let Err(e) = t.write_csv("results/ablate/ablate.csv") {
        eprintln!("warning: failed to write CSV: {e}");
    }
}
