//! Runs the full 810-configuration grid (Table 1) and writes a summary CSV.
//!
//! Uses the fault-tolerant sweep: a failing cell (panic, event budget,
//! wall-clock) is recorded and reported instead of aborting the other
//! cells, and the exit status stays 0 so long CI grids degrade gracefully.
//! Optional `--loss` / `--flap` knobs inject bottleneck anomalies into
//! every cell.

use elephants_experiments::prelude::*;

fn main() {
    let cli = Cli::parse();
    let mut grid = paper_grid(&cli.opts);
    grid.retain(|c| cli.bws.contains(&c.bw_bps));
    if let Some(n) = cli.limit {
        grid.truncate(n);
    }
    for cfg in &mut grid {
        if let Err(e) = cli.apply_faults(cfg) {
            eprintln!("invalid fault configuration: {e}");
            std::process::exit(2);
        }
    }
    eprintln!("sweeping {} configurations x {} repeats", grid.len(), cli.opts.repeats);
    let out = try_sweep_with_progress(&grid, cli.opts.repeats, &cli.cache, |done, total| {
        if done % 25 == 0 || done == total {
            eprintln!("  {done}/{total}");
        }
    });
    let mut t = TextTable::new(vec![
        "cca1", "cca2", "aqm", "queue_bdp", "bw", "s1_mbps", "s2_mbps", "jain", "phi", "retx", "rtos",
    ]);
    for r in &out.results {
        t.row(vec![
            r.config.cca1.to_string(),
            r.config.cca2.to_string(),
            r.config.aqm.to_string(),
            format!("{}", r.config.queue_bdp),
            bw_label(r.config.bw_bps),
            format!("{:.2}", r.sender_mbps.first().copied().unwrap_or(0.0)),
            format!("{:.2}", r.sender_mbps.get(1).copied().unwrap_or(0.0)),
            format!("{:.3}", r.jain),
            format!("{:.3}", r.utilization),
            format!("{:.0}", r.retransmits),
            format!("{}", r.rtos),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(format!("{}/sweep/grid.csv", cli.out_dir)) {
        eprintln!("warning: failed to write CSV: {e}");
    }
    eprintln!("{}", out.summary_line());
    for f in &out.failed {
        eprintln!("  failed: ({}, seed {}): {}", f.config.label(), f.seed, f.error);
    }
}
