//! Runs the full 810-configuration grid (Table 1) and writes a summary CSV.

use elephants_experiments::prelude::*;

fn main() {
    let cli = Cli::parse();
    let mut grid = paper_grid(&cli.opts);
    grid.retain(|c| cli.bws.contains(&c.bw_bps));
    eprintln!("sweeping {} configurations x {} repeats", grid.len(), cli.opts.repeats);
    let results = sweep_with_progress(&grid, cli.opts.repeats, &cli.cache, |done, total| {
        if done % 25 == 0 || done == total {
            eprintln!("  {done}/{total}");
        }
    });
    let mut t = TextTable::new(vec![
        "cca1", "cca2", "aqm", "queue_bdp", "bw", "s1_mbps", "s2_mbps", "jain", "phi", "retx", "rtos",
    ]);
    for r in &results {
        t.row(vec![
            r.config.cca1.to_string(),
            r.config.cca2.to_string(),
            r.config.aqm.to_string(),
            format!("{}", r.config.queue_bdp),
            bw_label(r.config.bw_bps),
            format!("{:.2}", r.sender_mbps.first().copied().unwrap_or(0.0)),
            format!("{:.2}", r.sender_mbps.get(1).copied().unwrap_or(0.0)),
            format!("{:.3}", r.jain),
            format!("{:.3}", r.utilization),
            format!("{:.0}", r.retransmits),
            format!("{}", r.rtos),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(format!("{}/sweep/grid.csv", cli.out_dir)) {
        eprintln!("warning: failed to write CSV: {e}");
    }
}
