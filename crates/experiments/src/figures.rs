//! Assembly of every figure and table in the paper's evaluation (§5).
//!
//! Each `figN` function runs (or fetches from cache) exactly the grid slice
//! the corresponding paper figure draws, and renders it as text tables plus
//! CSV. The figure numbering follows the paper:
//!
//! * Fig. 2 — per-sender throughput, inter-CCA vs CUBIC, FIFO
//! * Fig. 3 — Jain index, FIFO, inter & intra, buffers 2/16 BDP
//! * Fig. 4 — per-sender throughput, inter-CCA vs CUBIC, RED
//! * Fig. 5 — Jain index, RED
//! * Fig. 6 — Jain index, FQ_CODEL
//! * Fig. 7 — overall link utilization φ, intra-CCA, all AQMs
//! * Fig. 8 — retransmissions, intra-CCA, all AQMs
//! * Table 3 — Avg(φ), Avg(RR), Avg(J) per CCA-pair × AQM

use crate::cache::RunCache;
use crate::report::{bw_label, TextTable};
use crate::svg::{ChartSpec, Series};
use crate::runner::AveragedResult;
use crate::scenario::{
    paper_pairs, RunOptions, ScenarioConfig, INTER_PAIRS, INTRA_PAIRS, PAPER_QUEUES_BDP,
};
use crate::sweep::sweep;
use elephants_aqm::AqmKind;
use elephants_cca::CcaKind;
use elephants_metrics::relative_retransmissions;

/// Buffer sizes the paper's Jain/utilization/retransmission figures plot.
pub const FIGURE_BUFFERS_BDP: [f64; 2] = [2.0, 16.0];

/// A rendered figure: human-readable text and per-table CSVs.
#[derive(Debug)]
pub struct FigureOutput {
    /// Figure id, e.g. `"fig2"`.
    pub id: &'static str,
    /// Paper-style caption.
    pub caption: String,
    /// Rendered text (all panels).
    pub text: String,
    /// `(name, table)` pairs for CSV export.
    pub tables: Vec<(String, TextTable)>,
    /// `(name, spec, series)` charts for SVG export.
    pub charts: Vec<(String, ChartSpec, Vec<Series>)>,
}

impl FigureOutput {
    /// Write every table as `results/<id>/<name>.csv`.
    pub fn write_csvs(&self, out_dir: &str) -> std::io::Result<()> {
        for (name, table) in &self.tables {
            table.write_csv(format!("{out_dir}/{}/{}.csv", self.id, name))?;
        }
        Ok(())
    }

    /// Write every chart as `results/<id>/<name>.svg`.
    pub fn write_svgs(&self, out_dir: &str) -> std::io::Result<()> {
        for (name, spec, series) in &self.charts {
            crate::svg::write_chart(format!("{out_dir}/{}/{}.svg", self.id, name), spec, series)?;
        }
        Ok(())
    }
}

fn throughput_figure(
    id: &'static str,
    aqm: AqmKind,
    opts: &RunOptions,
    cache: &RunCache,
    bws: &[u64],
) -> FigureOutput {
    let mut text = String::new();
    let mut tables = Vec::new();
    let mut charts = Vec::new();
    for &(cca1, cca2) in &INTER_PAIRS {
        for &bw in bws {
            let configs: Vec<ScenarioConfig> = PAPER_QUEUES_BDP
                .iter()
                .map(|&q| ScenarioConfig::new(cca1, cca2, aqm, q, bw, opts))
                .collect();
            let results = sweep(&configs, opts.repeats, cache);
            let mut t = TextTable::new(vec![
                "buffer_bdp".to_string(),
                format!("{}_mbps", cca1.name()),
                format!("{}_mbps", cca2.name()),
            ]);
            for r in &results {
                t.row(vec![
                    format!("{}", r.config.queue_bdp),
                    format!("{:.2}", r.sender_mbps.first().copied().unwrap_or(0.0)),
                    format!("{:.2}", r.sender_mbps.get(1).copied().unwrap_or(0.0)),
                ]);
            }
            text.push_str(&format!(
                "\n== {} vs {} @ {} ({}) ==\n{}",
                cca1.pretty(),
                cca2.pretty(),
                bw_label(bw),
                aqm,
                t.render()
            ));
            let name = format!("{}_vs_{}_{}", cca1.name(), cca2.name(), bw_label(bw));
            charts.push((
                name.clone(),
                ChartSpec {
                    title: format!("{} vs {} @ {} ({})", cca1.pretty(), cca2.pretty(), bw_label(bw), aqm),
                    x_label: "buffer (BDP)".into(),
                    y_label: "throughput (Mbps)".into(),
                    log_x: true,
                    ..Default::default()
                },
                vec![
                    Series {
                        name: cca1.pretty().into(),
                        points: results
                            .iter()
                            .map(|r| (r.config.queue_bdp, r.sender_mbps.first().copied().unwrap_or(0.0)))
                            .collect(),
                    },
                    Series {
                        name: cca2.pretty().into(),
                        points: results
                            .iter()
                            .map(|r| (r.config.queue_bdp, r.sender_mbps.get(1).copied().unwrap_or(0.0)))
                            .collect(),
                    },
                ],
            ));
            tables.push((name, t));
        }
    }
    FigureOutput {
        id,
        caption: format!(
            "Per-sender throughput of TCP variants vs CUBIC over buffer size, AQM={aqm}"
        ),
        text,
        tables,
        charts,
    }
}

/// Figure 2: per-sender throughput vs buffer size, FIFO.
pub fn fig2(opts: &RunOptions, cache: &RunCache, bws: &[u64]) -> FigureOutput {
    throughput_figure("fig2", AqmKind::Fifo, opts, cache, bws)
}

/// Figure 4: per-sender throughput vs buffer size, RED.
pub fn fig4(opts: &RunOptions, cache: &RunCache, bws: &[u64]) -> FigureOutput {
    throughput_figure("fig4", AqmKind::Red, opts, cache, bws)
}

fn jain_figure(
    id: &'static str,
    aqm: AqmKind,
    opts: &RunOptions,
    cache: &RunCache,
    bws: &[u64],
) -> FigureOutput {
    let mut text = String::new();
    let mut tables = Vec::new();
    let mut charts = Vec::new();
    for (mode, pairs) in
        [("inter", &INTER_PAIRS[..]), ("intra", &INTRA_PAIRS[..])]
    {
        for &buf in &FIGURE_BUFFERS_BDP {
            let mut t = TextTable::new(
                std::iter::once("bw".to_string())
                    .chain(pairs.iter().map(|&(a, b)| format!("{}_vs_{}", a.name(), b.name())))
                    .collect::<Vec<_>>(),
            );
            // One row per bandwidth, one column per pair.
            let mut columns: Vec<Vec<f64>> = Vec::new();
            for &(cca1, cca2) in pairs {
                let configs: Vec<ScenarioConfig> = bws
                    .iter()
                    .map(|&bw| ScenarioConfig::new(cca1, cca2, aqm, buf, bw, opts))
                    .collect();
                let results = sweep(&configs, opts.repeats, cache);
                columns.push(results.iter().map(|r| r.jain).collect());
            }
            for (i, &bw) in bws.iter().enumerate() {
                let mut row = vec![bw_label(bw)];
                for col in &columns {
                    row.push(format!("{:.3}", col[i]));
                }
                t.row(row);
            }
            text.push_str(&format!("\n== Jain index, {mode}-CCA, buffer {buf} BDP ({aqm}) ==\n{}", t.render()));
            let name = format!("{mode}_{buf}bdp");
            charts.push((
                name.clone(),
                ChartSpec {
                    title: format!("Jain index, {mode}-CCA, {buf} BDP ({aqm})"),
                    x_label: "bottleneck bandwidth (bps)".into(),
                    y_label: "Jain index".into(),
                    log_x: true,
                    ..Default::default()
                },
                pairs
                    .iter()
                    .zip(&columns)
                    .map(|(&(a, b), col)| Series {
                        name: format!("{} vs {}", a.pretty(), b.pretty()),
                        points: bws.iter().zip(col).map(|(&bw, &j)| (bw as f64, j)).collect(),
                    })
                    .collect(),
            ));
            tables.push((name, t));
        }
    }
    FigureOutput {
        id,
        caption: format!("Jain's fairness index, AQM={aqm}, inter/intra, buffers 2 & 16 BDP"),
        text,
        tables,
        charts,
    }
}

/// Figure 3: Jain index under FIFO.
pub fn fig3(opts: &RunOptions, cache: &RunCache, bws: &[u64]) -> FigureOutput {
    jain_figure("fig3", AqmKind::Fifo, opts, cache, bws)
}

/// Figure 5: Jain index under RED.
pub fn fig5(opts: &RunOptions, cache: &RunCache, bws: &[u64]) -> FigureOutput {
    jain_figure("fig5", AqmKind::Red, opts, cache, bws)
}

/// Figure 6: Jain index under FQ_CODEL.
pub fn fig6(opts: &RunOptions, cache: &RunCache, bws: &[u64]) -> FigureOutput {
    jain_figure("fig6", AqmKind::FqCodel, opts, cache, bws)
}

fn intra_metric_figure(
    id: &'static str,
    metric_name: &str,
    metric: impl Fn(&AveragedResult) -> f64,
    opts: &RunOptions,
    cache: &RunCache,
    bws: &[u64],
) -> FigureOutput {
    let mut text = String::new();
    let mut tables = Vec::new();
    let mut charts = Vec::new();
    for aqm in AqmKind::PAPER_SET {
        for &buf in &FIGURE_BUFFERS_BDP {
            let mut t = TextTable::new(
                std::iter::once("bw".to_string())
                    .chain(INTRA_PAIRS.iter().map(|&(a, _)| a.pretty().to_string()))
                    .collect::<Vec<_>>(),
            );
            let mut columns: Vec<Vec<f64>> = Vec::new();
            for &(cca, _) in &INTRA_PAIRS {
                let configs: Vec<ScenarioConfig> = bws
                    .iter()
                    .map(|&bw| ScenarioConfig::new(cca, cca, aqm, buf, bw, opts))
                    .collect();
                let results = sweep(&configs, opts.repeats, cache);
                columns.push(results.iter().map(&metric).collect());
            }
            for (i, &bw) in bws.iter().enumerate() {
                let mut row = vec![bw_label(bw)];
                for col in &columns {
                    row.push(format!("{:.3}", col[i]));
                }
                t.row(row);
            }
            text.push_str(&format!(
                "\n== {metric_name}, intra-CCA, {aqm}, buffer {buf} BDP ==\n{}",
                t.render()
            ));
            let name = format!("{}_{}bdp", aqm.name(), buf);
            charts.push((
                name.clone(),
                ChartSpec {
                    title: format!("{metric_name}, intra-CCA, {aqm}, {buf} BDP"),
                    x_label: "bottleneck bandwidth (bps)".into(),
                    y_label: metric_name.into(),
                    log_x: true,
                    ..Default::default()
                },
                INTRA_PAIRS
                    .iter()
                    .zip(&columns)
                    .map(|(&(a, _), col)| Series {
                        name: a.pretty().into(),
                        points: bws.iter().zip(col).map(|(&bw, &v)| (bw as f64, v)).collect(),
                    })
                    .collect(),
            ));
            tables.push((name, t));
        }
    }
    FigureOutput {
        id,
        caption: format!("Intra-CCA {metric_name} for FIFO, RED and FQ_CODEL at 2 & 16 BDP"),
        text,
        tables,
        charts,
    }
}

/// Figure 7: overall link utilization φ (intra-CCA).
pub fn fig7(opts: &RunOptions, cache: &RunCache, bws: &[u64]) -> FigureOutput {
    intra_metric_figure("fig7", "link utilization", |r| r.utilization, opts, cache, bws)
}

/// Figure 8: retransmissions (intra-CCA).
pub fn fig8(opts: &RunOptions, cache: &RunCache, bws: &[u64]) -> FigureOutput {
    intra_metric_figure("fig8", "retransmissions", |r| r.retransmits, opts, cache, bws)
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The CCA pairing.
    pub pair: (CcaKind, CcaKind),
    /// The AQM.
    pub aqm: AqmKind,
    /// Average link utilization across the sub-grid.
    pub avg_phi: f64,
    /// Average relative retransmissions vs CUBIC-CUBIC.
    pub avg_rr: f64,
    /// Average Jain index.
    pub avg_jain: f64,
}

/// Table 3: overall averages per CCA-pair × AQM over queues × bandwidths.
pub fn table3(opts: &RunOptions, cache: &RunCache, bws: &[u64], queues: &[f64]) -> Vec<Table3Row> {
    let pairs = paper_pairs();
    let mut rows = Vec::new();
    for aqm in [AqmKind::Fifo, AqmKind::Red, AqmKind::FqCodel] {
        // CUBIC-CUBIC reference retransmissions per condition.
        let ref_configs: Vec<ScenarioConfig> = queues
            .iter()
            .flat_map(|&q| {
                bws.iter().map(move |&bw| (q, bw)).map(|(q, bw)| {
                    ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, aqm, q, bw, opts)
                })
            })
            .collect();
        let reference = sweep(&ref_configs, opts.repeats, cache);

        for &(cca1, cca2) in &pairs {
            let configs: Vec<ScenarioConfig> = queues
                .iter()
                .flat_map(|&q| {
                    bws.iter().map(move |&bw| (q, bw)).map(|(q, bw)| {
                        ScenarioConfig::new(cca1, cca2, aqm, q, bw, opts)
                    })
                })
                .collect();
            let results = sweep(&configs, opts.repeats, cache);
            let n = results.len() as f64;
            let avg_phi = results.iter().map(|r| r.utilization).sum::<f64>() / n;
            let avg_jain = results.iter().map(|r| r.jain).sum::<f64>() / n;
            // RR per condition, then averaged (paper Eq. 4 then Avg(RR)).
            let mut rr_sum = 0.0;
            let mut rr_n = 0.0;
            for (r, ref_r) in results.iter().zip(reference.iter()) {
                let rr = relative_retransmissions(
                    r.retransmits.round() as u64,
                    ref_r.retransmits.round() as u64,
                );
                if elephants_metrics::rr_is_defined(rr) {
                    rr_sum += rr;
                    rr_n += 1.0;
                }
            }
            let avg_rr = if rr_n > 0.0 { rr_sum / rr_n } else { f64::NAN };
            rows.push(Table3Row { pair: (cca1, cca2), aqm, avg_phi, avg_rr, avg_jain });
        }
    }
    rows
}

/// Render Table 3 in the paper's layout.
pub fn render_table3(rows: &[Table3Row]) -> TextTable {
    let mut t = TextTable::new(vec!["CCA1 vs CCA2", "AQM", "Avg(phi)", "Avg(RR)", "Avg(J)"]);
    for r in rows {
        t.row(vec![
            format!("{} vs {}", r.pair.0.pretty(), r.pair.1.pretty()),
            r.aqm.name().to_string(),
            format!("{:.3}", r.avg_phi),
            format!("{:.3}", r.avg_rr),
            format!("{:.3}", r.avg_jain),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> RunOptions {
        RunOptions { repeats: 1, ..RunOptions::quick() }
    }

    #[test]
    fn fig2_structure_smoke() {
        let cache = RunCache::disabled();
        let out = fig2(&tiny_opts(), &cache, &[100_000_000]);
        // 4 inter pairs × 1 bw = 4 tables, each with 6 buffer rows.
        assert_eq!(out.tables.len(), 4);
        assert!(out.tables.iter().all(|(_, t)| t.len() == 6));
        assert!(out.text.contains("BBRv1 vs CUBIC"));
    }

    #[test]
    fn fig3_structure_smoke() {
        let cache = RunCache::disabled();
        let out = fig3(&tiny_opts(), &cache, &[100_000_000]);
        // inter/intra × 2 buffers = 4 tables, each with a matching chart.
        assert_eq!(out.tables.len(), 4);
        assert_eq!(out.charts.len(), 4);
        // Jain values plotted must be in (0, 1].
        for (_, _, series) in &out.charts {
            for s in series {
                for &(_, j) in &s.points {
                    assert!(j > 0.0 && j <= 1.0, "J={j}");
                }
            }
        }
    }

    #[test]
    fn figure_charts_mirror_tables() {
        let cache = RunCache::disabled();
        let out = fig2(&tiny_opts(), &cache, &[100_000_000]);
        assert_eq!(out.charts.len(), out.tables.len());
        // Throughput charts carry one series per sender.
        for (_, _, series) in &out.charts {
            assert_eq!(series.len(), 2);
            assert_eq!(series[0].points.len(), 6); // six buffer sizes
        }
        // SVG rendering works for every chart.
        for (_, spec, series) in &out.charts {
            let svg = crate::svg::line_chart(spec, series);
            assert!(svg.contains("</svg>"));
        }
    }

    #[test]
    fn table3_has_27_rows() {
        let cache = RunCache::disabled();
        let rows = table3(&tiny_opts(), &cache, &[100_000_000], &[1.0]);
        assert_eq!(rows.len(), 27); // 9 pairs × 3 AQMs
        // CUBIC vs CUBIC must have RR exactly 1.
        for r in rows.iter().filter(|r| r.pair == (CcaKind::Cubic, CcaKind::Cubic)) {
            assert!((r.avg_rr - 1.0).abs() < 1e-9, "{:?}", r);
        }
        let t = render_table3(&rows);
        assert_eq!(t.len(), 27);
    }
}
