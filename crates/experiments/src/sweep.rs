//! Parallel execution of scenario grids, with graceful degradation.
//!
//! Every `(config, seed)` run is an independent deterministic simulation, so
//! the grid is embarrassingly parallel: flatten configs × seeds into one
//! work list and hand it to the executor in [`crate::par`]. Each worker owns
//! its simulator — no shared mutable state, no locks (the "share nothing"
//! idiom from the hpc-parallel guides).
//!
//! The fault-tolerant entry points ([`try_sweep`],
//! [`try_sweep_with_progress`]) never abort the grid: a panicking cell is
//! isolated by [`crate::par::par_try_map`], a runaway cell is stopped by the
//! runner's event-budget/wall-clock watchdogs, and each failure is recorded
//! as a [`FailedRun`] in the [`SweepOutput`]. Every failure whose
//! [`RunError::is_retryable`] holds — the environment-dependent classes:
//! wall-clock overruns (machine load) and Io (filesystem) — gets a single
//! bounded retry before being reported; deterministic classes (panic,
//! event budget, invalid config) would fail identically and are not
//! retried. The legacy [`sweep`]/[`sweep_with_progress`] wrappers keep the
//! all-or-nothing contract the figure binaries want.

use crate::cache::RunCache;
use crate::par::par_try_map_with_workers;
use crate::runner::{average_runs, AveragedResult, RunError, RunResult, DEFAULT_WALL_LIMIT};
use crate::scenario::ScenarioConfig;
use elephants_json::impl_json_struct;

/// One `(config, seed)` cell that did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedRun {
    /// The scenario that failed.
    pub config: ScenarioConfig,
    /// The seed that failed.
    pub seed: u64,
    /// Why.
    pub error: RunError,
}

impl_json_struct!(FailedRun { config, seed, error });

/// Everything a fault-tolerant sweep produces.
#[derive(Debug, Clone)]
pub struct SweepOutput {
    /// Averages for every config with at least one successful run, in
    /// input order. A config whose every seed failed appears only in
    /// `failed`.
    pub results: Vec<AveragedResult>,
    /// Every failed `(config, seed)` cell, in work order.
    pub failed: Vec<FailedRun>,
    /// Retries attempted for retryable-class failures (wall-clock, Io).
    pub retried: u64,
    /// Cache write failures observed by *this sweep's* cache instance
    /// (zero when the sweep ran without a cache, e.g. in the generic test
    /// seam). Process-wide aggregates remain available via
    /// [`crate::cache::cache_put_errors`].
    pub cache_put_errors: u64,
    /// Unparsable cache entries quarantined by this sweep's cache instance
    /// (same scoping as `cache_put_errors`).
    pub cache_quarantined: u64,
}

impl SweepOutput {
    /// One-line health summary for sweep binaries and logs.
    pub fn summary_line(&self) -> String {
        format!(
            "configs_ok: {}  failed_cells: {}  retried: {}  cache_put_errors: {}  cache_quarantined: {}",
            self.results.len(),
            self.failed.len(),
            self.retried,
            self.cache_put_errors,
            self.cache_quarantined,
        )
    }
}

fn work_list(configs: &[ScenarioConfig], repeats: u32) -> Vec<(usize, u64)> {
    configs
        .iter()
        .enumerate()
        .flat_map(|(i, cfg)| (0..repeats).map(move |r| (i, cfg.seed + r as u64)))
        .collect()
}

/// The engine under every sweep entry point: run the work list through the
/// panic-isolating executor, retry wall-clock failures once, regroup.
///
/// Generic over the runner so tests can inject failing cells; production
/// callers go through [`try_sweep`], which plugs in the cached runner.
fn try_sweep_impl<F>(
    configs: &[ScenarioConfig],
    repeats: u32,
    workers: usize,
    runner: F,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> SweepOutput
where
    F: Fn(&ScenarioConfig, u64) -> Result<RunResult, RunError> + Sync,
{
    let repeats = repeats.max(1);
    let work = work_list(configs, repeats);
    let total = work.len();
    let counter = std::sync::atomic::AtomicUsize::new(0);

    let run_one = |&(i, seed): &(usize, u64)| {
        let out = runner(&configs[i], seed);
        if let Some(progress) = progress {
            let done = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            progress(done, total);
        }
        out
    };

    // First pass: a panic inside the runner becomes Err(payload) for that
    // cell; everything else keeps running.
    let mut outcomes: Vec<Result<RunResult, RunError>> =
        par_try_map_with_workers(&work, workers, run_one)
            .into_iter()
            .map(|r| match r {
                Ok(inner) => inner,
                Err(payload) => Err(RunError::panic(payload)),
            })
            .collect();

    // Single bounded retry for every retryable failure class: wall-clock
    // overruns depend on machine load and Io on the filesystem, so one
    // more attempt is cheap and often enough. Deterministic failures
    // (panic, event budget, invalid config) would fail identically and
    // are not retried.
    let retry_idx: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.as_ref().err().is_some_and(|e| e.is_retryable()))
        .map(|(idx, _)| idx)
        .collect();
    let retried = retry_idx.len() as u64;
    if !retry_idx.is_empty() {
        let retry_work: Vec<(usize, u64)> = retry_idx.iter().map(|&idx| work[idx]).collect();
        let second: Vec<Result<RunResult, RunError>> =
            par_try_map_with_workers(&retry_work, workers, run_one)
                .into_iter()
                .map(|r| match r {
                    Ok(inner) => inner,
                    Err(payload) => Err(RunError::panic(payload)),
                })
                .collect();
        for (&idx, outcome) in retry_idx.iter().zip(second) {
            outcomes[idx] = outcome;
        }
    }

    // Regroup by config, preserving seed order; collect failures in work
    // order.
    let mut grouped: Vec<Vec<RunResult>> =
        vec![Vec::with_capacity(repeats as usize); configs.len()];
    let mut failed: Vec<FailedRun> = Vec::new();
    for (&(i, seed), outcome) in work.iter().zip(outcomes) {
        match outcome {
            Ok(run) => grouped[i].push(run),
            Err(error) => {
                failed.push(FailedRun { config: configs[i].clone(), seed, error })
            }
        }
    }
    let results = configs
        .iter()
        .zip(grouped)
        .filter(|(_, runs)| !runs.is_empty())
        .map(|(cfg, runs)| average_runs(cfg.clone(), runs))
        .collect();
    SweepOutput {
        results,
        failed,
        retried,
        // The generic engine has no cache; the cached wrappers fill these
        // from their instance's counters after the sweep finishes.
        cache_put_errors: 0,
        cache_quarantined: 0,
    }
}

/// Run every config for `repeats` seeds, in parallel, through the cache,
/// degrading gracefully: failed cells are recorded, not fatal.
pub fn try_sweep(configs: &[ScenarioConfig], repeats: u32, cache: &RunCache) -> SweepOutput {
    try_sweep_with_workers(configs, repeats, cache, 0)
}

/// [`try_sweep`] with an explicit worker count (`0` means the default).
///
/// The output must not depend on `workers`: runs are independent and
/// reassembled in input order, so any thread count yields byte-identical
/// results — the determinism suite pins this for faulted scenarios.
pub fn try_sweep_with_workers(
    configs: &[ScenarioConfig],
    repeats: u32,
    cache: &RunCache,
    workers: usize,
) -> SweepOutput {
    let mut out = try_sweep_impl(
        configs,
        repeats,
        workers,
        |cfg, seed| cache.run_checked(cfg, seed, DEFAULT_WALL_LIMIT),
        None,
    );
    // Instance counters, not the process-wide aggregates: a concurrent
    // sweep (or parallel test) must not leak its incidents into this
    // sweep's summary.
    out.cache_put_errors = cache.put_errors();
    out.cache_quarantined = cache.quarantined();
    out
}

/// Progress-reporting fault-tolerant sweep: calls `progress(done, total)`
/// as runs finish.
pub fn try_sweep_with_progress(
    configs: &[ScenarioConfig],
    repeats: u32,
    cache: &RunCache,
    progress: impl Fn(usize, usize) + Sync,
) -> SweepOutput {
    let mut out = try_sweep_impl(
        configs,
        repeats,
        0,
        |cfg, seed| cache.run_checked(cfg, seed, DEFAULT_WALL_LIMIT),
        Some(&progress),
    );
    out.cache_put_errors = cache.put_errors();
    out.cache_quarantined = cache.quarantined();
    out
}

/// Run every config for `repeats` seeds, in parallel, through the cache.
///
/// Results come back in the same order as `configs`.
///
/// # Panics
/// Panics if any cell fails — figure assembly needs the full grid. Use
/// [`try_sweep`] for graceful degradation.
pub fn sweep(configs: &[ScenarioConfig], repeats: u32, cache: &RunCache) -> Vec<AveragedResult> {
    let out = try_sweep(configs, repeats, cache);
    assert_failures_empty(&out);
    out.results
}

/// Progress-reporting sweep: calls `progress(done, total)` as runs finish.
///
/// # Panics
/// Panics if any cell fails, like [`sweep`].
pub fn sweep_with_progress(
    configs: &[ScenarioConfig],
    repeats: u32,
    cache: &RunCache,
    progress: impl Fn(usize, usize) + Sync,
) -> Vec<AveragedResult> {
    let out = try_sweep_with_progress(configs, repeats, cache, progress);
    assert_failures_empty(&out);
    out.results
}

fn assert_failures_empty(out: &SweepOutput) {
    if let Some(first) = out.failed.first() {
        panic!(
            "{} cell(s) failed; first: ({}, seed {}): {}",
            out.failed.len(),
            first.config.label(),
            first.seed,
            first.error,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RunErrorKind, Runner};
    use crate::scenario::{RunOptions, ScenarioConfig};
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cfgs() -> Vec<ScenarioConfig> {
        let opts = RunOptions::quick();
        vec![
            ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000, &opts),
            ScenarioConfig::new(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000, &opts),
        ]
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let cache = RunCache::disabled();
        let results = sweep(&cfgs(), 1, &cache);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].config.cca1, CcaKind::Cubic);
        assert_eq!(results[1].config.cca1, CcaKind::Reno);
        // Parallel result equals a direct serial run (determinism).
        let serial = Runner::new(&cfgs()[0]).run().unwrap().into_first();
        assert_eq!(results[0].runs[0].events, serial.events);
    }

    #[test]
    fn progress_counts_every_run() {
        let cache = RunCache::disabled();
        let n = std::sync::atomic::AtomicUsize::new(0);
        let _ = sweep_with_progress(&cfgs(), 2, &cache, |_, total| {
            assert_eq!(total, 4);
            n.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    /// The acceptance scenario: one panicking cell, one event-budget cell,
    /// the rest healthy. The sweep completes every remaining cell and
    /// reports exactly the two failures with their causes.
    #[test]
    fn one_panic_and_one_budget_cell_degrade_gracefully() {
        let opts = RunOptions::quick();
        let mut configs = vec![
            ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000, &opts),
            ScenarioConfig::new(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000, &opts),
            ScenarioConfig::new(CcaKind::Reno, CcaKind::Reno, AqmKind::Fifo, 1.0, 100_000_000, &opts),
        ];
        // Cell 1 exceeds a deliberately tiny event budget (a real watchdog
        // trip, not an injected error).
        configs[1].max_events = 1_000;

        let out = try_sweep_impl(
            &configs,
            1,
            0,
            |cfg, seed| {
                if cfg.cca1 == CcaKind::Cubic {
                    panic!("injected poison for {}", cfg.label());
                }
                Runner::new(cfg).seed(seed).run().map(crate::runner::RunOutcome::into_first)
            },
            None,
        );

        assert_eq!(out.failed.len(), 2, "exactly two FailedRun entries: {:?}", out.failed);
        let panic_fail =
            out.failed.iter().find(|f| f.error.kind == RunErrorKind::Panic).expect("panic cell");
        assert!(panic_fail.error.detail.contains("injected poison"), "{}", panic_fail.error);
        let budget_fail = out
            .failed
            .iter()
            .find(|f| f.error.kind == RunErrorKind::EventBudget)
            .expect("budget cell");
        assert!(budget_fail.error.detail.contains("event budget"), "{}", budget_fail.error);
        // The healthy cell completed.
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].config.cca1, CcaKind::Reno);
        assert_eq!(out.results[0].config.cca2, CcaKind::Reno);
        assert_eq!(out.retried, 0, "neither class is retryable");
    }

    #[test]
    fn wall_clock_failures_get_one_retry() {
        let opts = RunOptions::quick();
        let configs = vec![ScenarioConfig::new(
            CcaKind::Reno,
            CcaKind::Reno,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &opts,
        )];
        let attempts = AtomicU64::new(0);
        let out = try_sweep_impl(
            &configs,
            1,
            0,
            |cfg, seed| {
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    // Transient overload on the first attempt only.
                    Err(RunError {
                        kind: RunErrorKind::WallClock,
                        detail: "simulated transient stall".to_string(),
                    })
                } else {
                    Runner::new(cfg).seed(seed).run().map(crate::runner::RunOutcome::into_first)
                }
            },
            None,
        );
        assert_eq!(out.retried, 1);
        assert!(out.failed.is_empty(), "retry must clear the transient failure");
        assert_eq!(out.results.len(), 1);
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn transient_io_failures_get_one_retry() {
        let opts = RunOptions::quick();
        let configs = vec![ScenarioConfig::new(
            CcaKind::Reno,
            CcaKind::Reno,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &opts,
        )];
        let attempts = AtomicU64::new(0);
        let out = try_sweep_impl(
            &configs,
            1,
            0,
            |cfg, seed| {
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    // e.g. a record write racing a disk-full blip.
                    Err(RunError {
                        kind: RunErrorKind::Io,
                        detail: "simulated transient write failure".to_string(),
                    })
                } else {
                    Runner::new(cfg).seed(seed).run().map(crate::runner::RunOutcome::into_first)
                }
            },
            None,
        );
        assert_eq!(out.retried, 1, "Io is retryable and must be retried");
        assert!(out.failed.is_empty(), "retry must clear the transient Io failure");
        assert_eq!(out.results.len(), 1);
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn persistent_io_failure_is_recorded_after_its_single_retry() {
        let opts = RunOptions::quick();
        let configs = vec![ScenarioConfig::new(
            CcaKind::Reno,
            CcaKind::Reno,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &opts,
        )];
        let attempts = AtomicU64::new(0);
        let out = try_sweep_impl(
            &configs,
            1,
            0,
            |_cfg, _seed| {
                attempts.fetch_add(1, Ordering::Relaxed);
                Err(RunError {
                    kind: RunErrorKind::Io,
                    detail: "simulated persistent write failure".to_string(),
                })
            },
            None,
        );
        assert_eq!(out.retried, 1, "one bounded retry, then give up");
        assert_eq!(attempts.load(Ordering::Relaxed), 2, "exactly two attempts total");
        assert_eq!(out.failed.len(), 1, "persistent failure becomes a FailedRun");
        assert_eq!(out.failed[0].error.kind, RunErrorKind::Io);
        assert!(out.results.is_empty());
    }

    #[test]
    fn all_seeds_failing_drops_the_config_from_results() {
        let configs = cfgs();
        let out = try_sweep_impl(
            &configs,
            2,
            0,
            |cfg, seed| {
                if cfg.cca1 == CcaKind::Reno {
                    panic!("always fails");
                }
                Runner::new(cfg).seed(seed).run().map(crate::runner::RunOutcome::into_first)
            },
            None,
        );
        assert_eq!(out.results.len(), 1, "failed config must not appear in results");
        assert_eq!(out.failed.len(), 2, "both seeds recorded");
        // Surviving config averaged over both seeds.
        assert_eq!(out.results[0].runs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cell(s) failed")]
    fn legacy_sweep_panics_on_failure() {
        let opts = RunOptions::quick();
        let mut cfg = ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &opts,
        );
        cfg.max_events = 100; // guaranteed budget trip
        let cache = RunCache::disabled();
        let _ = sweep(&[cfg], 1, &cache);
    }
}
