//! Parallel execution of scenario grids.
//!
//! Every `(config, seed)` run is an independent deterministic simulation, so
//! the grid is embarrassingly parallel: flatten configs × seeds into one
//! work list and hand it to [`crate::par::par_map`]. Each worker owns its
//! simulator — no shared mutable state, no locks (the "share nothing"
//! idiom from the hpc-parallel guides).

use crate::cache::RunCache;
use crate::par::par_map;
use crate::runner::{average_runs, AveragedResult, RunResult};
use crate::scenario::ScenarioConfig;

/// Run every config for `repeats` seeds, in parallel, through the cache.
///
/// Results come back in the same order as `configs`.
pub fn sweep(configs: &[ScenarioConfig], repeats: u32, cache: &RunCache) -> Vec<AveragedResult> {
    let repeats = repeats.max(1);
    // Flatten (config, seed) pairs for maximal parallelism.
    let work: Vec<(usize, u64)> = configs
        .iter()
        .enumerate()
        .flat_map(|(i, cfg)| (0..repeats).map(move |r| (i, cfg.seed + r as u64)))
        .collect();

    let runs: Vec<(usize, RunResult)> =
        par_map(&work, |&(i, seed)| (i, cache.run(&configs[i], seed)));

    // Regroup by config, preserving seed order.
    let mut grouped: Vec<Vec<RunResult>> = vec![Vec::with_capacity(repeats as usize); configs.len()];
    for (i, run) in runs {
        grouped[i].push(run);
    }
    configs
        .iter()
        .zip(grouped)
        .map(|(cfg, runs)| average_runs(*cfg, runs))
        .collect()
}

/// Progress-reporting sweep: calls `progress(done, total)` as runs finish.
pub fn sweep_with_progress(
    configs: &[ScenarioConfig],
    repeats: u32,
    cache: &RunCache,
    progress: impl Fn(usize, usize) + Sync,
) -> Vec<AveragedResult> {
    let repeats = repeats.max(1);
    let work: Vec<(usize, u64)> = configs
        .iter()
        .enumerate()
        .flat_map(|(i, cfg)| (0..repeats).map(move |r| (i, cfg.seed + r as u64)))
        .collect();
    let total = work.len();
    let counter = std::sync::atomic::AtomicUsize::new(0);

    let runs: Vec<(usize, RunResult)> = par_map(&work, |&(i, seed)| {
        let out = (i, cache.run(&configs[i], seed));
        let done = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        progress(done, total);
        out
    });

    let mut grouped: Vec<Vec<RunResult>> = vec![Vec::with_capacity(repeats as usize); configs.len()];
    for (i, run) in runs {
        grouped[i].push(run);
    }
    configs
        .iter()
        .zip(grouped)
        .map(|(cfg, runs)| average_runs(*cfg, runs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{RunOptions, ScenarioConfig};
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;

    fn cfgs() -> Vec<ScenarioConfig> {
        let opts = RunOptions::quick();
        vec![
            ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000, &opts),
            ScenarioConfig::new(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000, &opts),
        ]
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let cache = RunCache::disabled();
        let results = sweep(&cfgs(), 1, &cache);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].config.cca1, CcaKind::Cubic);
        assert_eq!(results[1].config.cca1, CcaKind::Reno);
        // Parallel result equals a direct serial run (determinism).
        let serial = crate::runner::run_scenario(&cfgs()[0], cfgs()[0].seed);
        assert_eq!(results[0].runs[0].events, serial.events);
    }

    #[test]
    fn progress_counts_every_run() {
        let cache = RunCache::disabled();
        let n = std::sync::atomic::AtomicUsize::new(0);
        let _ = sweep_with_progress(&cfgs(), 2, &cache, |_, total| {
            assert_eq!(total, 4);
            n.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), 4);
    }
}
