//! Time-resolved experiment traces — the study's "dataset" output.
//!
//! The paper publishes its raw iperf3 logs so others can re-analyze the
//! runs; it also lists "capture detailed router logs" as future work. This
//! module provides both for the simulated study: [`run_scenario_traced`]
//! steps the simulation on a fixed interval (via `Simulator::run_until`,
//! so the packet-level schedule is identical to an untraced run) and
//! samples
//!
//! * per-sender delivered bytes (iperf3-style interval throughput),
//! * bottleneck queue depth in packets and bytes (the "router log"),
//! * cumulative drops and retransmissions.
//!
//! Traces serialize to JSON for external analysis.
//!
//! Tracing is deliberately **dumbbell-only**: it reproduces the paper's
//! published-log format, which is defined for the two-sender testbed. A
//! config carrying a non-default [`TopologySpec`] is rejected up front;
//! multi-bottleneck time series come from the flight recorder's per-link
//! queue channel instead (`Runner::recorder` +
//! `FlightRecord::queue_series_for`).
//!
//! [`TopologySpec`]: elephants_netsim::TopologySpec

use crate::scenario::ScenarioConfig;
use elephants_aqm::build_aqm;
use elephants_cca::build_cca_seeded;
use elephants_netsim::{DumbbellSpec, SimConfig, SimDuration, SimTime, Simulator, TopologySpec};
use elephants_tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};
use elephants_workload::plan_flows;
use elephants_json::{impl_json_struct, ToJson};

/// One sampling instant.
#[derive(Debug, Clone)]
pub struct TraceSample {
    /// Sample time in seconds.
    pub t: f64,
    /// Per-sender goodput since the previous sample, Mbps.
    pub sender_mbps: Vec<f64>,
    /// Bottleneck queue depth, packets.
    pub queue_pkts: usize,
    /// Bottleneck queue depth, bytes.
    pub queue_bytes: u64,
    /// Cumulative bottleneck drops.
    pub drops: u64,
    /// Cumulative retransmissions across all flows.
    pub retransmits: u64,
}

impl_json_struct!(TraceSample { t, sender_mbps, queue_pkts, queue_bytes, drops, retransmits });

/// A full experiment trace.
#[derive(Debug, Clone)]
pub struct ScenarioTrace {
    /// The scenario that produced this trace.
    pub config: ScenarioConfig,
    /// Seed used.
    pub seed: u64,
    /// Sampling interval in seconds.
    pub interval_s: f64,
    /// The samples, in time order.
    pub samples: Vec<TraceSample>,
}

impl_json_struct!(ScenarioTrace { config, seed, interval_s, samples });

impl ScenarioTrace {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_pretty()
    }

    /// Write JSON to `path`, creating parent directories.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Peak queue depth in packets over the trace.
    pub fn peak_queue_pkts(&self) -> usize {
        self.samples.iter().map(|s| s.queue_pkts).max().unwrap_or(0)
    }

    /// Mean of the per-sample total throughput (Mbps).
    pub fn mean_total_mbps(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.sender_mbps.iter().sum::<f64>())
            .sum::<f64>()
            / self.samples.len() as f64
    }
}

/// Run a scenario while sampling the bottleneck every `interval`.
///
/// The event schedule is identical to [`crate::runner::Runner`] runs for
/// the same `(cfg, seed)` — stepping with `run_until` does not inject
/// events — so traces are faithful views of the untraced runs.
pub fn run_scenario_traced(cfg: &ScenarioConfig, seed: u64, interval: SimDuration) -> ScenarioTrace {
    assert!(!interval.is_zero(), "sampling interval must be positive");
    assert!(
        cfg.topology == TopologySpec::Dumbbell,
        "tracing is dumbbell-only (paper log format); use the flight recorder's \
         per-link queue channel for `{}`",
        cfg.topology
    );
    let bw = cfg.bandwidth();
    let spec = DumbbellSpec::paper_with_rtt(bw, cfg.rtt());
    let mut topo = spec.build();
    topo.set_bottleneck_aqm(build_aqm(cfg.aqm, cfg.queue_bytes(), cfg.bw_bps, cfg.mss, cfg.ecn, seed));

    let sim_cfg = SimConfig { duration: cfg.duration, warmup: cfg.warmup, max_events: u64::MAX };
    let mut sim = Simulator::new(topo, sim_cfg, seed);

    let plan = plan_flows(bw, 2, cfg.flow_scale, seed);
    let mut flow_sender: Vec<usize> = Vec::new();
    for (sender_idx, starts) in plan.starts.iter().enumerate() {
        let kind = if sender_idx == 0 { cfg.cca1 } else { cfg.cca2 };
        let s_node = spec.sender(sender_idx);
        let r_node = spec.receiver(sender_idx);
        for (i, &start) in starts.iter().enumerate() {
            let flow_seed = seed
                .wrapping_mul(0x100000001B3)
                .wrapping_add((sender_idx as u64) << 32 | i as u64);
            let cca = build_cca_seeded(kind, cfg.mss, flow_seed);
            let tx = TcpSender::new(
                SenderConfig { mss: cfg.mss, ecn: cfg.ecn, ..Default::default() },
                r_node,
                cca,
            );
            let rx_cfg = if cfg.coalesce {
                ReceiverConfig::coalesced()
            } else {
                ReceiverConfig::default()
            };
            let rx = TcpReceiver::new(rx_cfg, s_node);
            sim.add_flow(s_node, r_node, Box::new(tx), Box::new(rx), start);
            flow_sender.push(sender_idx);
        }
    }

    let bn = sim.topology().bottleneck_link().expect("dumbbell bottleneck");
    let mut samples = Vec::new();
    let mut prev_delivered: Vec<u64> = vec![0; 2];
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + cfg.duration;
    while t < end {
        t = (t + interval).min(end);
        sim.run_until(t);

        let mut delivered: Vec<u64> = vec![0; 2];
        let mut retransmits = 0u64;
        for (idx, &sender_idx) in flow_sender.iter().enumerate() {
            let flow = elephants_netsim::FlowId(idx as u32);
            let rx = sim
                .receiver(flow)
                .as_any()
                .downcast_ref::<TcpReceiver>()
                .expect("receiver endpoint");
            delivered[sender_idx] += rx.delivered_bytes();
            let tx = sim
                .sender(flow)
                .as_any()
                .downcast_ref::<TcpSender>()
                .expect("sender endpoint");
            retransmits += tx.retransmits();
        }
        let link = sim.topology().link(bn);
        samples.push(TraceSample {
            t: t.as_secs_f64(),
            sender_mbps: delivered
                .iter()
                .zip(&prev_delivered)
                .map(|(&d, &p)| (d - p) as f64 * 8.0 / interval.as_secs_f64() / 1e6)
                .collect(),
            queue_pkts: link.aqm.backlog_pkts(),
            queue_bytes: link.aqm.backlog_bytes(),
            drops: link.aqm_stats().dropped_total(),
            retransmits,
        });
        prev_delivered = delivered;
    }

    ScenarioTrace {
        config: cfg.clone(),
        seed,
        interval_s: interval.as_secs_f64(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use crate::scenario::RunOptions;
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;
    use elephants_json::FromJson;

    fn cfg() -> ScenarioConfig {
        ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            2.0,
            100_000_000,
            &RunOptions::quick(),
        )
    }

    #[test]
    fn trace_covers_full_duration() {
        let trace = run_scenario_traced(&cfg(), 1, SimDuration::from_millis(500));
        let expect = (cfg().duration.as_secs_f64() / 0.5).round() as usize;
        assert_eq!(trace.samples.len(), expect);
        let last = trace.samples.last().unwrap();
        assert!((last.t - cfg().duration.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn traced_run_matches_untraced_totals() {
        // Stepping must not perturb the simulation: cumulative drops at the
        // end of the trace equal the untraced run's drop count.
        let c = cfg();
        let untraced = Runner::new(&c).seed(3).run().unwrap().into_first();
        let trace = run_scenario_traced(&c, 3, SimDuration::from_millis(250));
        assert_eq!(trace.samples.last().unwrap().drops, untraced.drops);
    }

    #[test]
    fn throughput_series_sums_close_to_goodput() {
        let c = cfg();
        let trace = run_scenario_traced(&c, 1, SimDuration::from_millis(500));
        let total: f64 = trace
            .samples
            .iter()
            .map(|s| s.sender_mbps.iter().sum::<f64>() * 0.5 / 8.0 * 1e6)
            .sum();
        // Total delivered bytes (approx) must be within a few percent of
        // capacity x duration for a healthy CUBIC pair.
        let capacity = 100e6 / 8.0 * c.duration.as_secs_f64();
        assert!(total > 0.5 * capacity, "delivered {total} vs capacity {capacity}");
        assert!(total < 1.05 * capacity);
    }

    #[test]
    fn json_round_trip() {
        let trace = run_scenario_traced(&cfg(), 1, SimDuration::from_secs(1));
        let json = trace.to_json();
        let back = ScenarioTrace::from_json_str(&json).unwrap();
        assert_eq!(back.samples.len(), trace.samples.len());
        assert_eq!(back.seed, trace.seed);
    }

    #[test]
    fn queue_depth_is_sampled() {
        let trace = run_scenario_traced(&cfg(), 1, SimDuration::from_millis(200));
        assert!(trace.peak_queue_pkts() > 0, "CUBIC must build a queue");
    }
}
