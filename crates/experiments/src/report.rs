//! Plain-text tables and CSV output for figure/table binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-lite; cells with commas get quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV rendering to `path` (creating parent directories).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Pretty bandwidth label ("100M", "25G").
pub fn bw_label(bw_bps: u64) -> String {
    if bw_bps.is_multiple_of(1_000_000_000) {
        format!("{}G", bw_bps / 1_000_000_000)
    } else {
        format!("{}M", bw_bps / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic]
    fn rejects_width_mismatch() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row(vec!["a,b", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn bw_labels() {
        assert_eq!(bw_label(100_000_000), "100M");
        assert_eq!(bw_label(25_000_000_000), "25G");
    }
}
