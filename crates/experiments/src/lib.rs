//! # elephants-experiments
//!
//! The experiment harness that reproduces the paper's evaluation: the
//! Table 1 scenario grid, a deterministic runner, a thread-parallel sweep
//! with an on-disk result cache, and one assembly function per paper figure
//! and table (binaries `fig2` … `fig8`, `table2`, `table3`, `sweep`).
//!
//! ```no_run
//! use elephants_experiments::prelude::*;
//!
//! let opts = RunOptions::quick();
//! let cache = RunCache::disabled();
//! let fig = fig3(&opts, &cache, &[100_000_000]);
//! println!("{}", fig.text);
//! ```

pub mod cache;
pub mod cli;
pub mod figures;
pub mod par;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod svg;
pub mod sweep;
pub mod trace;

pub use cache::{cache_put_errors, cache_quarantined, RunCache, CACHE_SCHEMA_VERSION};
pub use cli::{Cli, SharedFlags};
pub use par::{par_map, par_map_with_workers, par_try_map, par_try_map_with_workers};
pub use figures::{
    fig2, fig3, fig4, fig5, fig6, fig7, fig8, render_table3, table3, FigureOutput, Table3Row,
    FIGURE_BUFFERS_BDP,
};
pub use report::{bw_label, TextTable};
pub use runner::{
    emit_dynamics_figures, AveragedResult, LinkResult, Recording, RunError, RunErrorKind,
    RunOutcome, RunResult, Runner, DEFAULT_SAMPLE_INTERVAL, DEFAULT_WALL_LIMIT,
};
pub use scenario::{
    paper_grid, paper_pairs, DurationPreset, RunOptions, ScenarioBuilder, ScenarioConfig,
    INTER_PAIRS, INTRA_PAIRS, PAPER_BWS, PAPER_MSS, PAPER_QUEUES_BDP,
};
pub use svg::{line_chart, write_chart, ChartSpec, Series};
pub use sweep::{
    sweep, sweep_with_progress, try_sweep, try_sweep_with_progress, try_sweep_with_workers,
    FailedRun, SweepOutput,
};
pub use trace::{run_scenario_traced, ScenarioTrace, TraceSample};

/// Convenience re-exports for binaries and examples.
pub mod prelude {
    pub use crate::cache::RunCache;
    pub use crate::cli::{Cli, SharedFlags};
    pub use crate::figures::*;
    pub use crate::report::{bw_label, TextTable};
    pub use crate::runner::{Recording, RunError, RunErrorKind, RunOutcome, Runner};
    pub use crate::scenario::*;
    pub use crate::sweep::{
        sweep, sweep_with_progress, try_sweep, try_sweep_with_progress, FailedRun, SweepOutput,
    };
    pub use crate::trace::{run_scenario_traced, ScenarioTrace};
    pub use elephants_aqm::AqmKind;
    pub use elephants_cca::CcaKind;
    pub use elephants_netsim::TopologySpec;
}
