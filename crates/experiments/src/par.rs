//! Minimal work-stealing-free parallel map on scoped `std::thread`s.
//!
//! Replaces the former rayon dependency for the sweep. Every `(config,
//! seed)` run is an independent deterministic simulation, so a shared
//! atomic work index plus per-worker result buffers is all the machinery
//! the grid needs — no locks around the work items, no channels, and the
//! output order is re-established from recorded indices.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the available parallelism, capped by
/// the number of work items (no point spawning idle threads).
fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    cores.min(items).max(1)
}

/// Apply `f` to every item in parallel and return results in input order.
///
/// `f` must be `Sync` because all workers share it; items are handed out
/// through an atomic cursor so threads self-balance on uneven run times.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_workers(items, worker_count(items.len()), f)
}

/// [`par_map`] with an explicit worker count (`0` means the default).
///
/// The result must not depend on `workers`: items are independent and the
/// output is reassembled in input order, so any thread count yields the
/// same vector. Tests pin this down by sweeping worker counts.
pub fn par_map_with_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = if workers == 0 { worker_count(items.len()) } else { workers.min(items.len()) };
    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker panicked")).collect()
    });

    // Reassemble in input order.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for buf in buffers.drain(..) {
        for (i, r) in buf {
            slots[i] = Some(r);
        }
    }
    slots.into_iter().map(|r| r.expect("par_map missed an item")).collect()
}

/// Render a panic payload as a string (the common `&str`/`String` payloads
/// verbatim, anything else as a placeholder).
fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// [`par_map`] that isolates worker panics.
///
/// A panic inside `f` is caught with `catch_unwind` and returned as
/// `Err(payload)` for that item; every other item keeps running on its
/// worker. This is what makes an 810-cell sweep survive one poisoned cell
/// instead of tearing the whole process down at `join()`.
pub fn par_try_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_try_map_with_workers(items, worker_count(items.len()), f)
}

/// [`par_try_map`] with an explicit worker count (`0` means the default).
pub fn par_try_map_with_workers<T, R, F>(
    items: &[T],
    workers: usize,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // `f` only sees one item per call and the closure environment is
    // `Sync`-shared read-only state; a panic cannot leave partially
    // mutated state visible to other items, so the unwind-safety assertion
    // is sound for the pure run functions this executor exists for.
    par_map_with_workers(items, workers, |item| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(payload_to_string)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map(&[41u32], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [0, 1, 2, 3, 8] {
            assert_eq!(par_map_with_workers(&items, workers, |&x| x * x), expect);
        }
    }

    #[test]
    fn uneven_work_still_complete() {
        let items: Vec<u32> = (0..64).collect();
        let out = par_map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn try_map_isolates_a_panicking_closure() {
        let items: Vec<u32> = (0..32).collect();
        let out = par_try_map(&items, |&x| {
            if x == 13 {
                panic!("poisoned cell {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let err = r.as_ref().unwrap_err();
                assert!(err.contains("poisoned cell 13"), "payload captured: {err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32 * 2, "other items keep running");
            }
        }
    }

    #[test]
    fn try_map_panic_isolation_holds_for_every_worker_count() {
        let items: Vec<u32> = (0..16).collect();
        for workers in [0, 1, 2, 8] {
            let out = par_try_map_with_workers(&items, workers, |&x| {
                if x % 5 == 0 {
                    panic!("boom {x}");
                }
                x
            });
            let failed: Vec<usize> =
                out.iter().enumerate().filter(|(_, r)| r.is_err()).map(|(i, _)| i).collect();
            assert_eq!(failed, vec![0, 5, 10, 15], "workers={workers}");
        }
    }
}
