//! Minimal argument parsing shared by the figure/table binaries.
//!
//! Flags:
//!
//! * `--quick` / `--full` — duration preset (default: standard)
//! * `--repeats N` — seeded repetitions per config (paper: 5)
//! * `--scale F` — Table 2 flow-count scale in (0, 1]
//! * `--seed N` — base seed
//! * `--bw LIST` — comma-separated bandwidths (e.g. `100M,1G,25G`)
//! * `--no-cache` — recompute everything
//! * `--out DIR` — output directory for CSVs (default `results`)
//! * `--loss MODEL` — bottleneck loss model: `none`, `bernoulli:P`, or
//!   `ge:P_GB,P_BG` (Gilbert–Elliott)
//! * `--flap START,DUR` — take the bottleneck down at `START` seconds for
//!   `DUR` seconds (simulated time)
//! * `--record CHANNELS` — attach the flight recorder to the base-seed run:
//!   a comma-separated subset of `flows`, `queue`, `events`
//! * `--sample-interval MS` — flight-recorder sample spacing in ms
//! * `--check MODE` — runtime invariant checking: `off` (default), `audit`
//!   (count violations, report them in the outcome) or `strict` (panic on
//!   the first violation; a sweep degrades the cell to a failed run)
//! * `--coalesce` — enable GRO-style receive coalescing on every receiver
//!   (off by default; changes cache keys, so coalesced and plain results
//!   never mix)
//! * `--topology SPEC` — network shape: `dumbbell` (default, the paper
//!   testbed), `parking-lot:K` (K shaped hops, K+1 flow groups) or
//!   `multi-dumbbell:R1,R2[,..]` (heterogeneous per-group RTTs in ms)
//! * `--fault-link N` — aim `--loss`/`--flap` at bottleneck hop `N`
//!   (default 0, the only hop on a dumbbell)
//!
//! The scenario-shaping subset lives in [`SharedFlags`], which `probe` and
//! the `chaos` fuzzer reuse so every binary spells these flags identically.

use crate::cache::RunCache;
use crate::runner::Recording;
use crate::scenario::{DurationPreset, RunOptions, ScenarioConfig, PAPER_BWS};
use elephants_netsim::{CheckMode, FaultPlan, LossModel, SimDuration, TopologySpec};

/// Parsed command line for a figure binary.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Run options derived from flags.
    pub opts: RunOptions,
    /// Bandwidths to sweep.
    pub bws: Vec<u64>,
    /// Results cache (possibly disabled).
    pub cache: RunCache,
    /// CSV output directory.
    pub out_dir: String,
    /// Loss model to install on the bottleneck (default: none).
    pub loss: LossModel,
    /// Fault plan to install on the bottleneck (default: empty).
    pub faults: FaultPlan,
    /// Keep only the first N grid configs (smoke runs; `None` = all).
    pub limit: Option<usize>,
    /// Flight recording requested with `--record` (`None` = don't record).
    pub record: Option<Recording>,
    /// Invariant-checking mode requested with `--check` (default: off).
    pub check: CheckMode,
    /// GRO-style receive coalescing requested with `--coalesce`.
    pub coalesce: bool,
    /// Topology requested with `--topology` (default: dumbbell).
    pub topology: TopologySpec,
    /// Bottleneck hop the loss/fault knobs target (`--fault-link`).
    pub fault_link: u32,
}

/// The per-scenario flags every scenario-building binary shares (`probe`,
/// `sweep`, the figure binaries, and — for the scenario-shaping subset —
/// the `chaos` fuzzer). One parser, one spelling, one validation path:
/// a binary's argument loop hands unrecognized flags to [`Self::try_parse`]
/// and keeps its own binary-specific flags in its own `match`.
///
/// Every field is optional ("was this flag given?") so callers that pin
/// knobs onto existing configs (chaos overrides) can distinguish "leave
/// the generated value alone" from "force the default".
#[derive(Debug, Clone, Default)]
pub struct SharedFlags {
    /// `--loss MODEL`.
    pub loss: Option<LossModel>,
    /// `--flap START,DUR`.
    pub faults: Option<FaultPlan>,
    /// `--record CHANNELS`.
    pub record: Option<Recording>,
    /// `--sample-interval MS` (requires `--record`).
    pub sample_interval: Option<SimDuration>,
    /// `--check MODE`.
    pub check: Option<CheckMode>,
    /// `--coalesce` (presence = on).
    pub coalesce: bool,
    /// `--topology SPEC`.
    pub topology: Option<TopologySpec>,
    /// `--fault-link N`.
    pub fault_link: Option<u32>,
}

impl SharedFlags {
    /// Try to consume `arg` (plus any value it needs from `it`). Returns
    /// `Ok(true)` when the flag was one of the shared set, `Ok(false)` when
    /// the caller should handle it, and `Err` on a malformed value.
    pub fn try_parse(
        &mut self,
        arg: &str,
        it: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        let mut need = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg {
            "--loss" => self.loss = Some(parse_loss(&need("--loss")?)?),
            "--flap" => self.faults = Some(parse_flap(&need("--flap")?)?),
            "--record" => self.record = Some(Recording::parse(&need("--record")?)?),
            "--check" => self.check = Some(need("--check")?.parse()?),
            "--coalesce" => self.coalesce = true,
            "--topology" => self.topology = Some(need("--topology")?.parse()?),
            "--fault-link" => {
                self.fault_link = Some(
                    need("--fault-link")?.parse().map_err(|e| format!("bad --fault-link: {e}"))?,
                )
            }
            "--sample-interval" => {
                let ms: f64 = need("--sample-interval")?
                    .parse()
                    .map_err(|e| format!("bad --sample-interval: {e}"))?;
                if ms <= 0.0 || !ms.is_finite() {
                    return Err("--sample-interval must be positive".into());
                }
                self.sample_interval = Some(SimDuration::from_secs_f64(ms / 1e3));
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Copy the flags that were given onto a scenario and validate the
    /// combination (a `--fault-link` outside the `--topology`'s bottleneck
    /// list fails here, with the config named in the message).
    pub fn apply(&self, cfg: &mut ScenarioConfig) -> Result<(), String> {
        if let Some(loss) = self.loss {
            cfg.loss = loss;
        }
        if let Some(faults) = &self.faults {
            cfg.faults = faults.clone();
        }
        if self.coalesce {
            cfg.coalesce = true;
        }
        if let Some(topology) = &self.topology {
            cfg.topology = topology.clone();
        }
        if let Some(fault_link) = self.fault_link {
            cfg.fault_link = fault_link;
        }
        cfg.validate()
    }

    /// Resolve the recording flags against an output directory: applies
    /// `--sample-interval` (erroring if it was given without `--record`)
    /// and roots the artifact directory at `OUT/records`.
    pub fn recording(&self, out_dir: &str) -> Result<Option<Recording>, String> {
        match (&self.record, self.sample_interval) {
            (None, Some(_)) => Err("--sample-interval requires --record".into()),
            (None, None) => Ok(None),
            (Some(rec), interval) => {
                let mut rec = rec.clone().out_dir(format!("{out_dir}/records"));
                if let Some(interval) = interval {
                    rec = rec.interval(interval);
                }
                Ok(Some(rec))
            }
        }
    }
}

fn parse_loss(s: &str) -> Result<LossModel, String> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("none") {
        return Ok(LossModel::None);
    }
    let model = if let Some(p) = s.strip_prefix("bernoulli:") {
        let p: f64 = p.parse().map_err(|e| format!("bad --loss probability '{p}': {e}"))?;
        LossModel::Bernoulli { p }
    } else if let Some(rest) = s.strip_prefix("ge:") {
        let (gb, bg) = rest
            .split_once(',')
            .ok_or_else(|| format!("bad --loss '{s}': expected ge:P_GB,P_BG"))?;
        LossModel::GilbertElliott {
            p_gb: gb.parse().map_err(|e| format!("bad --loss p_gb '{gb}': {e}"))?,
            p_bg: bg.parse().map_err(|e| format!("bad --loss p_bg '{bg}': {e}"))?,
        }
    } else {
        return Err(format!("bad --loss '{s}': expected none, bernoulli:P, or ge:P_GB,P_BG"));
    };
    model.validate().map_err(|e| format!("bad --loss '{s}': {e}"))?;
    Ok(model)
}

fn parse_flap(s: &str) -> Result<FaultPlan, String> {
    let (start, dur) =
        s.split_once(',').ok_or_else(|| format!("bad --flap '{s}': expected START,DUR seconds"))?;
    let start: f64 = start.parse().map_err(|e| format!("bad --flap start '{start}': {e}"))?;
    let dur: f64 = dur.parse().map_err(|e| format!("bad --flap duration '{dur}': {e}"))?;
    if start < 0.0 || dur <= 0.0 {
        return Err(format!("bad --flap '{s}': start must be >= 0 and duration > 0"));
    }
    let plan =
        FaultPlan::flap(SimDuration::from_secs_f64(start), SimDuration::from_secs_f64(dur));
    plan.validate().map_err(|e| format!("bad --flap '{s}': {e}"))?;
    Ok(plan)
}

fn parse_bw(s: &str) -> Result<u64, String> {
    let s = s.trim().to_ascii_uppercase();
    let (num, mult) = if let Some(x) = s.strip_suffix('G') {
        (x, 1_000_000_000u64)
    } else if let Some(x) = s.strip_suffix('M') {
        (x, 1_000_000u64)
    } else if let Some(x) = s.strip_suffix('K') {
        (x, 1_000u64)
    } else {
        (s.as_str(), 1u64)
    };
    num.parse::<u64>().map(|n| n * mult).map_err(|e| format!("bad bandwidth '{s}': {e}"))
}

impl Cli {
    /// Parse an argument list (excluding the program name).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut opts = RunOptions::standard();
        let mut bws: Vec<u64> = PAPER_BWS.to_vec();
        let mut use_cache = true;
        let mut out_dir = "results".to_string();
        let mut limit = None;
        let mut shared = SharedFlags::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if shared.try_parse(&arg, &mut it)? {
                continue;
            }
            let mut need = |name: &str| it.next().ok_or(format!("{name} needs a value"));
            match arg.as_str() {
                "--quick" => opts.preset = DurationPreset::Quick,
                "--full" => {
                    opts.preset = DurationPreset::Full;
                    opts.repeats = opts.repeats.max(5);
                }
                "--repeats" => opts.repeats = need("--repeats")?.parse().map_err(|e| format!("{e}"))?,
                "--scale" => {
                    opts.flow_scale = need("--scale")?.parse().map_err(|e| format!("{e}"))?;
                    if !(opts.flow_scale > 0.0 && opts.flow_scale <= 1.0) {
                        return Err("--scale must be in (0,1]".into());
                    }
                }
                "--seed" => opts.seed = need("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--bw" => {
                    bws = need("--bw")?.split(',').map(parse_bw).collect::<Result<_, _>>()?;
                    if bws.is_empty() {
                        return Err("--bw list is empty".into());
                    }
                }
                "--no-cache" => use_cache = false,
                "--out" => out_dir = need("--out")?,
                "--limit" => {
                    let n: usize =
                        need("--limit")?.parse().map_err(|e| format!("bad --limit: {e}"))?;
                    if n == 0 {
                        return Err("--limit must be at least 1".into());
                    }
                    limit = Some(n);
                }
                "--help" | "-h" => return Err(HELP.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{HELP}")),
            }
        }
        let cache = if use_cache { RunCache::new(format!("{out_dir}/cache")) } else { RunCache::disabled() };
        let record = shared.recording(&out_dir)?;
        Ok(Cli {
            opts,
            bws,
            cache,
            out_dir,
            loss: shared.loss.unwrap_or(LossModel::None),
            faults: shared.faults.clone().unwrap_or_else(FaultPlan::none),
            limit,
            record,
            check: shared.check.unwrap_or(CheckMode::Off),
            coalesce: shared.coalesce,
            topology: shared.topology.clone().unwrap_or_default(),
            fault_link: shared.fault_link.unwrap_or(0),
        })
    }

    /// Copy the CLI's per-scenario knobs (`--loss`, `--flap`, `--coalesce`,
    /// `--topology`, `--fault-link`) into a scenario and validate the
    /// combination. Call this on every config a fault-aware binary builds
    /// from the parsed CLI.
    pub fn apply_faults(&self, cfg: &mut ScenarioConfig) -> Result<(), String> {
        cfg.loss = self.loss;
        cfg.faults = self.faults.clone();
        cfg.coalesce = self.coalesce;
        cfg.topology = self.topology.clone();
        cfg.fault_link = self.fault_link;
        cfg.validate()
    }

    /// Parse the process arguments, exiting with a message on error.
    ///
    /// Also installs the parsed `--check` mode as the process-wide default
    /// (see [`crate::runner::set_default_check_mode`]), so every runner the
    /// binary builds afterwards — including the ones a sweep spawns on
    /// worker threads — inherits it. Done here, not in [`Cli::parse_from`],
    /// so library tests parsing argument lists never mutate global state.
    pub fn parse() -> Cli {
        match Cli::parse_from(std::env::args().skip(1)) {
            Ok(cli) => {
                crate::runner::set_default_check_mode(cli.check);
                cli
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

const HELP: &str = "\
usage: <figure-binary> [--quick|--full] [--repeats N] [--scale F] [--seed N]
                       [--bw 100M,1G,25G] [--no-cache] [--out DIR]
                       [--loss none|bernoulli:P|ge:P_GB,P_BG] [--flap START,DUR]
                       [--limit N] [--record flows[,queue,events]]
                       [--sample-interval MS] [--check off|audit|strict]
                       [--coalesce]
                       [--topology dumbbell|parking-lot:K|multi-dumbbell:R1,R2[,..]]
                       [--fault-link N]";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.bws, PAPER_BWS.to_vec());
        assert_eq!(cli.opts.repeats, 1);
        assert_eq!(cli.out_dir, "results");
    }

    #[test]
    fn full_bumps_repeats() {
        let cli = parse(&["--full"]).unwrap();
        assert_eq!(cli.opts.preset, DurationPreset::Full);
        assert_eq!(cli.opts.repeats, 5);
    }

    #[test]
    fn bw_list_parsing() {
        let cli = parse(&["--bw", "100M,1G"]).unwrap();
        assert_eq!(cli.bws, vec![100_000_000, 1_000_000_000]);
        assert!(parse(&["--bw", "12X"]).is_err());
    }

    #[test]
    fn scale_validation() {
        assert!(parse(&["--scale", "0.5"]).is_ok());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
    }

    #[test]
    fn unknown_flag_errors() {
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn loss_flag_parses_and_validates() {
        assert_eq!(parse(&[]).unwrap().loss, LossModel::None);
        assert_eq!(parse(&["--loss", "none"]).unwrap().loss, LossModel::None);
        assert_eq!(
            parse(&["--loss", "bernoulli:0.01"]).unwrap().loss,
            LossModel::Bernoulli { p: 0.01 }
        );
        assert_eq!(
            parse(&["--loss", "ge:0.002,0.2"]).unwrap().loss,
            LossModel::GilbertElliott { p_gb: 0.002, p_bg: 0.2 }
        );
        // Validation rejects out-of-range probabilities and junk.
        assert!(parse(&["--loss", "bernoulli:1.5"]).is_err());
        assert!(parse(&["--loss", "ge:0.5"]).is_err());
        assert!(parse(&["--loss", "uniform:0.1"]).is_err());
    }

    #[test]
    fn flap_flag_builds_a_plan() {
        let cli = parse(&["--flap", "2,0.5"]).unwrap();
        assert_eq!(cli.faults.events.len(), 2, "flap = LinkDown + LinkUp");
        assert!(parse(&["--flap", "2"]).is_err());
        assert!(parse(&["--flap", "-1,2"]).is_err());
        assert!(parse(&["--flap", "1,0"]).is_err());
    }

    #[test]
    fn record_flag_builds_a_recording() {
        assert!(parse(&[]).unwrap().record.is_none());
        let cli = parse(&["--record", "flows,queue", "--out", "o"]).unwrap();
        let rec = cli.record.unwrap();
        assert!(rec.flows && rec.queue && !rec.events);
        assert_eq!(rec.out_dir, std::path::PathBuf::from("o/records"));
        assert_eq!(rec.interval, crate::runner::DEFAULT_SAMPLE_INTERVAL);

        let cli = parse(&["--record", "flows", "--sample-interval", "50"]).unwrap();
        assert_eq!(cli.record.unwrap().interval, SimDuration::from_millis(50));
        assert!(parse(&["--record", "nope"]).is_err());
        assert!(parse(&["--sample-interval", "50"]).is_err(), "needs --record");
        assert!(parse(&["--record", "flows", "--sample-interval", "0"]).is_err());
    }

    #[test]
    fn check_flag_parses() {
        assert_eq!(parse(&[]).unwrap().check, CheckMode::Off);
        assert_eq!(parse(&["--check", "off"]).unwrap().check, CheckMode::Off);
        assert_eq!(parse(&["--check", "audit"]).unwrap().check, CheckMode::Audit);
        assert_eq!(parse(&["--check", "strict"]).unwrap().check, CheckMode::Strict);
        assert_eq!(parse(&["--check", "STRICT"]).unwrap().check, CheckMode::Strict);
        assert!(parse(&["--check", "paranoid"]).is_err());
        assert!(parse(&["--check"]).is_err());
    }

    #[test]
    fn apply_faults_transfers_knobs_into_config() {
        use elephants_aqm::AqmKind;
        use elephants_cca::CcaKind;
        let cli = parse(&["--loss", "ge:0.002,0.2", "--flap", "1,0.25", "--coalesce"]).unwrap();
        let mut cfg = ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &RunOptions::quick(),
        );
        cli.apply_faults(&mut cfg).unwrap();
        assert_eq!(cfg.loss, cli.loss);
        assert_eq!(cfg.faults, cli.faults);
        assert!(cfg.coalesce);
        assert!(cfg.is_faulted());
    }

    #[test]
    fn coalesce_flag_defaults_off() {
        assert!(!parse(&[]).unwrap().coalesce);
        assert!(parse(&["--coalesce"]).unwrap().coalesce);
    }

    #[test]
    fn topology_flag_parses_all_spellings() {
        assert_eq!(parse(&[]).unwrap().topology, TopologySpec::Dumbbell);
        assert_eq!(
            parse(&["--topology", "dumbbell"]).unwrap().topology,
            TopologySpec::Dumbbell
        );
        assert_eq!(
            parse(&["--topology", "parking-lot:3"]).unwrap().topology,
            TopologySpec::ParkingLot { hops: 3 }
        );
        assert_eq!(
            parse(&["--topology", "multi-dumbbell:31,124"]).unwrap().topology,
            TopologySpec::MultiDumbbell { rtts_ms: vec![31, 124] }
        );
        assert!(parse(&["--topology", "torus"]).is_err());
        assert!(parse(&["--topology", "parking-lot:1"]).is_err(), "needs >= 2 hops");
        assert!(parse(&["--topology"]).is_err());
    }

    #[test]
    fn fault_link_flag_parses_and_validates_through_apply() {
        use elephants_aqm::AqmKind;
        use elephants_cca::CcaKind;
        assert_eq!(parse(&[]).unwrap().fault_link, 0);
        let cli =
            parse(&["--topology", "parking-lot:3", "--fault-link", "2", "--loss", "bernoulli:0.01"])
                .unwrap();
        assert_eq!(cli.fault_link, 2);
        let mut cfg = ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &RunOptions::quick(),
        );
        cli.apply_faults(&mut cfg).unwrap();
        assert_eq!(cfg.topology, TopologySpec::ParkingLot { hops: 3 });
        assert_eq!(cfg.fault_link, 2);
        // A dumbbell has one hop: fault_link 2 must fail validation.
        let bad = parse(&["--fault-link", "2"]).unwrap();
        let mut cfg2 = cfg.clone();
        cfg2.topology = TopologySpec::Dumbbell;
        assert!(bad.apply_faults(&mut cfg2).is_err());
        assert!(parse(&["--fault-link", "x"]).is_err());
    }

    // One round-trip test per shared flag: the spelling parsed by
    // SharedFlags lands on the scenario exactly as the scenario's own
    // validated field value.
    #[test]
    fn shared_flags_round_trip_onto_configs() {
        use elephants_aqm::AqmKind;
        use elephants_cca::CcaKind;
        let base = || {
            ScenarioConfig::new(
                CcaKind::Cubic,
                CcaKind::Cubic,
                AqmKind::Fifo,
                1.0,
                100_000_000,
                &RunOptions::quick(),
            )
        };
        let through = |args: &[&str]| {
            let mut shared = SharedFlags::default();
            let mut it = args.iter().map(|s| s.to_string());
            while let Some(arg) = it.next() {
                assert!(shared.try_parse(&arg, &mut it).unwrap(), "unconsumed flag {arg}");
            }
            let mut cfg = base();
            shared.apply(&mut cfg).unwrap();
            (shared, cfg)
        };

        let (_, cfg) = through(&["--loss", "bernoulli:0.01"]);
        assert_eq!(cfg.loss, LossModel::Bernoulli { p: 0.01 });
        let (_, cfg) = through(&["--flap", "2,0.5"]);
        assert_eq!(cfg.faults.events.len(), 2);
        let (_, cfg) = through(&["--coalesce"]);
        assert!(cfg.coalesce);
        let (_, cfg) = through(&["--topology", "multi-dumbbell:31,124"]);
        assert_eq!(cfg.topology, TopologySpec::MultiDumbbell { rtts_ms: vec![31, 124] });
        let (_, cfg) = through(&["--topology", "parking-lot:2", "--fault-link", "1"]);
        assert_eq!(cfg.fault_link, 1);
        let (shared, cfg) = through(&["--check", "strict"]);
        assert_eq!(shared.check, Some(CheckMode::Strict));
        assert_eq!(cfg, base(), "--check shapes the runner, not the scenario");
        let (shared, _) = through(&["--record", "flows,queue", "--sample-interval", "50"]);
        let rec = shared.recording("o").unwrap().unwrap();
        assert!(rec.flows && rec.queue && !rec.events);
        assert_eq!(rec.interval, SimDuration::from_millis(50));
        assert_eq!(rec.out_dir, std::path::PathBuf::from("o/records"));

        // Flags not given leave the scenario untouched.
        let mut shared = SharedFlags::default();
        assert!(!shared.try_parse("--cca1", &mut std::iter::empty()).unwrap());
        let mut cfg = base();
        cfg.loss = LossModel::Bernoulli { p: 0.5 };
        cfg.topology = TopologySpec::ParkingLot { hops: 2 };
        let expect = cfg.clone();
        shared.apply(&mut cfg).unwrap();
        assert_eq!(cfg, expect, "empty SharedFlags must be the identity");
        assert!(shared.recording("o").unwrap().is_none());
        assert!(
            SharedFlags { sample_interval: Some(SimDuration::from_millis(1)), ..Default::default() }
                .recording("o")
                .is_err(),
            "--sample-interval without --record"
        );
    }
}
