//! Minimal argument parsing shared by the figure/table binaries.
//!
//! Flags:
//!
//! * `--quick` / `--full` — duration preset (default: standard)
//! * `--repeats N` — seeded repetitions per config (paper: 5)
//! * `--scale F` — Table 2 flow-count scale in (0, 1]
//! * `--seed N` — base seed
//! * `--bw LIST` — comma-separated bandwidths (e.g. `100M,1G,25G`)
//! * `--no-cache` — recompute everything
//! * `--out DIR` — output directory for CSVs (default `results`)

use crate::cache::RunCache;
use crate::scenario::{DurationPreset, RunOptions, PAPER_BWS};

/// Parsed command line for a figure binary.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Run options derived from flags.
    pub opts: RunOptions,
    /// Bandwidths to sweep.
    pub bws: Vec<u64>,
    /// Results cache (possibly disabled).
    pub cache: RunCache,
    /// CSV output directory.
    pub out_dir: String,
}

fn parse_bw(s: &str) -> Result<u64, String> {
    let s = s.trim().to_ascii_uppercase();
    let (num, mult) = if let Some(x) = s.strip_suffix('G') {
        (x, 1_000_000_000u64)
    } else if let Some(x) = s.strip_suffix('M') {
        (x, 1_000_000u64)
    } else if let Some(x) = s.strip_suffix('K') {
        (x, 1_000u64)
    } else {
        (s.as_str(), 1u64)
    };
    num.parse::<u64>().map(|n| n * mult).map_err(|e| format!("bad bandwidth '{s}': {e}"))
}

impl Cli {
    /// Parse an argument list (excluding the program name).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut opts = RunOptions::standard();
        let mut bws: Vec<u64> = PAPER_BWS.to_vec();
        let mut use_cache = true;
        let mut out_dir = "results".to_string();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut need = |name: &str| it.next().ok_or(format!("{name} needs a value"));
            match arg.as_str() {
                "--quick" => opts.preset = DurationPreset::Quick,
                "--full" => {
                    opts.preset = DurationPreset::Full;
                    opts.repeats = opts.repeats.max(5);
                }
                "--repeats" => opts.repeats = need("--repeats")?.parse().map_err(|e| format!("{e}"))?,
                "--scale" => {
                    opts.flow_scale = need("--scale")?.parse().map_err(|e| format!("{e}"))?;
                    if !(opts.flow_scale > 0.0 && opts.flow_scale <= 1.0) {
                        return Err("--scale must be in (0,1]".into());
                    }
                }
                "--seed" => opts.seed = need("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--bw" => {
                    bws = need("--bw")?.split(',').map(parse_bw).collect::<Result<_, _>>()?;
                    if bws.is_empty() {
                        return Err("--bw list is empty".into());
                    }
                }
                "--no-cache" => use_cache = false,
                "--out" => out_dir = need("--out")?,
                "--help" | "-h" => return Err(HELP.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{HELP}")),
            }
        }
        let cache = if use_cache { RunCache::new(format!("{out_dir}/cache")) } else { RunCache::disabled() };
        Ok(Cli { opts, bws, cache, out_dir })
    }

    /// Parse the process arguments, exiting with a message on error.
    pub fn parse() -> Cli {
        match Cli::parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

const HELP: &str = "\
usage: <figure-binary> [--quick|--full] [--repeats N] [--scale F] [--seed N]
                       [--bw 100M,1G,25G] [--no-cache] [--out DIR]";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.bws, PAPER_BWS.to_vec());
        assert_eq!(cli.opts.repeats, 1);
        assert_eq!(cli.out_dir, "results");
    }

    #[test]
    fn full_bumps_repeats() {
        let cli = parse(&["--full"]).unwrap();
        assert_eq!(cli.opts.preset, DurationPreset::Full);
        assert_eq!(cli.opts.repeats, 5);
    }

    #[test]
    fn bw_list_parsing() {
        let cli = parse(&["--bw", "100M,1G"]).unwrap();
        assert_eq!(cli.bws, vec![100_000_000, 1_000_000_000]);
        assert!(parse(&["--bw", "12X"]).is_err());
    }

    #[test]
    fn scale_validation() {
        assert!(parse(&["--scale", "0.5"]).is_ok());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
    }

    #[test]
    fn unknown_flag_errors() {
        assert!(parse(&["--bogus"]).is_err());
    }
}
