//! Minimal self-contained SVG line charts for the figure outputs.
//!
//! No plotting dependency: the study's figures are simple multi-series line
//! charts (metric vs buffer size or bandwidth), which ~200 lines of SVG
//! generation covers. Charts embed their own axes, ticks, legend and title,
//! and render identically in any browser.

use std::fmt::Write as _;

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct ChartSpec {
    /// Title rendered above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Logarithmic x axis (used for buffer-size and bandwidth sweeps).
    pub log_x: bool,
    /// Force the y axis to start at zero.
    pub y_from_zero: bool,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for ChartSpec {
    fn default() -> Self {
        ChartSpec {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            log_x: false,
            y_from_zero: true,
            width: 640,
            height: 400,
        }
    }
}

/// A categorical palette (color-blind-safe Okabe–Ito).
const PALETTE: [&str; 8] =
    ["#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000"];

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 140.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi <= lo || n == 0 {
        return vec![lo];
    }
    let raw_step = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (lo / step).ceil() * step;
    let mut ticks = vec![];
    let mut t = start;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_num(x: f64) -> String {
    fn trim(v: f64, suffix: &str) -> String {
        let s = format!("{v:.3}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        format!("{s}{suffix}")
    }
    if x == 0.0 {
        return "0".into();
    }
    let ax = x.abs();
    if ax >= 1e9 {
        trim(x / 1e9, "G")
    } else if ax >= 1e6 {
        trim(x / 1e6, "M")
    } else if ax >= 1e3 {
        trim(x / 1e3, "k")
    } else if ax >= 1.0 {
        trim(x, "")
    } else {
        format!("{x:.3}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Render a multi-series line chart as an SVG document.
pub fn line_chart(spec: &ChartSpec, series: &[Series]) -> String {
    let w = spec.width as f64;
    let h = spec.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;

    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .filter(|x| !spec.log_x || *x > 0.0)
        .collect();
    let ys: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.1)).collect();
    let (x_lo, x_hi) = xs.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &x| {
        (a.min(x), b.max(x))
    });
    let (mut y_lo, mut y_hi) = ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &y| {
        (a.min(y), b.max(y))
    });
    if spec.y_from_zero {
        y_lo = y_lo.min(0.0);
    }
    if y_hi <= y_lo {
        y_hi = y_lo + 1.0;
    }
    // 5% headroom.
    let pad = (y_hi - y_lo) * 0.05;
    y_hi += pad;
    if !spec.y_from_zero {
        y_lo -= pad;
    }

    let x_map = |x: f64| -> f64 {
        let t = if spec.log_x {
            (x.ln() - x_lo.ln()) / (x_hi.ln() - x_lo.ln()).max(1e-12)
        } else {
            (x - x_lo) / (x_hi - x_lo).max(1e-12)
        };
        MARGIN_L + t * plot_w
    };
    let y_map = |y: f64| -> f64 { MARGIN_T + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h };

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    // Title.
    let _ = write!(
        out,
        r#"<text x="{}" y="22" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        esc(&spec.title)
    );

    // Axes frame.
    let _ = write!(
        out,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>"##
    );

    // Y ticks + gridlines.
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = y_map(t);
        let _ = write!(
            out,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_L + plot_w
        );
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" dominant-baseline="middle">{}</text>"#,
            MARGIN_L - 6.0,
            y,
            fmt_num(t)
        );
    }
    // X ticks: log axes label the actual data points, linear axes use nice ticks.
    let x_ticks: Vec<f64> = if spec.log_x {
        let mut uniq: Vec<f64> = xs.clone();
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        uniq
    } else {
        nice_ticks(x_lo, x_hi, 6)
    };
    for t in x_ticks {
        let x = x_map(t);
        let _ = write!(
            out,
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
            MARGIN_T,
            MARGIN_T + plot_h
        );
        let _ = write!(
            out,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 16.0,
            fmt_num(t)
        );
    }
    // Axis labels.
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0,
        esc(&spec.x_label)
    );
    let _ = write!(
        out,
        r#"<text x="14" y="{:.1}" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        esc(&spec.y_label)
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .filter(|p| !spec.log_x || p.0 > 0.0)
            .map(|&(x, y)| (x_map(x), y_map(y)))
            .collect();
        if pts.len() > 1 {
            let path: String =
                pts.iter().map(|&(x, y)| format!("{x:.1},{y:.1}")).collect::<Vec<_>>().join(" ");
            let _ = write!(
                out,
                r#"<polyline points="{path}" fill="none" stroke="{color}" stroke-width="2"/>"#
            );
        }
        for &(x, y) in &pts {
            let _ = write!(out, r#"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="{color}"/>"#);
        }
        // Legend entry.
        let ly = MARGIN_T + 16.0 * i as f64;
        let lx = MARGIN_L + plot_w + 10.0;
        let _ = write!(
            out,
            r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            lx + 18.0
        );
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" dominant-baseline="middle">{}</text>"#,
            lx + 24.0,
            ly,
            esc(&s.name)
        );
    }
    out.push_str("</svg>");
    out
}

/// Write a chart to disk, creating parent directories.
pub fn write_chart(
    path: impl AsRef<std::path::Path>,
    spec: &ChartSpec,
    series: &[Series],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, line_chart(spec, series))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series { name: "bbr1".into(), points: vec![(0.5, 80.0), (2.0, 60.0), (16.0, 20.0)] },
            Series { name: "cubic".into(), points: vec![(0.5, 15.0), (2.0, 35.0), (16.0, 75.0)] },
        ]
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = line_chart(&ChartSpec { title: "t".into(), ..Default::default() }, &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("bbr1"));
        assert!(svg.contains("cubic"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let spec = ChartSpec { title: "a<b & c>d".into(), ..Default::default() };
        let svg = line_chart(&spec, &demo_series());
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn log_axis_drops_nonpositive_points() {
        let spec = ChartSpec { log_x: true, ..Default::default() };
        let series = vec![Series { name: "s".into(), points: vec![(0.0, 1.0), (1.0, 2.0), (10.0, 3.0)] }];
        let svg = line_chart(&spec, &series);
        // Two positive points survive: one polyline with exactly 2 pairs.
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn nice_ticks_are_round_and_cover_range() {
        let t = nice_ticks(0.0, 1.0, 6);
        assert!(t.contains(&0.0) && t.contains(&1.0), "{t:?}");
        let t = nice_ticks(0.0, 87.3, 6);
        assert!(t.iter().all(|x| (x / t[1.min(t.len() - 1)]).fract().abs() < 1e-9 || *x == 0.0));
        let t = nice_ticks(5.0, 5.0, 4);
        assert_eq!(t, vec![5.0]);
    }

    #[test]
    fn fmt_num_scales() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(25_000_000_000.0), "25G");
        assert_eq!(fmt_num(100_000_000.0), "100M");
        assert_eq!(fmt_num(1_500.0), "1.5k");
        assert_eq!(fmt_num(2.0), "2");
    }

    #[test]
    fn write_chart_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("elephants-svg-{}", std::process::id()));
        let path = dir.join("a/b/chart.svg");
        write_chart(&path, &ChartSpec::default(), &demo_series()).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
