//! On-disk cache of run results.
//!
//! Simulation runs are pure functions of `(ScenarioConfig, seed)`, so their
//! results are cached as JSON under `results/cache/`. Re-running a figure
//! binary reuses every run it shares with previous figures (the whole study
//! is one 810-cell grid viewed from different angles).

use crate::runner::{run_scenario, RunResult};
use crate::scenario::ScenarioConfig;
use elephants_json::{FromJson, ToJson};
use std::path::{Path, PathBuf};

/// A JSON file-per-run cache.
#[derive(Debug, Clone)]
pub struct RunCache {
    dir: PathBuf,
    enabled: bool,
}

impl RunCache {
    /// Cache rooted at `dir` (created on first write).
    pub fn new(dir: impl AsRef<Path>) -> Self {
        RunCache { dir: dir.as_ref().to_path_buf(), enabled: true }
    }

    /// A disabled cache (always recompute).
    pub fn disabled() -> Self {
        RunCache { dir: PathBuf::new(), enabled: false }
    }

    /// Default location: `results/cache` under the current directory.
    pub fn default_location() -> Self {
        RunCache::new("results/cache")
    }

    fn path_for(&self, cfg: &ScenarioConfig, seed: u64) -> PathBuf {
        self.dir.join(format!("{}.json", cfg.cache_key(seed)))
    }

    /// Fetch a cached result if present and parseable.
    pub fn get(&self, cfg: &ScenarioConfig, seed: u64) -> Option<RunResult> {
        if !self.enabled {
            return None;
        }
        let text = std::fs::read_to_string(self.path_for(cfg, seed)).ok()?;
        RunResult::from_json_str(&text).ok()
    }

    /// Store a result (best-effort; IO errors are swallowed).
    pub fn put(&self, cfg: &ScenarioConfig, seed: u64, result: &RunResult) {
        if !self.enabled {
            return;
        }
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let _ = std::fs::write(self.path_for(cfg, seed), result.to_json_pretty());
    }

    /// Run (or fetch) one seed of a scenario.
    pub fn run(&self, cfg: &ScenarioConfig, seed: u64) -> RunResult {
        if let Some(hit) = self.get(cfg, seed) {
            return hit;
        }
        let result = run_scenario(cfg, seed);
        self.put(cfg, seed, &result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::RunOptions;
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;

    #[test]
    fn cache_round_trip() {
        let tmp = std::env::temp_dir().join(format!("elephants-cache-test-{}", std::process::id()));
        let cache = RunCache::new(&tmp);
        let cfg = ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &RunOptions::quick(),
        );
        assert!(cache.get(&cfg, 1).is_none());
        let fresh = cache.run(&cfg, 1);
        let cached = cache.get(&cfg, 1).expect("must be cached now");
        assert_eq!(fresh.events, cached.events);
        assert_eq!(fresh.sender_mbps, cached.sender_mbps);
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = RunCache::disabled();
        let cfg = ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &RunOptions::quick(),
        );
        assert!(cache.get(&cfg, 1).is_none());
    }
}
