//! On-disk cache of run results.
//!
//! Simulation runs are pure functions of `(ScenarioConfig, seed)`, so their
//! results are cached as JSON under `results/cache/`. Re-running a figure
//! binary reuses every run it shares with previous figures (the whole study
//! is one 810-cell grid viewed from different angles).
//!
//! Robustness properties:
//!
//! * Every filename carries [`CACHE_SCHEMA_VERSION`]; bumping it when
//!   `RunResult`'s JSON shape changes orphans stale entries instead of
//!   letting them parse into garbage.
//! * An entry that exists but does not parse is **quarantined** (renamed to
//!   `*.quarantine`, counted, warned about) rather than silently
//!   recomputed — corruption is a signal worth surfacing, and the rename
//!   stops the next run from tripping over the same bytes.
//! * Write failures are counted per cache instance ([`RunCache::put_errors`])
//!   and aggregated process-wide ([`cache_put_errors`]), surfaced in sweep
//!   summaries instead of being swallowed: a full disk should not
//!   masquerade as a cold cache.

use crate::runner::{RunError, RunResult};
use crate::scenario::ScenarioConfig;
use elephants_json::{FromJson, ToJson};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Version stamp embedded in every cache filename. Bump when the
/// `RunResult` JSON schema (or the meaning of any field) changes.
/// v4: `ScenarioConfig` gained the `coalesce` knob (PR 7) — entries
/// serialized without it no longer parse.
/// v5: `RunResult` gained `fault_events_applied` (PR 8) — entries
/// serialized without it no longer parse.
/// v6: `ScenarioConfig` gained `topology`/`fault_link` and `RunResult`
/// gained per-bottleneck `links` (PR 9) — entries serialized without
/// them no longer parse.
pub const CACHE_SCHEMA_VERSION: u32 = 6;

/// Cache writes that failed (IO errors on create/write).
static CACHE_PUT_ERRORS: AtomicU64 = AtomicU64::new(0);

/// Cache entries quarantined because they existed but failed to parse.
static CACHE_QUARANTINED: AtomicU64 = AtomicU64::new(0);

/// Number of cache writes that failed so far in this process, across every
/// [`RunCache`] instance. Prefer the per-instance [`RunCache::put_errors`]
/// in tests and sweep summaries — this aggregate is shared by concurrently
/// running sweeps (and parallel tests), so deltas on it race.
pub fn cache_put_errors() -> u64 {
    CACHE_PUT_ERRORS.load(Ordering::Relaxed)
}

/// Number of unparsable cache entries quarantined so far in this process,
/// across every [`RunCache`] instance (same caveat as [`cache_put_errors`]:
/// prefer the per-instance [`RunCache::quarantined`]).
pub fn cache_quarantined() -> u64 {
    CACHE_QUARANTINED.load(Ordering::Relaxed)
}

/// Per-instance incident counters, shared by every clone of one
/// [`RunCache`] (sweep workers clone the cache; their increments must
/// land on the same counters the summary reads).
#[derive(Debug, Default)]
struct CacheStats {
    put_errors: AtomicU64,
    quarantined: AtomicU64,
}

/// A JSON file-per-run cache.
#[derive(Debug, Clone)]
pub struct RunCache {
    dir: PathBuf,
    enabled: bool,
    stats: Arc<CacheStats>,
}

impl RunCache {
    /// Cache rooted at `dir` (created on first write).
    pub fn new(dir: impl AsRef<Path>) -> Self {
        RunCache {
            dir: dir.as_ref().to_path_buf(),
            enabled: true,
            stats: Arc::new(CacheStats::default()),
        }
    }

    /// A disabled cache (always recompute).
    pub fn disabled() -> Self {
        RunCache { dir: PathBuf::new(), enabled: false, stats: Arc::new(CacheStats::default()) }
    }

    /// Default location: `results/cache` under the current directory.
    pub fn default_location() -> Self {
        RunCache::new("results/cache")
    }

    /// Cache writes that failed on this instance (and its clones).
    pub fn put_errors(&self) -> u64 {
        self.stats.put_errors.load(Ordering::Relaxed)
    }

    /// Entries this instance (and its clones) quarantined as unparsable.
    pub fn quarantined(&self) -> u64 {
        self.stats.quarantined.load(Ordering::Relaxed)
    }

    fn path_for(&self, cfg: &ScenarioConfig, seed: u64) -> PathBuf {
        self.dir.join(format!("{}-v{}.json", cfg.cache_key(seed), CACHE_SCHEMA_VERSION))
    }

    /// Fetch a cached result if present and parseable. Unparsable entries
    /// are quarantined (renamed, counted, warned about), not silently
    /// recomputed over.
    pub fn get(&self, cfg: &ScenarioConfig, seed: u64) -> Option<RunResult> {
        if !self.enabled {
            return None;
        }
        let path = self.path_for(cfg, seed);
        let text = std::fs::read_to_string(&path).ok()?;
        match RunResult::from_json_str(&text) {
            Ok(result) => Some(result),
            Err(e) => {
                let quarantine = path.with_extension("quarantine");
                let moved = std::fs::rename(&path, &quarantine).is_ok();
                self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                CACHE_QUARANTINED.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "warning: quarantined unparsable cache entry {} ({}){}",
                    path.display(),
                    e,
                    if moved { "" } else { " [rename failed]" },
                );
                None
            }
        }
    }

    /// Store a result. IO errors are counted in [`cache_put_errors`] so
    /// sweeps can surface them; the run itself still succeeds.
    pub fn put(&self, cfg: &ScenarioConfig, seed: u64, result: &RunResult) {
        if !self.enabled {
            return;
        }
        let write = std::fs::create_dir_all(&self.dir)
            .and_then(|_| std::fs::write(self.path_for(cfg, seed), result.to_json_pretty()));
        if write.is_err() {
            self.stats.put_errors.fetch_add(1, Ordering::Relaxed);
            CACHE_PUT_ERRORS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run (or fetch) one seed of a scenario, reporting failures instead
    /// of aborting. Only successful runs are cached.
    pub fn run_checked(
        &self,
        cfg: &ScenarioConfig,
        seed: u64,
        wall_limit: Duration,
    ) -> Result<RunResult, RunError> {
        if let Some(hit) = self.get(cfg, seed) {
            return Ok(hit);
        }
        let result =
            crate::runner::Runner::new(cfg).seed(seed).wall_limit(wall_limit).run()?.into_first();
        self.put(cfg, seed, &result);
        Ok(result)
    }

    /// Run (or fetch) one seed of a scenario.
    ///
    /// # Panics
    /// Panics if the run fails; use [`RunCache::run_checked`] (or the
    /// fault-tolerant sweep) for graceful degradation.
    pub fn run(&self, cfg: &ScenarioConfig, seed: u64) -> RunResult {
        self.run_checked(cfg, seed, crate::runner::DEFAULT_WALL_LIMIT)
            .unwrap_or_else(|e| panic!("run failed ({}, seed {seed}): {e}", cfg.label()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::RunOptions;
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;

    fn quick_cfg() -> ScenarioConfig {
        ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            100_000_000,
            &RunOptions::quick(),
        )
    }

    #[test]
    fn cache_round_trip() {
        let tmp = std::env::temp_dir().join(format!("elephants-cache-test-{}", std::process::id()));
        let cache = RunCache::new(&tmp);
        let cfg = quick_cfg();
        assert!(cache.get(&cfg, 1).is_none());
        let fresh = cache.run(&cfg, 1);
        let cached = cache.get(&cfg, 1).expect("must be cached now");
        assert_eq!(fresh.events, cached.events);
        assert_eq!(fresh.sender_mbps, cached.sender_mbps);
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = RunCache::disabled();
        let cfg = quick_cfg();
        assert!(cache.get(&cfg, 1).is_none());
    }

    #[test]
    fn filenames_carry_schema_version() {
        let cache = RunCache::new("x");
        let path = cache.path_for(&quick_cfg(), 1);
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.ends_with(&format!("-v{CACHE_SCHEMA_VERSION}.json")),
            "cache filename {name} must end with the schema version"
        );
    }

    #[test]
    fn unparsable_entry_is_quarantined_not_silently_recomputed() {
        let tmp =
            std::env::temp_dir().join(format!("elephants-cache-quarantine-{}", std::process::id()));
        let cache = RunCache::new(&tmp);
        let cfg = quick_cfg();
        let path = cache.path_for(&cfg, 9);
        std::fs::create_dir_all(&tmp).unwrap();
        std::fs::write(&path, "{ this is not json").unwrap();
        // The instance counter belongs to this cache alone, so the exact
        // count holds under parallel test execution (the process-wide
        // aggregate is shared and would race).
        assert_eq!(cache.quarantined(), 0);
        assert!(cache.get(&cfg, 9).is_none());
        assert_eq!(cache.quarantined(), 1, "quarantine must be counted");
        assert_eq!(cache.put_errors(), 0, "a quarantine is not a put error");
        assert!(cache_quarantined() >= 1, "aggregate includes this instance");
        assert!(!path.exists(), "corrupt entry must be renamed away");
        assert!(path.with_extension("quarantine").exists(), "quarantine file must exist");
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn put_failures_are_counted() {
        // Point the cache directory *at a file* so create_dir_all fails.
        let tmp = std::env::temp_dir().join(format!("elephants-cache-file-{}", std::process::id()));
        std::fs::write(&tmp, "occupied").unwrap();
        let cache = RunCache::new(&tmp);
        let cfg = quick_cfg();
        let result = cache.run(&cfg, 2); // run succeeds, put fails
        assert!(result.events > 0);
        assert_eq!(cache.put_errors(), 1, "failed put must be counted exactly");
        assert_eq!(cache.quarantined(), 0);
        assert!(cache_put_errors() >= 1, "aggregate includes this instance");
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn clones_share_one_set_of_instance_counters() {
        let tmp = std::env::temp_dir().join(format!("elephants-cache-clone-{}", std::process::id()));
        std::fs::write(&tmp, "occupied").unwrap(); // puts will fail
        let cache = RunCache::new(&tmp);
        let clone = cache.clone();
        clone.run(&quick_cfg(), 3);
        assert_eq!(
            cache.put_errors(),
            1,
            "a clone's incidents must land on the original's counters \
             (sweep workers clone the cache; the summary reads the original)"
        );
        let fresh = RunCache::new(&tmp);
        assert_eq!(fresh.put_errors(), 0, "a fresh instance starts clean");
        std::fs::remove_file(&tmp).ok();
    }
}
