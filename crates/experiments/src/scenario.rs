//! Scenario configuration and the paper's experiment grid (Table 1).

use elephants_aqm::AqmKind;
use elephants_cca::CcaKind;
use elephants_netsim::{bdp_bytes, Bandwidth, FaultPlan, LossModel, SimDuration, TopologySpec};
use elephants_json::{impl_json_struct, impl_json_unit_enum, FromJson, JsonError, ToJson, Value};

/// The paper's bottleneck bandwidths (Table 1).
pub const PAPER_BWS: [u64; 5] =
    [100_000_000, 500_000_000, 1_000_000_000, 10_000_000_000, 25_000_000_000];

/// The paper's queue lengths in BDP multiples. Table 1 lists 0.5–8; the
/// result figures additionally use 16 BDP, which completes the 810-config
/// grid (9 pairs × 3 AQMs × 6 queues × 5 BWs).
pub const PAPER_QUEUES_BDP: [f64; 6] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

/// Jumbo-frame segment size used by every flow in the paper.
pub const PAPER_MSS: u32 = 8900;

/// The four inter-CCA pairings (everything vs CUBIC).
pub const INTER_PAIRS: [(CcaKind, CcaKind); 4] = [
    (CcaKind::BbrV1, CcaKind::Cubic),
    (CcaKind::BbrV2, CcaKind::Cubic),
    (CcaKind::Htcp, CcaKind::Cubic),
    (CcaKind::Reno, CcaKind::Cubic),
];

/// The five intra-CCA pairings (each CCA vs itself).
pub const INTRA_PAIRS: [(CcaKind, CcaKind); 5] = [
    (CcaKind::BbrV1, CcaKind::BbrV1),
    (CcaKind::BbrV2, CcaKind::BbrV2),
    (CcaKind::Htcp, CcaKind::Htcp),
    (CcaKind::Reno, CcaKind::Reno),
    (CcaKind::Cubic, CcaKind::Cubic),
];

/// All nine pairings of Table 1.
pub fn paper_pairs() -> Vec<(CcaKind, CcaKind)> {
    INTER_PAIRS.iter().chain(INTRA_PAIRS.iter()).copied().collect()
}

/// One cell of the experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// CCA on sender node 0.
    pub cca1: CcaKind,
    /// CCA on sender node 1.
    pub cca2: CcaKind,
    /// Bottleneck queue discipline.
    pub aqm: AqmKind,
    /// Queue length as a multiple of the BDP.
    pub queue_bdp: f64,
    /// Bottleneck bandwidth (bits/s).
    pub bw_bps: u64,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Measurement-window start.
    pub warmup: SimDuration,
    /// Fraction of Table 2's flow count to instantiate.
    pub flow_scale: f64,
    /// Segment size.
    pub mss: u32,
    /// Enable ECN end to end (off in the paper).
    pub ecn: bool,
    /// End-to-end round-trip propagation time in milliseconds (paper: 62).
    /// Varying this is the paper's "future work: different RTTs" extension.
    pub rtt_ms: u64,
    /// Base RNG seed; repeats use `seed`, `seed+1`, …
    pub seed: u64,
    /// Steady-state random loss on the bottleneck (paper future work:
    /// "variable rates of packet loss"). Default: none.
    pub loss: LossModel,
    /// Timed faults on the bottleneck (flaps, mid-run rate/delay/loss
    /// changes). Default: empty.
    pub faults: FaultPlan,
    /// Event-budget watchdog: the run fails with `RunError::EventBudget`
    /// if it would process more events than this. Default: effectively
    /// unlimited.
    pub max_events: u64,
    /// GRO-style receive coalescing on every receiver (off by default —
    /// the paper's hosts disable GRO/LRO for the measurements, and the
    /// pinned byte-identity fixtures assume per-segment ACK policy).
    pub coalesce: bool,
    /// Network shape the run is simulated on. The default
    /// [`TopologySpec::Dumbbell`] reproduces the paper testbed exactly;
    /// parking-lot / multi-dumbbell shapes enable the multi-bottleneck and
    /// heterogeneous-RTT extensions.
    pub topology: TopologySpec,
    /// Which bottleneck link (index into the topology's shaped-link list)
    /// the `loss` and `faults` knobs apply to. `0` — the only choice on a
    /// dumbbell — targets the primary bottleneck.
    pub fault_link: u32,
    /// Per-group flow-start offsets in milliseconds (staggered-join
    /// scenarios: a nonzero entry delays every flow of that group, making
    /// it a late joiner). May be shorter than the group count — remaining
    /// groups start at their plan time. Empty (the default) reproduces the
    /// paper's synchronized start.
    pub start_offset_ms: Vec<u64>,
}

// Hand-written (not `impl_json_struct!`) so `start_offset_ms` can be
// omitted when empty and backfilled on parse: every pre-offset config
// JSON — committed chaos fixtures (whose filenames hash the JSON), cache
// artifacts, round-trip oracles — stays byte-identical. The macro would
// both emit the field unconditionally and reject documents lacking it.
impl ToJson for ScenarioConfig {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("cca1".to_string(), self.cca1.to_json()),
            ("cca2".to_string(), self.cca2.to_json()),
            ("aqm".to_string(), self.aqm.to_json()),
            ("queue_bdp".to_string(), self.queue_bdp.to_json()),
            ("bw_bps".to_string(), self.bw_bps.to_json()),
            ("duration".to_string(), self.duration.to_json()),
            ("warmup".to_string(), self.warmup.to_json()),
            ("flow_scale".to_string(), self.flow_scale.to_json()),
            ("mss".to_string(), self.mss.to_json()),
            ("ecn".to_string(), self.ecn.to_json()),
            ("rtt_ms".to_string(), self.rtt_ms.to_json()),
            ("seed".to_string(), self.seed.to_json()),
            ("loss".to_string(), self.loss.to_json()),
            ("faults".to_string(), self.faults.to_json()),
            ("max_events".to_string(), self.max_events.to_json()),
            ("coalesce".to_string(), self.coalesce.to_json()),
            ("topology".to_string(), self.topology.to_json()),
            ("fault_link".to_string(), self.fault_link.to_json()),
        ];
        if !self.start_offset_ms.is_empty() {
            fields.push(("start_offset_ms".to_string(), self.start_offset_ms.to_json()));
        }
        Value::Object(fields)
    }
}

impl FromJson for ScenarioConfig {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(ScenarioConfig {
            cca1: FromJson::from_json(v.get_field("cca1")?)?,
            cca2: FromJson::from_json(v.get_field("cca2")?)?,
            aqm: FromJson::from_json(v.get_field("aqm")?)?,
            queue_bdp: FromJson::from_json(v.get_field("queue_bdp")?)?,
            bw_bps: FromJson::from_json(v.get_field("bw_bps")?)?,
            duration: FromJson::from_json(v.get_field("duration")?)?,
            warmup: FromJson::from_json(v.get_field("warmup")?)?,
            flow_scale: FromJson::from_json(v.get_field("flow_scale")?)?,
            mss: FromJson::from_json(v.get_field("mss")?)?,
            ecn: FromJson::from_json(v.get_field("ecn")?)?,
            rtt_ms: FromJson::from_json(v.get_field("rtt_ms")?)?,
            seed: FromJson::from_json(v.get_field("seed")?)?,
            loss: FromJson::from_json(v.get_field("loss")?)?,
            faults: FromJson::from_json(v.get_field("faults")?)?,
            max_events: FromJson::from_json(v.get_field("max_events")?)?,
            coalesce: FromJson::from_json(v.get_field("coalesce")?)?,
            topology: FromJson::from_json(v.get_field("topology")?)?,
            fault_link: FromJson::from_json(v.get_field("fault_link")?)?,
            start_offset_ms: match v.get_field("start_offset_ms") {
                Ok(f) => FromJson::from_json(f)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

/// Fluent constructor for [`ScenarioConfig`]: start from the paper
/// defaults, override individual fields, and validate once at
/// [`ScenarioBuilder::build`].
///
/// The builder is a pure convenience layer — the JSON shape and cache-key
/// fingerprint of the built config are identical to one assembled with
/// [`ScenarioConfig::new`] plus field mutation.
///
/// ```
/// use elephants_experiments::prelude::*;
/// let cfg = ScenarioConfig::builder(
///     CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000,
///     &RunOptions::quick(),
/// )
/// .rtt_ms(124)
/// .seed(7)
/// .build()
/// .unwrap();
/// assert_eq!(cfg.rtt_ms, 124);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    cfg: ScenarioConfig,
}

impl ScenarioBuilder {
    /// Override the simulated run length (and rescale the warmup to keep
    /// the configured warmup fraction — call [`Self::warmup`] after this
    /// to pin an absolute warmup instead).
    pub fn duration(mut self, duration: SimDuration) -> Self {
        let frac = if self.cfg.duration.is_zero() {
            0.0
        } else {
            self.cfg.warmup.as_secs_f64() / self.cfg.duration.as_secs_f64()
        };
        self.cfg.duration = duration;
        self.cfg.warmup = duration.mul_f64(frac);
        self
    }

    /// Override the measurement-window start.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.cfg.warmup = warmup;
        self
    }

    /// Override the Table 2 flow-count scale.
    pub fn flow_scale(mut self, scale: f64) -> Self {
        self.cfg.flow_scale = scale;
        self
    }

    /// Override the segment size.
    pub fn mss(mut self, mss: u32) -> Self {
        self.cfg.mss = mss;
        self
    }

    /// Enable or disable end-to-end ECN.
    pub fn ecn(mut self, ecn: bool) -> Self {
        self.cfg.ecn = ecn;
        self
    }

    /// Override the round-trip propagation time.
    pub fn rtt_ms(mut self, rtt_ms: u64) -> Self {
        self.cfg.rtt_ms = rtt_ms;
        self
    }

    /// Override the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Install a steady-state loss model on the bottleneck.
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.cfg.loss = loss;
        self
    }

    /// Install a timed fault plan on the bottleneck.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Set the event-budget watchdog.
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.cfg.max_events = max_events;
        self
    }

    /// Enable GRO-style receive coalescing on every receiver.
    pub fn coalesce(mut self, coalesce: bool) -> Self {
        self.cfg.coalesce = coalesce;
        self
    }

    /// Run on a non-default topology (parking lot, multi-dumbbell, …).
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.cfg.topology = topology;
        self
    }

    /// Aim the loss/fault knobs at bottleneck link `fault_link` (index into
    /// the topology's shaped-link list).
    pub fn fault_link(mut self, fault_link: u32) -> Self {
        self.cfg.fault_link = fault_link;
        self
    }

    /// Stagger group joins: entry `g` delays every flow of group `g` by
    /// that many milliseconds (late-joiner scenarios). Shorter-than-group
    /// lists leave the remaining groups at their plan start.
    pub fn start_offset_ms(mut self, offsets: Vec<u64>) -> Self {
        self.cfg.start_offset_ms = offsets;
        self
    }

    /// Validate and return the config ([`ScenarioConfig::validate`]).
    pub fn build(self) -> Result<ScenarioConfig, String> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl ScenarioConfig {
    /// Start building a scenario from the paper defaults; see
    /// [`ScenarioBuilder`].
    pub fn builder(
        cca1: CcaKind,
        cca2: CcaKind,
        aqm: AqmKind,
        queue_bdp: f64,
        bw_bps: u64,
        opts: &RunOptions,
    ) -> ScenarioBuilder {
        ScenarioBuilder { cfg: ScenarioConfig::new(cca1, cca2, aqm, queue_bdp, bw_bps, opts) }
    }

    /// A scenario with paper defaults and runtime knobs from `opts`.
    pub fn new(
        cca1: CcaKind,
        cca2: CcaKind,
        aqm: AqmKind,
        queue_bdp: f64,
        bw_bps: u64,
        opts: &RunOptions,
    ) -> Self {
        let duration = opts.duration_for(bw_bps);
        ScenarioConfig {
            cca1,
            cca2,
            aqm,
            queue_bdp,
            bw_bps,
            duration,
            warmup: duration.mul_f64(opts.warmup_frac),
            flow_scale: opts.flow_scale,
            mss: PAPER_MSS,
            ecn: false,
            rtt_ms: 62,
            seed: opts.seed,
            loss: LossModel::None,
            faults: FaultPlan::none(),
            max_events: u64::MAX,
            coalesce: false,
            topology: TopologySpec::Dumbbell,
            fault_link: 0,
            start_offset_ms: Vec::new(),
        }
    }

    /// Validate the fault-injection knobs and watchdog budget.
    ///
    /// Must be called on every config loaded from outside the library
    /// (CLI flags, JSON fault-plan files) before it reaches a simulator:
    /// `Simulator::install_fault_plan` panics on invalid plans, and the
    /// run path degrades that panic into a failed cell rather than a
    /// diagnosis.
    pub fn validate(&self) -> Result<(), String> {
        self.loss.validate()?;
        self.faults.validate()?;
        self.topology.validate()?;
        if self.max_events == 0 {
            return Err("max_events budget of zero would fail every run".to_string());
        }
        if !(self.flow_scale > 0.0 && self.flow_scale <= 1.0) {
            return Err(format!("flow_scale out of (0,1]: {}", self.flow_scale));
        }
        let n_bn = self.topology.n_bottlenecks();
        if self.fault_link as usize >= n_bn {
            return Err(format!(
                "fault_link {} out of range: topology '{}' has {} bottleneck link(s)",
                self.fault_link, self.topology, n_bn
            ));
        }
        let n_groups = self.topology.n_groups();
        if self.start_offset_ms.len() > n_groups {
            return Err(format!(
                "{} start offsets for topology '{}' with {} group(s)",
                self.start_offset_ms.len(),
                self.topology,
                n_groups
            ));
        }
        let duration_ms = self.duration.as_nanos() / 1_000_000;
        if let Some(&worst) = self.start_offset_ms.iter().max() {
            if worst >= duration_ms {
                return Err(format!(
                    "start offset {worst}ms leaves no runtime in a {duration_ms}ms run"
                ));
            }
        }
        Ok(())
    }

    /// Whether any group joins late (a nonzero start offset is set).
    pub fn is_staggered(&self) -> bool {
        self.start_offset_ms.iter().any(|&off| off > 0)
    }

    /// Per-group start offsets as typed durations, for the flow wiring.
    pub fn start_offsets(&self) -> Vec<SimDuration> {
        self.start_offset_ms.iter().map(|&ms| SimDuration::from_millis(ms)).collect()
    }

    /// Whether any fault-injection knob deviates from the fault-free
    /// default.
    pub fn is_faulted(&self) -> bool {
        self.loss != LossModel::None
            || !self.faults.is_empty()
            || self.max_events != u64::MAX
            || self.fault_link != 0
    }

    /// Stable fingerprint of the fault knobs, empty for fault-free
    /// configs so the plain grid keeps human-readable cache keys.
    fn fault_fingerprint(&self) -> String {
        if !self.is_faulted() {
            return String::new();
        }
        // FNV-1a over the canonical JSON of the fault knobs: stable across
        // runs (insertion-ordered JSON), filename-safe, and collision-proof
        // enough for a cache key that also carries every other field.
        let mut h: u64 = 0xcbf29ce484222325;
        // `fault_link` folds in only when non-default so every pre-topology
        // faulted config keeps the fingerprint already on disk.
        let mut canon = format!(
            "{}|{}|{}",
            self.loss.to_json_string(),
            self.faults.to_json_string(),
            self.max_events,
        );
        if self.fault_link != 0 {
            canon.push_str(&format!("|link{}", self.fault_link));
        }
        for b in canon.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("-f{h:016x}")
    }

    /// Bottleneck bandwidth as a typed quantity.
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bps(self.bw_bps)
    }

    /// The configured round-trip propagation time.
    pub fn rtt(&self) -> SimDuration {
        SimDuration::from_millis(self.rtt_ms)
    }

    /// Queue capacity in bytes for the configured RTT.
    pub fn queue_bytes(&self) -> u64 {
        let bdp = bdp_bytes(self.bandwidth(), self.rtt());
        ((bdp as f64 * self.queue_bdp) as u64).max(4 * self.mss as u64)
    }

    /// Whether both senders run the same CCA.
    pub fn is_intra(&self) -> bool {
        self.cca1 == self.cca2
    }

    /// Stable cache key for (config, seed) results.
    ///
    /// Opt-in knobs append suffixes only when they deviate from the
    /// default (mirroring the fault fingerprint), so the plain grid's
    /// keys — and any cache entries already on disk — are unchanged.
    pub fn cache_key(&self, seed: u64) -> String {
        format!(
            "{}-{}-{}-q{:.2}bdp-{}mbps-d{}ms-w{}ms-fs{:.3}-mss{}-ecn{}-rtt{}-s{}{}{}",
            self.cca1,
            self.cca2,
            self.aqm,
            self.queue_bdp,
            self.bw_bps / 1_000_000,
            self.duration.as_nanos() / 1_000_000,
            self.warmup.as_nanos() / 1_000_000,
            self.flow_scale,
            self.mss,
            self.ecn as u8,
            self.rtt_ms,
            seed,
            self.fault_fingerprint(),
            if self.coalesce { "-gro" } else { "" },
        ) + &self.offset_tag()
            + &self.topology.cache_tag()
    }

    /// Cache-key suffix for staggered joins: `-off<ms>x<ms>…` (one entry
    /// per configured group), empty when every offset is zero so the
    /// synchronized grid's keys — and cache entries on disk — never move.
    fn offset_tag(&self) -> String {
        if !self.is_staggered() {
            return String::new();
        }
        let joined = self
            .start_offset_ms
            .iter()
            .map(|ms| ms.to_string())
            .collect::<Vec<_>>()
            .join("x");
        format!("-off{joined}")
    }

    /// Human-readable label ("BBRv1 vs CUBIC, fifo, 2 BDP, 1Gbps"); a
    /// non-default topology is appended ("…, parking-lot:3").
    pub fn label(&self) -> String {
        let mut s = format!(
            "{} vs {}, {}, {} BDP, {}",
            self.cca1.pretty(),
            self.cca2.pretty(),
            self.aqm,
            self.queue_bdp,
            self.bandwidth()
        );
        if self.topology != TopologySpec::Dumbbell {
            s.push_str(&format!(", {}", self.topology));
        }
        s
    }
}

/// Runtime knobs shared by all scenario constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Preset governing the per-bandwidth simulated duration.
    pub preset: DurationPreset,
    /// Warmup fraction of the duration excluded from measurement.
    pub warmup_frac: f64,
    /// Repetitions per configuration (paper: 5).
    pub repeats: u32,
    /// Table 2 flow-count scale.
    pub flow_scale: f64,
    /// Base seed.
    pub seed: u64,
}

impl_json_struct!(RunOptions { preset, warmup_frac, repeats, flow_scale, seed });

/// How long to simulate per bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurationPreset {
    /// Fast shape-check (CI-friendly).
    Quick,
    /// Default: long enough for post-startup dynamics at every bandwidth,
    /// scaled down at high rates to keep packet counts tractable.
    Standard,
    /// The paper's full 200 s everywhere (expensive at 10/25 Gbps).
    Full,
    /// Tiny runs for benchmark harness runs (seconds of wall time per figure).
    Bench,
}

impl_json_unit_enum!(DurationPreset { Quick, Standard, Full, Bench });

impl RunOptions {
    /// Default options: standard durations, 1 repeat, full flow counts.
    pub fn standard() -> Self {
        RunOptions {
            preset: DurationPreset::Standard,
            warmup_frac: 0.25,
            repeats: 1,
            flow_scale: 1.0,
            seed: 1,
        }
    }

    /// Quick options for tests and smoke runs.
    pub fn quick() -> Self {
        RunOptions { preset: DurationPreset::Quick, ..Self::standard() }
    }

    /// Paper-faithful options (200 s × 5 repeats).
    pub fn full() -> Self {
        RunOptions { preset: DurationPreset::Full, repeats: 5, ..Self::standard() }
    }

    /// Simulated duration for a given bottleneck bandwidth.
    pub fn duration_for(&self, bw_bps: u64) -> SimDuration {
        let secs = match self.preset {
            DurationPreset::Full => 200,
            DurationPreset::Standard => match bw_bps {
                b if b <= 150_000_000 => 60,
                b if b <= 600_000_000 => 25,
                b if b <= 1_500_000_000 => 15,
                b if b <= 10_000_000_000 => 6,
                _ => 4,
            },
            DurationPreset::Quick => match bw_bps {
                b if b <= 150_000_000 => 10,
                b if b <= 1_500_000_000 => 5,
                _ => 2,
            },
            DurationPreset::Bench => match bw_bps {
                b if b <= 150_000_000 => 3,
                _ => 1,
            },
        };
        SimDuration::from_secs(secs)
    }
}

/// The full 810-configuration grid of Table 1.
pub fn paper_grid(opts: &RunOptions) -> Vec<ScenarioConfig> {
    let mut grid = Vec::new();
    for (cca1, cca2) in paper_pairs() {
        for aqm in AqmKind::PAPER_SET {
            for &q in &PAPER_QUEUES_BDP {
                for &bw in &PAPER_BWS {
                    grid.push(ScenarioConfig::new(cca1, cca2, aqm, q, bw, opts));
                }
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_810_configs() {
        let grid = paper_grid(&RunOptions::standard());
        assert_eq!(grid.len(), 810);
        // 9 pairs, 3 AQMs, 6 queues, 5 bandwidths.
        let pairs: std::collections::HashSet<_> =
            grid.iter().map(|c| (c.cca1, c.cca2)).collect();
        assert_eq!(pairs.len(), 9);
    }

    #[test]
    fn queue_bytes_match_bdp_multiples() {
        let opts = RunOptions::standard();
        let c = ScenarioConfig::new(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            2.0,
            100_000_000,
            &opts,
        );
        // BDP at 100 Mbps × 62 ms = 775 kB; 2 BDP = 1.55 MB.
        assert_eq!(c.queue_bytes(), 1_550_000);
    }

    #[test]
    fn cache_keys_distinguish_configs_and_seeds() {
        let opts = RunOptions::standard();
        let a = ScenarioConfig::new(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Red, 2.0, PAPER_BWS[0], &opts);
        let b = ScenarioConfig::new(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Red, 4.0, PAPER_BWS[0], &opts);
        assert_ne!(a.cache_key(1), b.cache_key(1));
        assert_ne!(a.cache_key(1), a.cache_key(2));
        assert_eq!(a.cache_key(1), a.cache_key(1));
    }

    #[test]
    fn fault_knobs_change_cache_key_and_validate() {
        let opts = RunOptions::standard();
        let base =
            ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, PAPER_BWS[0], &opts);
        assert!(!base.is_faulted());
        assert!(base.validate().is_ok());

        let mut lossy = base.clone();
        lossy.loss = LossModel::GilbertElliott { p_gb: 0.01, p_bg: 0.2 };
        assert!(lossy.is_faulted());
        assert!(lossy.validate().is_ok());
        assert_ne!(base.cache_key(1), lossy.cache_key(1));

        let mut flapped = base.clone();
        flapped.faults = FaultPlan::flap(SimDuration::from_secs(3), SimDuration::from_secs(2));
        assert_ne!(base.cache_key(1), flapped.cache_key(1));
        assert_ne!(lossy.cache_key(1), flapped.cache_key(1));

        let mut bad = base.clone();
        bad.loss = LossModel::Bernoulli { p: 7.0 };
        assert!(bad.validate().is_err());
        let mut zero_budget = base.clone();
        zero_budget.max_events = 0;
        assert!(zero_budget.validate().is_err());
    }

    #[test]
    fn coalesce_knob_changes_cache_key_only_when_enabled() {
        let opts = RunOptions::standard();
        let base =
            ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, PAPER_BWS[0], &opts);
        assert!(!base.coalesce);
        assert!(
            !base.cache_key(1).contains("-gro"),
            "default configs must keep their pre-coalescing cache keys"
        );
        let gro = ScenarioConfig::builder(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            2.0,
            PAPER_BWS[0],
            &opts,
        )
        .coalesce(true)
        .build()
        .unwrap();
        assert_ne!(base.cache_key(1), gro.cache_key(1));
        assert!(gro.cache_key(1).ends_with("-gro"));
    }

    #[test]
    fn topology_knob_changes_cache_key_only_when_non_default() {
        let opts = RunOptions::standard();
        let base =
            ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, PAPER_BWS[0], &opts);
        assert_eq!(base.topology, TopologySpec::Dumbbell);
        assert!(
            !base.cache_key(1).contains("-topo"),
            "dumbbell configs must keep their pre-topology cache keys"
        );
        let pl = ScenarioConfig::builder(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            2.0,
            PAPER_BWS[0],
            &opts,
        )
        .topology(TopologySpec::ParkingLot { hops: 3 })
        .build()
        .unwrap();
        assert_ne!(base.cache_key(1), pl.cache_key(1));
        assert!(pl.cache_key(1).ends_with("-topo-pl3"), "{}", pl.cache_key(1));
        assert!(pl.label().ends_with(", parking-lot:3"), "{}", pl.label());
        assert!(!base.label().contains("dumbbell"), "default label is unchanged");
    }

    #[test]
    fn fault_link_validates_against_topology_and_fingerprints() {
        let opts = RunOptions::standard();
        let mut cfg =
            ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, PAPER_BWS[0], &opts);
        cfg.loss = LossModel::Bernoulli { p: 0.001 };
        assert!(cfg.validate().is_ok());
        let key0 = cfg.cache_key(1);
        cfg.fault_link = 1;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("fault_link"), "{err}");
        cfg.topology = TopologySpec::ParkingLot { hops: 3 };
        assert!(cfg.validate().is_ok(), "hop 1 exists on a 3-hop parking lot");
        assert!(cfg.is_faulted());
        assert_ne!(cfg.cache_key(1), key0, "fault_link is part of the fingerprint");
        cfg.fault_link = 3;
        assert!(cfg.validate().is_err(), "3 hops means links 0..=2");
    }

    #[test]
    fn topology_config_round_trips_json() {
        use elephants_json::FromJson;
        let opts = RunOptions::quick();
        for topo in [
            TopologySpec::Dumbbell,
            TopologySpec::ParkingLot { hops: 2 },
            TopologySpec::MultiDumbbell { rtts_ms: vec![31, 124] },
        ] {
            let mut cfg = ScenarioConfig::new(
                CcaKind::BbrV1,
                CcaKind::Cubic,
                AqmKind::Fifo,
                2.0,
                PAPER_BWS[0],
                &opts,
            );
            cfg.topology = topo;
            let back = ScenarioConfig::from_json_str(&cfg.to_json_string()).unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn start_offset_changes_cache_key_only_when_nonzero() {
        let opts = RunOptions::standard();
        let base =
            ScenarioConfig::new(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, PAPER_BWS[0], &opts);
        assert!(!base.is_staggered());
        assert!(
            !base.cache_key(1).contains("-off"),
            "synchronized configs must keep their pre-offset cache keys"
        );
        // All-zero offsets are synchronized too: no tag, no key movement.
        let mut zeroed = base.clone();
        zeroed.start_offset_ms = vec![0, 0];
        assert_eq!(base.cache_key(1), zeroed.cache_key(1));
        let late = ScenarioConfig::builder(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            2.0,
            PAPER_BWS[0],
            &opts,
        )
        .start_offset_ms(vec![0, 3000])
        .build()
        .unwrap();
        assert!(late.is_staggered());
        assert_ne!(base.cache_key(1), late.cache_key(1));
        assert!(late.cache_key(1).contains("-off0x3000"), "{}", late.cache_key(1));
    }

    #[test]
    fn start_offset_json_is_omitted_when_empty_and_backfilled_on_parse() {
        use elephants_json::FromJson;
        let opts = RunOptions::quick();
        let base =
            ScenarioConfig::new(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 2.0, PAPER_BWS[0], &opts);
        let json = base.to_json_string();
        assert!(
            !json.contains("start_offset_ms"),
            "default configs must serialize byte-identically to the pre-offset era"
        );
        // Pre-offset documents (no field at all) parse with an empty list.
        let back = ScenarioConfig::from_json_str(&json).unwrap();
        assert_eq!(back, base);
        assert!(back.start_offset_ms.is_empty());
        // Staggered (and even explicit all-zero) lists round-trip exactly.
        for offsets in [vec![0, 2000], vec![0, 0]] {
            let mut cfg = base.clone();
            cfg.start_offset_ms = offsets;
            let again = ScenarioConfig::from_json_str(&cfg.to_json_string()).unwrap();
            assert_eq!(again, cfg);
        }
    }

    #[test]
    fn start_offset_validation_bounds_groups_and_duration() {
        let opts = RunOptions::quick();
        let builder = |offs: Vec<u64>| {
            ScenarioConfig::builder(
                CcaKind::Cubic,
                CcaKind::Cubic,
                AqmKind::Fifo,
                2.0,
                PAPER_BWS[0],
                &opts,
            )
            .start_offset_ms(offs)
            .build()
        };
        assert!(builder(vec![0, 1000]).is_ok());
        assert!(builder(vec![0, 0, 1000]).is_err(), "dumbbell has two groups");
        let err = builder(vec![0, 10_000_000]).unwrap_err();
        assert!(err.contains("no runtime"), "{err}");
    }

    #[test]
    fn faulted_config_round_trips_json() {
        use elephants_json::FromJson;
        let opts = RunOptions::quick();
        let mut cfg =
            ScenarioConfig::new(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Red, 1.0, PAPER_BWS[0], &opts);
        cfg.loss = LossModel::Bernoulli { p: 0.001 };
        cfg.faults = FaultPlan::flap(SimDuration::from_secs(2), SimDuration::from_secs(1));
        cfg.max_events = 5_000_000;
        let back = ScenarioConfig::from_json_str(&cfg.to_json_string()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn builder_matches_field_mutation_byte_for_byte() {
        let opts = RunOptions::quick();
        let built = ScenarioConfig::builder(
            CcaKind::BbrV1,
            CcaKind::Cubic,
            AqmKind::Red,
            2.0,
            PAPER_BWS[0],
            &opts,
        )
        .rtt_ms(124)
        .seed(9)
        .max_events(5_000_000)
        .build()
        .unwrap();

        let mut manual =
            ScenarioConfig::new(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Red, 2.0, PAPER_BWS[0], &opts);
        manual.rtt_ms = 124;
        manual.seed = 9;
        manual.max_events = 5_000_000;
        // Same JSON bytes and same cache-key fingerprint: the builder is
        // pure convenience, not a new schema.
        assert_eq!(built.to_json_string(), manual.to_json_string());
        assert_eq!(built.cache_key(9), manual.cache_key(9));
    }

    #[test]
    fn builder_validates_at_build() {
        let opts = RunOptions::quick();
        let err = ScenarioConfig::builder(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            PAPER_BWS[0],
            &opts,
        )
        .max_events(0)
        .build()
        .unwrap_err();
        assert!(err.contains("max_events"), "{err}");

        let err = ScenarioConfig::builder(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            PAPER_BWS[0],
            &opts,
        )
        .flow_scale(2.0)
        .build()
        .unwrap_err();
        assert!(err.contains("flow_scale"), "{err}");
    }

    #[test]
    fn builder_duration_rescales_warmup_fraction() {
        let opts = RunOptions::quick(); // warmup_frac 0.25
        let cfg = ScenarioConfig::builder(
            CcaKind::Cubic,
            CcaKind::Cubic,
            AqmKind::Fifo,
            1.0,
            PAPER_BWS[0],
            &opts,
        )
        .duration(SimDuration::from_secs(40))
        .build()
        .unwrap();
        assert_eq!(cfg.duration, SimDuration::from_secs(40));
        assert_eq!(cfg.warmup, SimDuration::from_secs(10));
    }

    #[test]
    fn durations_scale_down_with_bandwidth() {
        let opts = RunOptions::standard();
        assert!(opts.duration_for(100_000_000) > opts.duration_for(25_000_000_000));
        let full = RunOptions::full();
        assert_eq!(full.duration_for(25_000_000_000), SimDuration::from_secs(200));
    }

    #[test]
    fn labels_are_paper_style() {
        let opts = RunOptions::standard();
        let c = ScenarioConfig::new(CcaKind::BbrV2, CcaKind::Cubic, AqmKind::FqCodel, 16.0, PAPER_BWS[4], &opts);
        assert_eq!(c.label(), "BBRv2 vs CUBIC, fq_codel, 16 BDP, 25Gbps");
    }
}
