//! Build and execute one scenario in the simulator.

use crate::scenario::ScenarioConfig;
use elephants_aqm::build_aqm;
use elephants_cca::build_cca_seeded;

use elephants_netsim::{DumbbellSpec, SimConfig, SimDuration, SimTime, Simulator};
use elephants_tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};
use elephants_workload::plan_flows;
use elephants_json::{impl_json_struct, impl_json_unit_enum};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many runs had a degenerate (zero-width) measurement window clamped
/// away (see [`run_scenario`]). A nonzero value means some scenario was
/// configured with `warmup >= duration`.
static DEGENERATE_WINDOW_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of runs so far whose measurement window had to be clamped.
pub fn degenerate_window_runs() -> u64 {
    DEGENERATE_WINDOW_RUNS.load(Ordering::Relaxed)
}

/// Why a single (config, seed) run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunErrorKind {
    /// A worker panicked; the payload is in `detail`.
    Panic,
    /// The run hit its `max_events` budget with events still pending.
    EventBudget,
    /// The run exceeded the wall-clock watchdog.
    WallClock,
    /// The config failed validation before the simulator was built.
    InvalidConfig,
}

impl_json_unit_enum!(RunErrorKind { Panic, EventBudget, WallClock, InvalidConfig });

/// A failed run: what class of failure, plus a human-readable detail
/// (panic payload, budget numbers, validation message).
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    /// Failure class.
    pub kind: RunErrorKind,
    /// Diagnostic detail.
    pub detail: String,
}

impl_json_struct!(RunError { kind, detail });

impl RunError {
    /// A panic-class error carrying the captured payload.
    pub fn panic(detail: impl Into<String>) -> Self {
        RunError { kind: RunErrorKind::Panic, detail: detail.into() }
    }

    /// Whether a retry could plausibly succeed: wall-clock overruns depend
    /// on machine load, while the other classes are deterministic in
    /// `(config, seed)` and would fail identically again.
    pub fn is_retryable(&self) -> bool {
        self.kind == RunErrorKind::WallClock
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// Default wall-clock watchdog for one run. Generous: the slowest cell of
/// the full paper grid takes a couple of minutes on one core; ten is a
/// hung simulation.
pub const DEFAULT_WALL_LIMIT: Duration = Duration::from_secs(600);

/// Result of a single (config, seed) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-sender goodput in Mbps over the measurement window.
    pub sender_mbps: Vec<f64>,
    /// Jain index over the two senders.
    pub jain: f64,
    /// Link utilization φ.
    pub utilization: f64,
    /// Retransmitted segments in the measurement window.
    pub retransmits: u64,
    /// RTO events over the run.
    pub rtos: u64,
    /// Bottleneck drops over the run.
    pub drops: u64,
    /// Packets destroyed at the bottleneck while a fault held it down.
    pub down_drops: u64,
    /// Flows simulated.
    pub flows: u32,
    /// Events processed (diagnostic).
    pub events: u64,
    /// Largest bottleneck-queue depth observed, in packets.
    pub peak_queue_pkts: u64,
}

impl_json_struct!(RunResult {
    sender_mbps,
    jain,
    utilization,
    retransmits,
    rtos,
    drops,
    down_drops,
    flows,
    events,
    peak_queue_pkts,
});

/// Run one scenario with a specific seed, under the default wall-clock
/// watchdog ([`DEFAULT_WALL_LIMIT`]).
///
/// Fault knobs on the config (steady-state loss, a timed [`FaultPlan`],
/// an event budget) apply to the bottleneck link. Failures — validation,
/// event-budget exhaustion, wall-clock overrun — come back as [`RunError`]
/// instead of aborting the process, so a sweep degrades to a failed cell.
///
/// [`FaultPlan`]: elephants_netsim::FaultPlan
pub fn run_scenario(cfg: &ScenarioConfig, seed: u64) -> Result<RunResult, RunError> {
    run_scenario_with_wall_limit(cfg, seed, DEFAULT_WALL_LIMIT)
}

/// [`run_scenario`] with an explicit wall-clock watchdog.
///
/// The simulation is driven in fixed simulated-time slices (which does not
/// perturb the event schedule — `run_until` + `finalize` is byte-identical
/// to a one-shot `run`), checking the event budget and the wall clock
/// between slices.
pub fn run_scenario_with_wall_limit(
    cfg: &ScenarioConfig,
    seed: u64,
    wall_limit: Duration,
) -> Result<RunResult, RunError> {
    if let Err(detail) = cfg.validate() {
        return Err(RunError { kind: RunErrorKind::InvalidConfig, detail });
    }
    let bw = cfg.bandwidth();
    let spec = DumbbellSpec::paper_with_rtt(bw, cfg.rtt());
    let mut topo = spec.build();
    topo.set_bottleneck_aqm(build_aqm(
        cfg.aqm,
        cfg.queue_bytes(),
        cfg.bw_bps,
        cfg.mss,
        cfg.ecn,
        seed,
    ));

    // A warmup at or past the end of the run would leave a zero-width
    // measurement window, turning every windowed rate below into a division
    // by zero (inf/NaN goodput). Clamp to "no warmup" and count the incident
    // so sweeps can surface the misconfiguration.
    let warmup = if cfg.duration <= cfg.warmup && !cfg.duration.is_zero() {
        DEGENERATE_WINDOW_RUNS.fetch_add(1, Ordering::Relaxed);
        elephants_netsim::SimDuration::ZERO
    } else {
        cfg.warmup
    };
    let sim_cfg = SimConfig { duration: cfg.duration, warmup, max_events: cfg.max_events };
    let mut sim = Simulator::new(topo, sim_cfg, seed);

    if let Some(bn) = sim.topology().bottleneck_link() {
        sim.topology_mut().link_mut(bn).loss_model = cfg.loss;
        if !cfg.faults.is_empty() {
            sim.install_fault_plan(bn, &cfg.faults);
        }
    }

    let plan = plan_flows(bw, 2, cfg.flow_scale, seed);
    for (sender_idx, starts) in plan.starts.iter().enumerate() {
        let kind = if sender_idx == 0 { cfg.cca1 } else { cfg.cca2 };
        let s_node = spec.sender(sender_idx);
        let r_node = spec.receiver(sender_idx);
        for (i, &start) in starts.iter().enumerate() {
            let flow_seed = seed
                .wrapping_mul(0x100000001B3)
                .wrapping_add((sender_idx as u64) << 32 | i as u64);
            let cca = build_cca_seeded(kind, cfg.mss, flow_seed);
            let tx = TcpSender::new(
                SenderConfig { mss: cfg.mss, ecn: cfg.ecn, ..Default::default() },
                r_node,
                cca,
            );
            let rx = TcpReceiver::new(ReceiverConfig::default(), s_node);
            sim.add_flow(s_node, r_node, Box::new(tx), Box::new(rx), start);
        }
    }

    // Watchdog loop: advance in 64 simulated-time slices, checking the
    // event budget and the wall clock at each boundary. Slicing does not
    // inject events, so the schedule — and therefore every counter in the
    // summary — is identical to a one-shot `sim.run()`.
    let started = Instant::now();
    let end = SimTime::ZERO + cfg.duration;
    let slice = SimDuration::from_nanos((cfg.duration.as_nanos() / 64).max(1));
    let mut t = SimTime::ZERO;
    while t < end {
        t = (t + slice).min(end);
        sim.run_until(t);
        if sim.budget_exhausted() {
            return Err(RunError {
                kind: RunErrorKind::EventBudget,
                detail: format!(
                    "event budget exhausted: {} events processed of max {} with work pending at t={:?}",
                    sim.events_processed(),
                    cfg.max_events,
                    sim.now(),
                ),
            });
        }
        if started.elapsed() > wall_limit {
            return Err(RunError {
                kind: RunErrorKind::WallClock,
                detail: format!(
                    "wall-clock watchdog: exceeded {wall_limit:?} at simulated t={:?} of {:?}",
                    sim.now(),
                    cfg.duration,
                ),
            });
        }
    }
    let summary = sim.finalize();

    // Per-flow goodput grouped by sender node.
    let window = summary.window;
    let flow_goodputs: Vec<(u32, f64)> = summary
        .flows
        .iter()
        .map(|f| {
            let sender_idx = if f.sender_node == spec.sender(0) { 0 } else { 1 };
            (sender_idx, f.window_goodput_bps(window))
        })
        .collect();
    let retransmits: u64 = summary.flows.iter().map(|f| f.sender.retransmits_window).sum();
    let rtos: u64 = summary.flows.iter().map(|f| f.sender.rto_count).sum();
    let drops = summary.bottleneck.aqm.dropped_total() + summary.bottleneck.fault_losses;

    let senders = elephants_metrics::per_sender_goodput(&flow_goodputs);
    let tputs: Vec<f64> = senders.iter().map(|s| s.goodput_bps).collect();
    let jain = elephants_metrics::jain_index(&tputs);
    // Link utilization is measured on the wire (bottleneck bytes serialized
    // inside the window). Receiver goodput would over-count in short runs:
    // the backlog queued during warmup drains into the window, which with a
    // 16 BDP buffer can exceed capacity x window by several percent.
    let window_s = summary.window.as_secs_f64();
    let wire_bps =
        if window_s > 0.0 { summary.bottleneck.bytes_tx_window as f64 * 8.0 / window_s } else { 0.0 };
    let utilization = elephants_metrics::link_utilization(wire_bps, cfg.bw_bps as f64);
    Ok(RunResult {
        sender_mbps: senders.iter().map(|s| s.goodput_bps / 1e6).collect(),
        jain,
        utilization,
        retransmits,
        rtos,
        drops,
        down_drops: summary.bottleneck.down_drops,
        flows: plan.total(),
        events: summary.events_processed,
        peak_queue_pkts: summary.bottleneck.peak_qlen_pkts,
    })
}

/// Averages over repeated runs of one scenario.
#[derive(Debug, Clone)]
pub struct AveragedResult {
    /// The scenario.
    pub config: ScenarioConfig,
    /// Mean per-sender goodput (Mbps).
    pub sender_mbps: Vec<f64>,
    /// Mean Jain index.
    pub jain: f64,
    /// Mean utilization.
    pub utilization: f64,
    /// Mean retransmissions per run.
    pub retransmits: f64,
    /// Total RTOs across repeats.
    pub rtos: u64,
    /// Individual run results.
    pub runs: Vec<RunResult>,
}

/// Average a set of per-seed runs.
pub fn average_runs(config: ScenarioConfig, runs: Vec<RunResult>) -> AveragedResult {
    assert!(!runs.is_empty());
    let n = runs.len() as f64;
    let n_senders = runs[0].sender_mbps.len();
    // Silently padding a short vector with zeros would drag the mean down
    // and mask a structural mismatch between runs of one scenario.
    for (i, r) in runs.iter().enumerate() {
        assert_eq!(
            r.sender_mbps.len(),
            n_senders,
            "run {i} reports {} senders, run 0 reports {n_senders}: cannot average",
            r.sender_mbps.len(),
        );
    }
    let sender_mbps = (0..n_senders)
        .map(|i| runs.iter().map(|r| r.sender_mbps[i]).sum::<f64>() / n)
        .collect();
    AveragedResult {
        config,
        sender_mbps,
        jain: runs.iter().map(|r| r.jain).sum::<f64>() / n,
        utilization: runs.iter().map(|r| r.utilization).sum::<f64>() / n,
        retransmits: runs.iter().map(|r| r.retransmits as f64).sum::<f64>() / n,
        rtos: runs.iter().map(|r| r.rtos).sum(),
        runs,
    }
}

/// Run `cfg.seed .. cfg.seed + repeats` and average (no cache).
///
/// # Panics
/// Panics if any run fails; figure assembly needs every repeat. Use the
/// fault-tolerant sweep path for graceful degradation.
pub fn run_averaged(cfg: &ScenarioConfig, repeats: u32) -> AveragedResult {
    let runs: Vec<RunResult> = (0..repeats.max(1))
        .map(|r| {
            let seed = cfg.seed + r as u64;
            run_scenario(cfg, seed)
                .unwrap_or_else(|e| panic!("run failed ({}, seed {seed}): {e}", cfg.label()))
        })
        .collect();
    average_runs(cfg.clone(), runs)
}

/// Convenience used by tests: first flow's start time for the plan.
pub fn first_start(cfg: &ScenarioConfig, seed: u64) -> SimTime {
    plan_flows(cfg.bandwidth(), 2, cfg.flow_scale, seed).starts[0][0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::RunOptions;
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;

    fn quick_cfg(cca1: CcaKind, cca2: CcaKind, aqm: AqmKind, q: f64, bw: u64) -> ScenarioConfig {
        ScenarioConfig::new(cca1, cca2, aqm, q, bw, &RunOptions::quick())
    }

    #[test]
    fn cubic_intra_100m_fifo_is_fair_and_full() {
        let cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000);
        let r = run_scenario(&cfg, 1).unwrap();
        assert_eq!(r.flows, 2);
        assert!(r.utilization > 0.85, "φ = {}", r.utilization);
        assert!(r.jain > 0.8, "J = {}", r.jain);
    }

    #[test]
    fn runner_is_deterministic() {
        let cfg = quick_cfg(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let a = run_scenario(&cfg, 7).unwrap();
        let b = run_scenario(&cfg, 7).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.sender_mbps, b.sender_mbps);
        assert_eq!(a.retransmits, b.retransmits);
    }

    #[test]
    fn averaging_is_elementwise() {
        let cfg = quick_cfg(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let avg = run_averaged(&cfg, 2);
        assert_eq!(avg.runs.len(), 2);
        let expect0 = (avg.runs[0].sender_mbps[0] + avg.runs[1].sender_mbps[0]) / 2.0;
        assert!((avg.sender_mbps[0] - expect0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_window_is_clamped_not_inf() {
        let mut cfg = quick_cfg(CcaKind::Reno, CcaKind::Reno, AqmKind::Fifo, 1.0, 100_000_000);
        cfg.warmup = cfg.duration; // zero-width window as configured
        let before = degenerate_window_runs();
        let r = run_scenario(&cfg, 3).unwrap();
        assert!(degenerate_window_runs() > before, "clamp must be counted");
        assert!(r.utilization.is_finite(), "φ = {}", r.utilization);
        assert!(r.jain.is_finite(), "J = {}", r.jain);
        assert!(r.sender_mbps.iter().all(|m| m.is_finite()), "{:?}", r.sender_mbps);
        // With the warmup clamped away, the whole run is the window.
        assert!(r.utilization > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot average")]
    fn averaging_rejects_mismatched_sender_vectors() {
        let cfg = quick_cfg(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let a = run_scenario(&cfg, 1).unwrap();
        let mut b = a.clone();
        b.sender_mbps.pop();
        average_runs(cfg, vec![a, b]);
    }

    #[test]
    fn flow_counts_follow_table2() {
        let cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 500_000_000);
        let r = run_scenario(&cfg, 1).unwrap();
        assert_eq!(r.flows, 10);
    }
}
